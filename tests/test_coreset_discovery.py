"""Tests for coreset construction and join discovery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coreset import (
    OSNAPSketch,
    StratifiedSampler,
    UniformSampler,
    default_coreset_size,
    make_coreset_builder,
    sketch_matrix,
)
from repro.discovery import (
    DataRepository,
    JoinCandidate,
    JoinDiscovery,
    KeyPair,
    MinHashSignature,
    jaccard_estimate,
    profile_column,
    profile_table,
)
from repro.relational import Table
from repro.relational.column import Column


class TestCoresetSizes:
    def test_small_tables_keep_everything(self):
        assert default_coreset_size(150) == 150

    def test_large_tables_capped(self):
        assert default_coreset_size(1_000_000) == 2000

    def test_monotone_in_rows(self):
        assert default_coreset_size(500) <= default_coreset_size(5000)


class TestUniformAndStratified:
    def test_uniform_sample_size_and_uniqueness(self):
        indices = UniformSampler(random_state=0).sample_indices(100, 30)
        assert len(indices) == 30
        assert len(set(indices.tolist())) == 30

    def test_uniform_keeps_all_when_size_exceeds(self):
        indices = UniformSampler().sample_indices(10, 50)
        assert len(indices) == 10

    def test_stratified_keeps_minority_class(self):
        y = np.array([0.0] * 95 + [1.0] * 5)
        indices = StratifiedSampler(random_state=0).sample_indices(100, 20, y=y)
        assert (y[indices] == 1.0).sum() >= 1
        assert len(indices) == 20

    def test_stratified_proportions_roughly_preserved(self):
        y = np.array([0.0] * 60 + [1.0] * 40)
        indices = StratifiedSampler(random_state=1).sample_indices(100, 50, y=y)
        positives = (y[indices] == 1.0).mean()
        assert 0.3 <= positives <= 0.5

    def test_stratified_regression_uses_quantile_bins(self):
        y = np.linspace(0, 100, 200)
        indices = StratifiedSampler(random_state=0).sample_indices(200, 40, y=y)
        assert y[indices].max() > 80 and y[indices].min() < 20

    def test_reduce_table_row_preserving(self, base_table):
        reduced = UniformSampler(random_state=0).reduce_table(base_table, 3, target="target")
        assert reduced.num_rows == 3
        assert reduced.column_names == base_table.column_names

    def test_make_coreset_builder(self):
        assert make_coreset_builder("uniform").name == "uniform"
        assert make_coreset_builder("stratified").name == "stratified"
        assert make_coreset_builder("sketch").name == "sketch"
        with pytest.raises(ValueError):
            make_coreset_builder("bogus")


class TestSketch:
    def test_sketch_shape(self, rng):
        X = rng.normal(size=(200, 10))
        sketched = sketch_matrix(X, 50, rng)
        assert sketched.shape == (50, 10)

    def test_sketch_noop_when_target_larger(self, rng):
        X = rng.normal(size=(20, 5))
        assert sketch_matrix(X, 50, rng).shape == (20, 5)

    def test_sketch_approximately_preserves_column_norms(self, rng):
        X = rng.normal(size=(500, 8))
        sketched = sketch_matrix(X, 200, rng, repetitions=8)
        original = np.linalg.norm(X, axis=0)
        reduced = np.linalg.norm(sketched, axis=0)
        assert np.all(np.abs(reduced - original) / original < 0.6)

    def test_sketch_cannot_reduce_tables(self, base_table):
        with pytest.raises(RuntimeError):
            OSNAPSketch().reduce_table(base_table, 3)

    def test_sketch_reduce_matrix_classification_keeps_labels(self, classification_matrix):
        X, y = classification_matrix
        X_small, y_small = OSNAPSketch(random_state=0).reduce_matrix(X, y, 60)
        assert set(np.unique(y_small)) <= set(np.unique(y))
        assert X_small.shape[0] == len(y_small) <= 70

    def test_sketch_reduce_matrix_regression(self, regression_matrix):
        X, y = regression_matrix
        X_small, y_small = OSNAPSketch(random_state=0).reduce_matrix(X, y, 80)
        assert X_small.shape == (80, X.shape[1])
        assert len(y_small) == 80


class TestMinHash:
    def test_identical_sets_have_jaccard_one(self):
        values = [f"v{i}" for i in range(50)]
        assert jaccard_estimate(values, values) == 1.0

    def test_disjoint_sets_have_low_jaccard(self):
        a = [f"a{i}" for i in range(50)]
        b = [f"b{i}" for i in range(50)]
        assert jaccard_estimate(a, b) < 0.2

    def test_containment_of_subset(self):
        superset = [f"v{i}" for i in range(100)]
        subset = [f"v{i}" for i in range(30)]
        signature_sub = MinHashSignature(subset)
        signature_super = MinHashSignature(superset)
        assert signature_sub.containment_in(signature_super) > 0.6

    def test_empty_set(self):
        assert MinHashSignature([]).jaccard(MinHashSignature(["a"])) == 0.0

    def test_mismatched_hash_counts_rejected(self):
        with pytest.raises(ValueError):
            MinHashSignature(["a"], num_hashes=16).jaccard(MinHashSignature(["a"], num_hashes=32))


class TestProfiles:
    def test_profile_numeric_column(self):
        column = Column.numeric("x", [1.0, 2.0, 2.0, None])
        profile = profile_column("t", column)
        assert profile.num_distinct == 2
        assert profile.null_fraction == pytest.approx(0.25)
        assert profile.min_value == 1.0 and profile.max_value == 2.0

    def test_key_likeness(self):
        key_like = profile_column("t", Column.numeric("id", list(range(50))))
        not_key = profile_column("t", Column.numeric("flag", [0.0, 1.0] * 25))
        assert key_like.looks_like_key
        assert not not_key.looks_like_key

    def test_profile_table_covers_all_columns(self, base_table):
        profiles = profile_table(base_table)
        assert set(profiles) == set(base_table.column_names)


class TestRepository:
    def test_add_and_get(self, base_table):
        repo = DataRepository([base_table.rename("base")])
        assert "base" in repo
        assert repo.get("base").num_rows == 6

    def test_duplicate_names_rejected(self, base_table):
        repo = DataRepository([base_table])
        with pytest.raises(ValueError):
            repo.add(base_table)

    def test_unnamed_table_rejected(self):
        with pytest.raises(ValueError):
            DataRepository([Table.from_dict({"a": [1.0]})])

    def test_missing_table_error(self, base_table):
        repo = DataRepository([base_table])
        with pytest.raises(KeyError):
            repo.get("nope")

    def test_csv_directory_roundtrip(self, tmp_path, base_table, foreign_table):
        from repro.relational.io import write_csv

        write_csv(base_table, tmp_path / "base.csv")
        write_csv(foreign_table, tmp_path / "foreign.csv")
        repo = DataRepository.from_csv_directory(tmp_path)
        assert len(repo) == 2
        assert set(repo.table_names) == {"base", "foreign"}


class TestJoinDiscovery:
    def test_finds_joinable_table_by_value_overlap(self, base_table, foreign_table):
        repo = DataRepository([foreign_table])
        candidates = JoinDiscovery().discover(base_table, repo, target="target")
        assert candidates, "expected at least one candidate join"
        best = candidates[0]
        assert best.foreign_table == "foreign"
        assert ("entity_id", "entity_id") in best.key_pairs()

    def test_does_not_propose_base_table_itself(self, base_table):
        repo = DataRepository([base_table])
        assert JoinDiscovery().discover(base_table, repo, target="target") == []

    def test_datetime_keys_marked_soft(self):
        from repro.relational.schema import DATETIME

        base = Table.from_dict({"ts": [0.0, 86400.0], "target": [1.0, 2.0]},
                               types={"ts": DATETIME}, name="b")
        weather = Table.from_dict({"ts": [0.0, 3600.0], "temp": [10.0, 12.0]},
                                  types={"ts": DATETIME}, name="weather")
        candidates = JoinDiscovery().discover(base, DataRepository([weather]), target="target")
        assert candidates and candidates[0].is_soft

    def test_candidates_sorted_by_score(self, base_table, foreign_table):
        junk = Table.from_dict({"something": ["p", "q"], "x": [1.0, 2.0]}, name="junk")
        repo = DataRepository([foreign_table, junk])
        candidates = JoinDiscovery().discover(base_table, repo, target="target")
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_join_candidate_helpers(self):
        candidate = JoinCandidate("t", [KeyPair("a", "b", soft=True)], score=0.5)
        assert candidate.is_soft
        assert candidate.base_columns == ["a"]
        assert candidate.key_pairs() == [("a", "b")]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=10, max_value=60), st.integers(min_value=2, max_value=10))
def test_stratified_sample_never_exceeds_population(n, size):
    """Property: stratified sampling returns valid, distinct indices of the right count."""
    rng = np.random.default_rng(n + size)
    y = rng.integers(0, 3, size=n).astype(float)
    indices = StratifiedSampler(random_state=0).sample_indices(n, min(size, n), y=y)
    assert len(set(indices.tolist())) == len(indices)
    assert indices.max() < n
