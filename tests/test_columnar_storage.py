"""Property tests for the dictionary-encoded columnar storage layer.

Every test pits a code-path that operates on dictionary codes against a
reference implementation operating on decoded object arrays (the storage
format this layer replaced) and asserts byte-identical results: join probes,
group-by aggregation, one-hot/frequency encoding, MinHash profiling and
categorical imputation.  A second group pins the view semantics: ``take`` /
``filter`` / ``sort_by`` defer all copying and materialise to exactly what the
eager representation produced.
"""

import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.discovery.profiles import profile_column
from repro.discovery.repository import ProfileCache
from repro.relational.aggregate import _group_rows, _group_rows_fallback, group_by_aggregate
from repro.relational.column import Column
from repro.relational.encoding import encode_features, encode_target
from repro.relational.imputation import impute_categorical_random
from repro.relational.join import _match_first_occurrence, _match_via_hash_index
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table

# -- strategies -------------------------------------------------------------

categories = st.sampled_from(["a", "b", "c", "dd", "e-e", ""])
cat_values = st.lists(st.one_of(categories, st.none()), min_size=0, max_size=40)
num_values = st.lists(
    st.one_of(st.sampled_from([0.0, 1.0, 2.5, -3.0]), st.none()), min_size=0, max_size=40
)


def make_table(cat_a, num_b, name="t"):
    n = min(len(cat_a), len(num_b))
    return Table.from_dict(
        {"k": cat_a[:n], "x": num_b[:n]}, types={"k": CATEGORICAL}, name=name
    )


# -- dictionary encoding invariants ----------------------------------------


class TestDictionaryEncoding:
    @given(cat_values)
    def test_roundtrip_preserves_values(self, values):
        col = Column.categorical("c", values)
        assert col.to_list() == [None if v is None else str(v) for v in values]

    @given(cat_values)
    def test_codes_and_dictionary_are_consistent(self, values):
        col = Column.categorical("c", values)
        codes, dictionary = col.codes, col.dictionary
        assert codes.dtype == np.int32
        assert len(set(dictionary)) == len(dictionary)  # no duplicate entries
        assert codes.max(initial=-1) < len(dictionary)
        # decoding through the dictionary reproduces values
        decoded = [None if c < 0 else dictionary[c] for c in codes]
        assert decoded == col.to_list()

    @given(cat_values)
    def test_unique_matches_first_seen_order(self, values):
        col = Column.categorical("c", values)
        seen = {}
        for v in values:
            if v is not None and str(v) not in seen:
                seen[str(v)] = True
        assert col.unique() == list(seen)
        # the same holds on a view, where the dictionary fast path is invalid
        idx = np.arange(len(col))[::-1]
        view = col.take(idx)
        seen_rev = {}
        for v in reversed([None if v is None else str(v) for v in values]):
            if v is not None and v not in seen_rev:
                seen_rev[v] = True
        assert view.unique() == list(seen_rev)

    def test_pickle_ships_codes_not_strings(self):
        col = Column.categorical("c", ["x", "y", "x", None] * 100)
        state = col.__getstate__()
        assert state[3].dtype == np.int32 and len(state[4]) == 2
        assert state[2] is None  # no decoded object array in the payload
        restored = pickle.loads(pickle.dumps(col))
        assert restored == col

    def test_pickled_view_ships_only_selected_rows(self):
        col = Column.categorical("c", [f"v{i}" for i in range(1000)])
        view = col.take(np.array([3, 5]))
        state = view.__getstate__()
        assert len(state[3]) == 2
        # the high-cardinality dictionary is compacted to the referenced entries
        assert len(state[4]) == 2
        assert pickle.loads(pickle.dumps(view)).to_list() == ["v3", "v5"]


# -- zero-copy view semantics ----------------------------------------------


class TestViews:
    def test_take_filter_select_head_are_lazy(self):
        table = Table.from_dict(
            {"k": ["a", "b", "a", None], "x": [1.0, 2.0, 3.0, 4.0]}, name="t"
        )
        taken = table.take(np.array([2, 0]))
        assert all(col.is_view for col in taken.columns())
        filtered = table.filter(np.array([True, False, True, True]))
        assert all(col.is_view for col in filtered.columns())
        assert all(col.is_view for col in table.head(2).columns())
        # reading materialises and matches eager semantics
        assert taken["k"].to_list() == ["a", "a"]
        assert filtered["x"].to_list() == [1.0, 3.0, 4.0]

    def test_views_compose_without_touching_data(self):
        table = Table.from_dict({"x": list(range(100))}, name="t")
        chained = table.take(np.arange(50)).filter(np.arange(50) % 2 == 0).head(5)
        col = chained.column("x")
        assert col.is_view
        assert col.to_list() == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_concurrent_view_resolution_is_safe(self):
        # thread-pool join workers share the base view's columns; racing
        # reads of an unresolved view must never observe half-resolved state
        rng = np.random.default_rng(0)
        table = Table.from_dict(
            {
                "k": [f"id{i % 1000}" for i in range(200_000)],
                "x": rng.normal(size=200_000),
            },
            name="t",
        )
        for _ in range(5):
            view = table.take(np.arange(0, 200_000, 2))
            results = [None] * 4
            errors = []

            def read(slot, col=view):
                try:
                    results[slot] = (col["k"].codes.sum(), col["x"].values.sum())
                except Exception as exc:  # pragma: no cover - only on regression
                    errors.append(exc)

            threads = [threading.Thread(target=read, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len({r for r in results}) == 1

    def test_materialised_view_is_an_independent_copy(self):
        table = Table.from_dict({"x": [1.0, 2.0, 3.0]}, name="t")
        view = table.take(np.array([0, 1]))
        view["x"].values[0] = 99.0
        assert table["x"].values[0] == 1.0

    @given(cat_values, st.randoms(use_true_random=False))
    def test_view_take_equals_eager_take(self, values, rnd):
        col = Column.categorical("c", values)
        if not len(col):
            return
        idx = np.array([rnd.randrange(len(col)) for _ in range(7)])
        eager = [col.to_list()[i] for i in idx]
        assert col.take(idx).to_list() == eager

    def test_sort_by_categorical_matches_object_sort(self):
        values = ["b", None, "a", "￿", "a", None, "c"]
        table = Table.from_dict({"k": values}, types={"k": CATEGORICAL}, name="t")
        keys = np.array([v if v is not None else "￿" for v in values], dtype=object)
        expected = [values[i] for i in np.argsort(keys, kind="stable")]
        assert table.sort_by("k")["k"].to_list() == expected


# -- code paths vs object-array reference paths ----------------------------


class TestReferenceEquivalence:
    @settings(max_examples=60)
    @given(cat_values, num_values, cat_values, num_values)
    def test_join_probe_matches_hash_index_reference(self, lk, lx, rk, rx):
        left = make_table(lk, lx, "l")
        right = make_table(rk, rx, "r")
        if left.num_rows == 0 or right.num_rows == 0:
            return
        cols_l = [left.column("k"), left.column("x")]
        cols_r = [right.column("k"), right.column("x")]
        assert np.array_equal(
            _match_first_occurrence(cols_l, cols_r), _match_via_hash_index(cols_l, cols_r)
        )

    @settings(max_examples=60)
    @given(cat_values, num_values)
    def test_group_rows_matches_object_tuple_reference(self, ks, xs):
        table = make_table(ks, xs)
        if table.num_rows == 0:
            return
        ids, firsts = _group_rows(table, ["k", "x"])
        ref_ids, ref_firsts = _group_rows_fallback(table, ["k", "x"])
        assert np.array_equal(ids, ref_ids)
        assert np.array_equal(firsts, ref_firsts)

    @settings(max_examples=40)
    @given(cat_values, num_values)
    def test_group_by_aggregate_matches_reference(self, ks, xs):
        table = make_table(ks, xs)
        if table.num_rows == 0:
            return
        result = group_by_aggregate(table, ["k"], numeric_agg="mean", categorical_agg="mode")
        expected = _reference_group_by_mean_mode(table, "k", "x")
        assert result["k"].to_list() == expected["k"]
        got = result["x"].to_list()
        for a, b in zip(got, expected["x"]):
            assert (np.isnan(a) and np.isnan(b)) or a == pytest.approx(b)

    @settings(max_examples=60)
    @given(cat_values)
    def test_one_hot_and_frequency_match_reference(self, values):
        col = Column.categorical("c", values)
        if not len(col):
            return
        table = Table([col], name="t")
        for max_categories in (20, 2):
            encoded = encode_features(table, impute=False, max_categories=max_categories)
            ref_block, ref_names = _reference_encode_categorical(col.values, "c", max_categories)
            assert encoded.feature_names == ref_names
            assert np.array_equal(encoded.matrix, ref_block)

    @given(cat_values)
    def test_encode_target_matches_reference(self, values):
        col = Column.categorical("c", values)
        categories = sorted({v for v in col.values if v is not None})
        index = {cat: i for i, cat in enumerate(categories)}
        expected = np.array([index.get(v, -1) for v in col.values], dtype=np.float64)
        assert np.array_equal(encode_target(col), expected)

    @settings(max_examples=40)
    @given(cat_values, st.integers(min_value=0, max_value=2**31 - 1))
    def test_minhash_signature_matches_object_reference(self, values, num_rows_seed):
        col = Column.categorical("c", values)
        profile = profile_column("t", col)
        # reference: profile the decoded values through a fresh object column
        reference = profile_column("t", Column.categorical("c", col.values))
        assert np.array_equal(profile.minhash.signature, reference.minhash.signature)
        assert profile.num_distinct == reference.num_distinct
        assert profile.null_fraction == reference.null_fraction

    @given(cat_values, st.integers(min_value=0, max_value=1000))
    def test_imputation_matches_object_reference(self, values, seed):
        col = Column.categorical("c", values)
        imputed = impute_categorical_random(col, rng=np.random.default_rng(seed))
        expected = _reference_impute(col.values, np.random.default_rng(seed))
        assert imputed.to_list() == expected


def _reference_group_by_mean_mode(table, key, num):
    """Old object-array group-by: tuples dict + per-slice aggregation."""
    groups: dict = {}
    order: list = []
    for k, x in zip(table[key].values, table[num].values):
        if k not in groups:
            groups[k] = []
            order.append(k)
        groups[k].append(x)
    out_x = []
    for k in order:
        values = np.array(groups[k], dtype=np.float64)
        out_x.append(float(np.nanmean(values)) if np.any(~np.isnan(values)) else float("nan"))
    return {key: order, num: out_x}


def _reference_encode_categorical(values, name, max_categories):
    """Old object-array one-hot / frequency encoder."""
    n = len(values)
    seen: dict = {}
    for v in values:
        if v is not None and v not in seen:
            seen[v] = True
    categories = list(seen)
    if 0 < len(categories) <= max_categories:
        block = np.zeros((n, len(categories)), dtype=np.float64)
        index = {cat: j for j, cat in enumerate(categories)}
        for i, value in enumerate(values):
            j = index.get(value)
            if j is not None:
                block[i, j] = 1.0
        return block, [f"{name}={cat}" for cat in categories]
    counts: dict = {}
    for value in values:
        if value is not None:
            counts[value] = counts.get(value, 0) + 1
    block = np.zeros((n, 1), dtype=np.float64)
    for i, value in enumerate(values):
        block[i, 0] = counts.get(value, 0) / max(n, 1)
    return block, [f"{name}__freq"]


def _reference_impute(values, rng):
    """Old object-array categorical imputation."""
    mask = np.array([v is None for v in values], dtype=bool)
    if not mask.any():
        return list(values)
    observed = [v for v in values if v is not None]
    out = list(values)
    if observed:
        picks = rng.integers(0, len(observed), size=int(mask.sum()))
        fills = iter([observed[p] for p in picks])
        for i, missing in enumerate(mask):
            if missing:
                out[i] = next(fills)
    else:
        out = ["__missing__"] * len(values)
    return out


# -- profile cache thread safety -------------------------------------------


class TestProfileCacheThreadSafety:
    def test_concurrent_counters_do_not_lose_increments(self):
        cache = ProfileCache()
        tables = [
            Table.from_dict({"k": [f"v{i}", f"w{i}"]}, name=f"t{i}") for i in range(8)
        ]
        n_threads, rounds = 8, 50

        def worker():
            for _ in range(rounds):
                for table in tables:
                    cache.get_or_profile(table, num_hashes=8)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        total = n_threads * rounds * len(tables)
        assert stats["hits"] + stats["misses"] == total
        # every lookup after the first per table must be a hit
        assert stats["misses"] <= len(tables) * n_threads  # racing first rounds only
        assert stats["entries"] == len(tables)

    def test_cache_survives_pickling_without_lock(self):
        cache = ProfileCache()
        cache.get_or_profile(Table.from_dict({"k": ["a"]}, name="t"))
        restored = pickle.loads(pickle.dumps(cache))
        assert restored.stats()["entries"] == 1
        restored.invalidate()  # lock was recreated and works
