"""Tests for CSV input/output."""

import numpy as np
import pytest

from repro.relational import Table, read_csv, write_csv
from repro.relational.schema import CATEGORICAL, DATETIME, NUMERIC


class TestCsvRoundTrip:
    def test_roundtrip_mixed_types(self, tmp_path, base_table):
        path = tmp_path / "base.csv"
        write_csv(base_table, path)
        loaded = read_csv(path, name="base")
        assert loaded.column_names == base_table.column_names
        assert loaded.num_rows == base_table.num_rows
        assert loaded["target"].values[3] == pytest.approx(40.0)
        assert loaded["category"].values[0] == "x"

    def test_missing_values_roundtrip(self, tmp_path):
        table = Table.from_dict({"x": [1.0, None], "c": ["a", None]}, name="t")
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert np.isnan(loaded["x"].values[1])
        assert loaded["c"].values[1] is None

    def test_datetime_roundtrip(self, tmp_path):
        table = Table.from_dict({"t": [0.0, 86400.0]}, types={"t": DATETIME}, name="t")
        path = tmp_path / "dt.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded["t"].ctype is DATETIME
        assert loaded["t"].values[1] == pytest.approx(86400.0)

    def test_read_infers_numeric_type(self, tmp_path):
        path = tmp_path / "n.csv"
        path.write_text("a,b\n1,x\n2.5,y\n")
        loaded = read_csv(path)
        assert loaded["a"].ctype is NUMERIC
        assert loaded["b"].ctype is CATEGORICAL

    def test_read_handles_na_tokens(self, tmp_path):
        path = tmp_path / "na.csv"
        path.write_text("a\n1\nNA\nnull\n")
        loaded = read_csv(path)
        assert loaded["a"].null_count() == 2

    def test_read_short_rows_padded_with_missing(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b\n1,2\n3\n")
        loaded = read_csv(path)
        assert np.isnan(loaded["b"].values[1])

    def test_read_overlong_rows_raise_instead_of_truncating(self, tmp_path):
        path = tmp_path / "long.csv"
        path.write_text("a,b\n1,2\n3,4,5\n")
        with pytest.raises(ValueError, match=r"row 3 has 3 cells.*2 columns"):
            read_csv(path)

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        loaded = read_csv(path)
        assert loaded.num_rows == 0

    def test_table_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "my_table.csv"
        path.write_text("a\n1\n")
        assert read_csv(path).name == "my_table"
