"""Tests for feature selection: rankers, statistical filters, relief, wrappers, search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.selection import (
    CLASSIFICATION,
    REGRESSION,
    AllFeaturesSelector,
    BackwardElimination,
    Chi2Ranker,
    ForwardSelection,
    LassoRanker,
    LinearSVCRanker,
    LogisticRegressionRanker,
    PearsonRanker,
    RandomForestRanker,
    RecursiveFeatureElimination,
    ReliefRanker,
    SparseRegressionRanker,
    available_selectors,
    exponential_search,
    holdout_score,
    infer_task,
    linear_forward_scan,
    make_selector,
    scores_to_normalised_ranks,
)
from repro.selection.statistical import (
    f_classification_scores,
    f_regression_scores,
    mutual_information_scores,
)


class TestTaskInference:
    def test_binary_labels_are_classification(self):
        assert infer_task(np.array([0.0, 1.0, 0.0, 1.0])) == CLASSIFICATION

    def test_continuous_target_is_regression(self):
        assert infer_task(np.linspace(0, 1, 50)) == REGRESSION

    def test_many_integer_values_is_regression(self):
        assert infer_task(np.arange(100, dtype=float)) == REGRESSION


class TestStatisticalScores:
    def test_f_regression_prefers_correlated_feature(self, regression_matrix):
        X, y = regression_matrix
        scores = f_regression_scores(X, y)
        assert scores[0] > scores[10]

    def test_f_classification_prefers_separating_feature(self, classification_matrix):
        X, y = classification_matrix
        scores = f_classification_scores(X, y)
        assert np.argmax(scores) < 3

    def test_constant_feature_scores_zero(self):
        X = np.column_stack([np.ones(50), np.arange(50.0)])
        y = np.arange(50.0)
        assert f_regression_scores(X, y)[0] == 0.0

    def test_mutual_information_nonnegative(self, classification_matrix):
        X, y = classification_matrix
        scores = mutual_information_scores(X, y, CLASSIFICATION)
        assert (scores >= 0).all()

    def test_mutual_information_detects_dependence(self, rng):
        informative = rng.normal(size=200)
        y = (informative > 0).astype(float)
        X = np.column_stack([informative, rng.normal(size=200)])
        scores = mutual_information_scores(X, y, CLASSIFICATION)
        assert scores[0] > scores[1]

    def test_chi2_requires_classification(self, regression_matrix):
        X, y = regression_matrix
        with pytest.raises(ValueError):
            Chi2Ranker().score_features(X, y, REGRESSION)

    def test_pearson_ranker(self, regression_matrix):
        X, y = regression_matrix
        ranking = PearsonRanker().rank(X, y, REGRESSION)
        assert ranking[0] in (0, 1, 2, 3)


class TestModelRankers:
    def test_random_forest_ranker_regression(self, regression_matrix):
        X, y = regression_matrix
        scores = RandomForestRanker(n_estimators=10).score_features(X, y, REGRESSION)
        assert scores[:4].sum() > scores[4:].sum()

    def test_random_forest_ranker_classification(self, classification_matrix):
        X, y = classification_matrix
        ranking = RandomForestRanker(n_estimators=10).rank(X, y, CLASSIFICATION)
        assert ranking[0] in (0, 1, 2)

    def test_sparse_regression_ranker(self, regression_matrix):
        X, y = regression_matrix
        scores = SparseRegressionRanker(gamma=1.0).score_features(X, y, REGRESSION)
        assert set(np.argsort(-scores)[:4]) == {0, 1, 2, 3}

    def test_lasso_ranker(self, regression_matrix):
        X, y = regression_matrix
        scores = LassoRanker(alpha=0.05).score_features(X, y, REGRESSION)
        assert scores[:4].min() > scores[4:].max()

    def test_logistic_ranker_rejects_regression(self, regression_matrix):
        X, y = regression_matrix
        with pytest.raises(ValueError):
            LogisticRegressionRanker().score_features(X, y, REGRESSION)

    def test_logistic_and_svc_rankers_find_signal(self, classification_matrix):
        X, y = classification_matrix
        for ranker in (LogisticRegressionRanker(), LinearSVCRanker()):
            ranking = ranker.rank(X, y, CLASSIFICATION)
            assert ranking[0] in (0, 1, 2)

    def test_relief_classification(self, classification_matrix):
        X, y = classification_matrix
        scores = ReliefRanker(sample_size=100).score_features(X, y, CLASSIFICATION)
        assert np.argmax(scores) in (0, 1, 2)

    def test_relief_regression_runs(self, regression_matrix):
        X, y = regression_matrix
        scores = ReliefRanker(sample_size=100).score_features(X, y, REGRESSION)
        assert scores.shape == (X.shape[1],)


class TestSearch:
    def test_exponential_search_selects_prefix(self, regression_matrix):
        X, y = regression_matrix
        ranking = np.array([0, 1, 2, 3] + list(range(4, X.shape[1])))
        selected, trace = exponential_search(X, y, ranking, REGRESSION)
        assert 2 <= len(selected) <= X.shape[1]
        assert set(selected[:2]) <= set(ranking[: len(selected)])
        assert len(trace.sizes) >= 2

    def test_exponential_search_trains_logarithmically_many_models(self, regression_matrix):
        X, y = regression_matrix
        ranking = np.arange(X.shape[1])
        _selected, trace = exponential_search(X, y, ranking, REGRESSION)
        assert len(trace.sizes) <= 2 * int(np.ceil(np.log2(X.shape[1]))) + 3

    def test_exponential_search_empty_ranking(self):
        selected, trace = exponential_search(
            np.empty((10, 0)), np.zeros(10), np.array([], dtype=int), REGRESSION
        )
        assert len(selected) == 0

    def test_linear_scan_stops_with_patience(self, regression_matrix):
        X, y = regression_matrix
        ranking = np.arange(X.shape[1])
        selected, trace = linear_forward_scan(X, y, ranking, REGRESSION, patience=2)
        assert len(selected) >= 1
        assert len(trace.sizes) < X.shape[1]

    def test_holdout_score_empty_matrix(self):
        assert holdout_score(np.empty((10, 0)), np.zeros(10), REGRESSION) == -np.inf


class TestWrappers:
    def test_forward_selection_finds_signal(self, regression_matrix):
        X, y = regression_matrix
        result = ForwardSelection(candidate_pool=10, max_features=6).select(X, y, REGRESSION)
        assert len(set(result.selected) & {0, 1, 2, 3}) >= 2

    def test_backward_elimination_keeps_signal(self, classification_matrix):
        X, y = classification_matrix
        result = BackwardElimination(max_rounds=6).select(X, y, CLASSIFICATION)
        assert len(set(result.selected) & {0, 1, 2}) >= 2

    def test_rfe_selects_subset(self, regression_matrix):
        X, y = regression_matrix
        result = RecursiveFeatureElimination().select(X, y, REGRESSION)
        assert 0 < len(result.selected) <= X.shape[1]
        assert result.elapsed > 0

    def test_rfe_drop_fraction_validated(self):
        with pytest.raises(ValueError):
            RecursiveFeatureElimination(drop_fraction=1.5)

    def test_all_features_selector(self, regression_matrix):
        X, y = regression_matrix
        result = AllFeaturesSelector().select(X, y)
        assert len(result.selected) == X.shape[1]


class TestRegistry:
    def test_available_selectors_task_filtering(self):
        regression_methods = available_selectors(REGRESSION)
        classification_methods = available_selectors(CLASSIFICATION)
        assert "lasso" in regression_methods and "lasso" not in classification_methods
        assert "linear svc" in classification_methods and "linear svc" not in regression_methods
        assert "RIFS" in regression_methods

    def test_make_selector_unknown_name(self):
        with pytest.raises(ValueError):
            make_selector("bogus method")

    def test_make_selector_overrides(self):
        selector = make_selector("RIFS", n_rounds=3)
        assert selector.n_rounds == 3

    @pytest.mark.parametrize(
        "name", ["random forest", "f-test", "mutual info", "sparse regression", "relief"]
    )
    def test_registry_selectors_run_on_regression(self, name, regression_matrix):
        X, y = regression_matrix
        result = make_selector(name).select(X, y, task=REGRESSION)
        assert result.num_selected >= 1
        assert result.method == name


class TestRankNormalisation:
    def test_best_score_gets_rank_one(self):
        ranks = scores_to_normalised_ranks(np.array([0.1, 5.0, 1.0]))
        assert ranks[1] == 1.0
        assert ranks[0] == 0.0

    def test_constant_scores_all_half(self):
        ranks = scores_to_normalised_ranks(np.ones(5))
        assert np.allclose(ranks, 0.5)

    def test_single_feature(self):
        assert scores_to_normalised_ranks(np.array([3.0]))[0] == 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=2, max_size=50))
def test_normalised_ranks_are_bounded_and_order_preserving(scores):
    """Property: normalised ranks live in [0, 1] and respect the score order."""
    values = np.array(scores)
    ranks = scores_to_normalised_ranks(values)
    assert ranks.min() >= 0.0 and ranks.max() <= 1.0
    best, worst = np.argmax(values), np.argmin(values)
    assert ranks[best] >= ranks[worst]
