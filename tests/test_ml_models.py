"""Tests for the ML substrate: trees, forests, linear models, SVMs, kNN, sparse regression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    ElasticNet,
    KernelSVC,
    KNeighborsClassifier,
    KNeighborsRegressor,
    Lasso,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    RandomForestRegressor,
    Ridge,
    SparseRegression,
    accuracy_score,
    r2_score,
)
from repro.ml.base import check_X_y, clone, is_classifier
from repro.ml.sparse_regression import l21_norm, one_hot_labels


class TestBase:
    def test_clone_resets_fit_state(self):
        model = Ridge(alpha=2.0).fit(np.eye(3), np.arange(3.0))
        copy = clone(model)
        assert copy.alpha == 2.0
        assert copy.coef_ is None

    def test_is_classifier(self):
        assert is_classifier(RandomForestClassifier())
        assert not is_classifier(RandomForestRegressor())

    def test_check_X_y_shape_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((3, 2)), np.ones(4))

    def test_check_X_y_rejects_1d(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones(3), np.ones(3))

    def test_set_params_validates(self):
        with pytest.raises(ValueError):
            Ridge().set_params(bogus=1)


class TestTrees:
    def test_regressor_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_classifier_perfect_split(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_max_depth_limits_depth(self, regression_matrix):
        X, y = regression_matrix
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.depth() <= 3

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_feature_importances_sum_to_one(self, regression_matrix):
        X, y = regression_matrix
        model = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_importances_favor_informative_features(self, regression_matrix):
        X, y = regression_matrix
        model = DecisionTreeRegressor(max_depth=8, random_state=0).fit(X, y)
        informative = model.feature_importances_[:4].sum()
        assert informative > 0.8

    def test_classifier_proba_rows_sum_to_one(self, classification_matrix):
        X, y = classification_matrix
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.full(30, 7.0)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.node_count == 1
        assert np.allclose(model.predict(X), 7.0)

    def test_min_samples_leaf_respected(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.arange(10, dtype=float)
        model = DecisionTreeRegressor(min_samples_leaf=5).fit(X, y)
        assert model.depth() <= 1


class TestForests:
    def test_regressor_beats_mean_baseline(self, regression_matrix):
        X, y = regression_matrix
        model = RandomForestRegressor(n_estimators=15, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.7

    def test_classifier_accuracy(self, classification_matrix):
        X, y = classification_matrix
        model = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_deterministic_given_seed(self, classification_matrix):
        X, y = classification_matrix
        a = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_feature_importances_normalised(self, classification_matrix):
        X, y = classification_matrix
        model = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_multiclass_predictions_are_valid_labels(self, rng):
        X = rng.normal(size=(200, 5))
        y = np.digitize(X[:, 0], [-0.5, 0.5]).astype(float)
        model = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert set(np.unique(model.predict(X))) <= {0.0, 1.0, 2.0}

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestLinearModels:
    def test_ols_recovers_coefficients(self, rng):
        X = rng.normal(size=(200, 3))
        y = X @ np.array([1.0, -2.0, 3.0]) + 5.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [1.0, -2.0, 3.0], atol=1e-8)
        assert model.intercept_ == pytest.approx(5.0)

    def test_ridge_shrinks_towards_zero(self, rng):
        X = rng.normal(size=(100, 3))
        y = X @ np.array([1.0, 2.0, 3.0])
        small = Ridge(alpha=0.001).fit(X, y)
        large = Ridge(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_lasso_zeroes_out_irrelevant(self, regression_matrix):
        X, y = regression_matrix
        model = Lasso(alpha=0.1).fit(X, y)
        assert np.abs(model.coef_[4:]).max() < np.abs(model.coef_[:4]).max()

    def test_elastic_net_predicts(self, regression_matrix):
        X, y = regression_matrix
        model = ElasticNet(alpha=0.01, l1_ratio=0.5).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_lasso_converges(self, regression_matrix):
        X, y = regression_matrix
        model = Lasso(alpha=0.01, max_iter=500).fit(X, y)
        assert model.n_iter_ < 500


class TestLogisticAndSVM:
    def test_logistic_binary(self, classification_matrix):
        X, y = classification_matrix
        model = LogisticRegression().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_logistic_proba_valid(self, classification_matrix):
        X, y = classification_matrix
        probabilities = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert probabilities.min() >= 0.0

    def test_logistic_multiclass(self, rng):
        X = rng.normal(size=(300, 4))
        y = np.digitize(X[:, 0] + X[:, 1], [-0.7, 0.7]).astype(float)
        model = LogisticRegression().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_logistic_single_class_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((5, 2)), np.zeros(5))

    def test_linear_svc_binary(self, classification_matrix):
        X, y = classification_matrix
        model = LinearSVC().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9
        assert model.coef_.shape == (1, X.shape[1])

    def test_linear_svc_multiclass_coef_shape(self, rng):
        X = rng.normal(size=(200, 4))
        y = np.digitize(X[:, 0], [-0.5, 0.5]).astype(float)
        model = LinearSVC().fit(X, y)
        assert model.coef_.shape == (3, 4)

    def test_kernel_svc_nonlinear_boundary(self, rng):
        X = rng.normal(size=(300, 2))
        y = (np.sum(X**2, axis=1) < 1.0).astype(float)
        model = KernelSVC(C=5.0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_kernel_svc_explicit_gamma(self, classification_matrix):
        X, y = classification_matrix
        model = KernelSVC(gamma=0.1).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8


class TestKNN:
    def test_classifier_memorises_training_data(self, classification_matrix):
        X, y = classification_matrix
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_regressor_interpolates(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 10.0, 20.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        assert model.predict(np.array([[0.6]]))[0] == pytest.approx(5.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.ones((1, 2)))


class TestSparseRegression:
    def test_l21_norm(self):
        matrix = np.array([[3.0, 4.0], [0.0, 0.0]])
        assert l21_norm(matrix) == pytest.approx(5.0)

    def test_one_hot_labels(self):
        labels = one_hot_labels(np.array([0.0, 2.0, 0.0]))
        assert labels.shape == (3, 2)
        assert labels.sum() == 3.0

    def test_objective_is_non_increasing(self, regression_matrix):
        X, y = regression_matrix
        model = SparseRegression(gamma=1.0, max_iter=20).fit(X, y)
        history = np.array(model.objective_history_)
        assert np.all(np.diff(history) <= 1e-6)

    def test_feature_scores_favor_informative(self, regression_matrix):
        X, y = regression_matrix
        model = SparseRegression(gamma=1.0).fit(X, y)
        assert model.feature_scores_[:4].min() > model.feature_scores_[4:].max()

    def test_ranking_order(self, regression_matrix):
        X, y = regression_matrix
        model = SparseRegression(gamma=1.0).fit(X, y)
        assert set(model.ranking()[:4]) == {0, 1, 2, 3}

    def test_multi_output_classification_target(self, classification_matrix):
        X, y = classification_matrix
        model = SparseRegression(gamma=0.5).fit(X, one_hot_labels(y))
        assert model.feature_scores_.shape == (X.shape[1],)

    def test_predict_shape(self, regression_matrix):
        X, y = regression_matrix
        model = SparseRegression(gamma=0.1).fit(X, y)
        assert model.predict(X).shape == (X.shape[0],)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=30, max_value=80))
def test_forest_predictions_within_training_target_range(depth, n):
    """Property: averaged tree predictions never leave the training target range."""
    rng = np.random.default_rng(depth * 100 + n)
    X = rng.normal(size=(n, 3))
    y = rng.uniform(-5, 5, size=n)
    model = RandomForestRegressor(n_estimators=5, max_depth=depth, random_state=0).fit(X, y)
    predictions = model.predict(rng.normal(size=(20, 3)))
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9
