"""Tests for the Table class."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.relational import Table
from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL


class TestConstruction:
    def test_from_dict_and_shape(self, base_table):
        assert base_table.shape == (6, 4)
        assert base_table.column_names == ["entity_id", "feature_a", "category", "target"]

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table([Column.numeric("a", [1.0]), Column.numeric("b", [1.0, 2.0])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Table([Column.numeric("a", [1.0]), Column.numeric("a", [2.0])])

    def test_from_rows(self):
        table = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2}])
        assert table.shape == (2, 2)
        assert table["b"].values[1] is None

    def test_empty_table(self):
        table = Table([])
        assert table.num_rows == 0
        assert table.num_columns == 0

    def test_from_dict_with_explicit_types(self):
        table = Table.from_dict({"code": [1, 2]}, types={"code": CATEGORICAL})
        assert table["code"].ctype is CATEGORICAL


class TestColumnAccess:
    def test_missing_column_error_lists_available(self, base_table):
        with pytest.raises(KeyError, match="entity_id"):
            base_table.column("nope")

    def test_contains(self, base_table):
        assert "target" in base_table
        assert "nope" not in base_table

    def test_select_reorders(self, base_table):
        selected = base_table.select(["target", "entity_id"])
        assert selected.column_names == ["target", "entity_id"]

    def test_drop(self, base_table):
        assert "category" not in base_table.drop("category")

    def test_drop_missing_raises(self, base_table):
        with pytest.raises(KeyError):
            base_table.drop(["nope"])

    def test_with_column_replaces(self, base_table):
        replaced = base_table.with_column(Column.numeric("target", [0.0] * 6))
        assert replaced["target"].values[0] == 0.0
        assert replaced.num_columns == base_table.num_columns

    def test_with_column_length_mismatch(self, base_table):
        with pytest.raises(ValueError):
            base_table.with_column(Column.numeric("new", [1.0]))

    def test_rename_columns(self, base_table):
        renamed = base_table.rename_columns({"feature_a": "f"})
        assert "f" in renamed and "feature_a" not in renamed

    def test_prefix_columns_with_exclusion(self, base_table):
        prefixed = base_table.prefix_columns("t.", exclude=["entity_id"])
        assert "entity_id" in prefixed
        assert "t.target" in prefixed


class TestRowOperations:
    def test_take_and_row(self, base_table):
        taken = base_table.take(np.array([5, 0]))
        assert taken.num_rows == 2
        assert taken.row(0)["target"] == 60.0

    def test_filter_mask_length_checked(self, base_table):
        with pytest.raises(ValueError):
            base_table.filter(np.array([True]))

    def test_filter(self, base_table):
        filtered = base_table.filter(base_table["target"].values > 30)
        assert filtered.num_rows == 3

    def test_sort_by_numeric_descending(self, base_table):
        ordered = base_table.sort_by("target", descending=True)
        assert ordered["target"].values[0] == 60.0

    def test_sort_by_puts_nan_last(self):
        table = Table.from_dict({"x": [None, 2.0, 1.0]})
        ordered = table.sort_by("x")
        assert ordered["x"].values[0] == 1.0
        assert np.isnan(ordered["x"].values[-1])

    def test_sort_by_categorical(self):
        table = Table.from_dict({"c": ["b", "a", None]})
        ordered = table.sort_by("c")
        assert ordered["c"].values[0] == "a"
        assert ordered["c"].values[-1] is None

    def test_concat_rows(self, base_table):
        doubled = base_table.concat_rows(base_table)
        assert doubled.num_rows == 12

    def test_concat_rows_schema_mismatch(self, base_table):
        with pytest.raises(ValueError):
            base_table.concat_rows(base_table.drop("category"))

    def test_hstack_resolves_name_clashes(self, base_table):
        stacked = base_table.hstack(base_table.select(["target"]))
        assert "target_r" in stacked

    def test_head(self, base_table):
        assert base_table.head(2).num_rows == 2

    def test_iter_rows(self, base_table):
        rows = list(base_table.iter_rows())
        assert len(rows) == 6
        assert rows[0]["category"] == "x"


class TestConversion:
    def test_numeric_matrix_excludes_categorical(self, base_table):
        matrix = base_table.numeric_matrix()
        assert matrix.shape == (6, 3)

    def test_numeric_matrix_rejects_categorical_request(self, base_table):
        with pytest.raises(ValueError):
            base_table.numeric_matrix(["category"])

    def test_to_dict_roundtrip(self, base_table):
        rebuilt = Table.from_dict(base_table.to_dict(), name="base")
        assert rebuilt == base_table

    def test_copy_is_independent(self, base_table):
        copy = base_table.copy()
        copy["target"].values[0] = -1.0
        assert base_table["target"].values[0] == 10.0

    def test_equality(self, base_table):
        assert base_table == base_table.copy()
        assert base_table != base_table.drop("category")


@given(
    st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=40),
    st.integers(min_value=0, max_value=39),
)
def test_take_then_row_matches_original(values, index):
    """take() of a permutation preserves every value exactly."""
    index = index % len(values)
    table = Table.from_dict({"x": values})
    permutation = np.roll(np.arange(len(values)), 1)
    taken = table.take(permutation)
    assert taken["x"].values[(index + 1) % len(values)] == pytest.approx(values[index])


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=16), min_size=2, max_size=30))
def test_sort_by_is_ordered_and_a_permutation(values):
    """sort_by produces a non-decreasing permutation of the input."""
    table = Table.from_dict({"x": values})
    ordered = table.sort_by("x")["x"].values
    assert np.all(np.diff(ordered) >= 0)
    assert sorted(ordered.tolist()) == sorted([float(v) for v in values])
