"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.relational import Table


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "stress: deep randomized concurrency runs; tier-1 runs a quick "
        "profile, set ARDA_STRESS=<iterations> for the full sweep",
    )


@pytest.fixture(scope="session")
def si_repro_dir(tmp_path_factory) -> Path:
    """Where failing snapshot-isolation histories are serialized for replay.

    Defaults to ``tests/_si_failures`` (checked-in ``.gitignore``\\ d path that
    CI uploads as an artifact); ``ARDA_SI_REPRO_DIR`` overrides it.
    """
    override = os.environ.get("ARDA_SI_REPRO_DIR", "").strip()
    if override:
        return Path(override)
    return Path(__file__).parent / "_si_failures"


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture
def base_table():
    """A small base table with an entity key, mixed column types and a target."""
    return Table.from_dict(
        {
            "entity_id": [0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            "feature_a": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "category": ["x", "y", "x", "y", "x", "y"],
            "target": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        },
        name="base",
    )


@pytest.fixture
def foreign_table():
    """A foreign table joinable on entity_id, with one duplicate key."""
    return Table.from_dict(
        {
            "entity_id": [0.0, 1.0, 1.0, 2.0, 9.0],
            "value": [100.0, 200.0, 300.0, 400.0, 500.0],
            "label": ["a", "b", "c", "a", "d"],
        },
        name="foreign",
    )


@pytest.fixture
def regression_matrix(rng):
    """A (X, y) regression problem with 4 informative and 16 noise features."""
    n = 250
    informative = rng.normal(size=(n, 4))
    noise = rng.normal(size=(n, 16))
    weights = np.array([2.0, -1.5, 1.0, 0.5])
    y = informative @ weights + 0.1 * rng.normal(size=n)
    X = np.column_stack([informative, noise])
    return X, y


@pytest.fixture
def classification_matrix(rng):
    """A (X, y) binary classification problem with 3 informative and 12 noise features."""
    n = 250
    informative = rng.normal(size=(n, 3))
    noise = rng.normal(size=(n, 12))
    score = informative @ np.array([2.0, -1.0, 1.5])
    y = (score > 0).astype(np.float64)
    X = np.column_stack([informative, noise])
    return X, y
