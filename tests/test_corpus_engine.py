"""Property tests for the corpus-scale engine.

Pins the two determinism contracts the chunk-sharded discovery and the Grace
build-side-spill join advertise:

* sharded repository profiling (and therefore discovery's candidate ranking)
  is **byte-identical** to the serial per-table path on every executor
  backend — parallelism only changes wall-clock time;
* the spill join reproduces ``left_join`` **exactly** for every partition
  count, including forced single partitions, one-row tables and key
  distributions that leave partitions empty.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.executor import make_executor
from repro.discovery.discovery import JoinDiscovery
from repro.discovery.repository import DataRepository
from repro.relational.join import as_chunk_source, grace_left_join, left_join
from repro.relational.schema import CATEGORICAL, NUMERIC
from repro.relational.table import Table

# -- strategies -------------------------------------------------------------

key_entries = st.one_of(st.none(), st.sampled_from([0.0, 1.0, 2.0, 7.5, -3.0]))
cat_entries = st.one_of(
    st.none(), st.sampled_from(["a", "bb", "", "日本語", "x y", "-1.5"])
)
num_entries = st.one_of(st.none(), st.sampled_from([0.0, -1.5, 2.0**40, 3.25]))
id_entries = st.sampled_from([f"id-{i}" for i in range(12)])
partition_counts = st.sampled_from([1, 2, 3, 5, 8])
chunk_targets = st.sampled_from([1, 2, 3, 7])


@st.composite
def repositories(draw):
    """A tiny corpus: 1-3 candidate tables sharing an id domain with a base."""
    n_tables = draw(st.integers(min_value=1, max_value=3))
    tables = []
    for index in range(n_tables):
        n_rows = draw(st.integers(min_value=0, max_value=20))
        tables.append(
            Table.from_dict(
                {
                    "entity_id": draw(
                        st.lists(id_entries, min_size=n_rows, max_size=n_rows)
                    ),
                    "measure": draw(
                        st.lists(num_entries, min_size=n_rows, max_size=n_rows)
                    ),
                    "tag": draw(
                        st.lists(cat_entries, min_size=n_rows, max_size=n_rows)
                    ),
                },
                types={"entity_id": CATEGORICAL, "measure": NUMERIC, "tag": CATEGORICAL},
                name=f"aux_{index}",
            )
        )
    base_rows = draw(st.integers(min_value=1, max_value=15))
    base = Table.from_dict(
        {
            "entity_id": draw(
                st.lists(id_entries, min_size=base_rows, max_size=base_rows)
            ),
            "f0": draw(st.lists(num_entries, min_size=base_rows, max_size=base_rows)),
            "target": draw(
                st.lists(st.sampled_from([0.0, 1.0]), min_size=base_rows, max_size=base_rows)
            ),
        },
        types={"entity_id": CATEGORICAL, "f0": NUMERIC, "target": NUMERIC},
        name="base",
    )
    return tables, base


@st.composite
def join_cases(draw):
    """A left table, a right table and key pairs, all with messy keys."""
    n_left = draw(st.integers(min_value=0, max_value=25))
    n_right = draw(st.integers(min_value=0, max_value=12))
    left = Table.from_dict(
        {
            "k": draw(st.lists(key_entries, min_size=n_left, max_size=n_left)),
            "c": draw(st.lists(cat_entries, min_size=n_left, max_size=n_left)),
            "x": draw(st.lists(num_entries, min_size=n_left, max_size=n_left)),
        },
        types={"k": NUMERIC, "c": CATEGORICAL, "x": NUMERIC},
        name="left",
    )
    right = Table.from_dict(
        {
            "rk": draw(st.lists(key_entries, min_size=n_right, max_size=n_right)),
            "rc": draw(st.lists(cat_entries, min_size=n_right, max_size=n_right)),
            "v": draw(st.lists(num_entries, min_size=n_right, max_size=n_right)),
        },
        types={"rk": NUMERIC, "rc": CATEGORICAL, "v": NUMERIC},
        name="right",
    )
    composite = draw(st.booleans())
    on = [("k", "rk"), ("c", "rc")] if composite else [("k", "rk")]
    return left, right, on


def persisted_repository(tmp_path, tables, chunk_rows):
    repo = DataRepository.open(tmp_path, load_profiles=False, chunk_rows=chunk_rows)
    for table in tables:
        repo.add(table)
    return repo


def profile_states(profiles_by_table):
    return {
        name: {column: profile.to_state() for column, profile in profiles.items()}
        for name, profiles in profiles_by_table.items()
    }


def candidate_fingerprint(candidates):
    return [
        (
            c.foreign_table,
            tuple((k.base_column, k.foreign_column, k.soft) for k in c.keys),
            c.score,
        )
        for c in candidates
    ]


def assert_tables_equal(got, want):
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for name in want.column_names:
        assert got.column(name) == want.column(name), name


# -- sharded discovery is byte-identical to serial --------------------------


class TestShardedDiscoveryDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(repositories(), chunk_targets, st.sampled_from(["serial", "thread"]))
    def test_profiles_many_matches_serial(
        self, tmp_path_factory, repo_case, chunk_rows, backend
    ):
        tables, _ = repo_case
        tmp_path = tmp_path_factory.mktemp("shard")
        repo = persisted_repository(tmp_path, tables, chunk_rows)
        serial = {
            table.name: repo.profiles(table.name, num_hashes=16) for table in tables
        }
        # a cold repository so the sharded path cannot serve the cache
        cold = DataRepository.open(tmp_path, load_profiles=False)
        executor = make_executor(backend, 3)
        try:
            sharded = cold.profiles_many(
                [t.name for t in tables], num_hashes=16, executor=executor
            )
        finally:
            executor.shutdown()
        assert profile_states(sharded) == profile_states(serial)

    @settings(max_examples=15, deadline=None)
    @given(repositories(), chunk_targets)
    def test_discover_ranking_matches_serial(
        self, tmp_path_factory, repo_case, chunk_rows
    ):
        tables, base = repo_case
        tmp_path = tmp_path_factory.mktemp("rank")
        persisted_repository(tmp_path, tables, chunk_rows)
        discovery = JoinDiscovery(num_hashes=16)

        def run(backend):
            cold = DataRepository.open(tmp_path, load_profiles=False)
            executor = make_executor(backend, 3) if backend else None
            try:
                return discovery.discover(base, cold, target="target", executor=executor)
            finally:
                if executor is not None:
                    executor.shutdown()

        serial = candidate_fingerprint(run(None))
        assert candidate_fingerprint(run("serial")) == serial
        assert candidate_fingerprint(run("thread")) == serial

    def test_process_executor_matches_serial(self, tmp_path):
        """One deterministic corpus through a real process pool."""
        tables = [
            Table.from_dict(
                {
                    "entity_id": [f"id-{i % 7}" for i in range(40)],
                    "measure": [float(i) for i in range(40)],
                },
                types={"entity_id": CATEGORICAL, "measure": NUMERIC},
                name=f"aux_{index}",
            )
            for index in range(3)
        ]
        base = Table.from_dict(
            {
                "entity_id": [f"id-{i % 5}" for i in range(20)],
                "target": [float(i % 2) for i in range(20)],
            },
            types={"entity_id": CATEGORICAL, "target": NUMERIC},
            name="base",
        )
        repo = persisted_repository(tmp_path, tables, chunk_rows=8)
        serial = {t.name: repo.profiles(t.name, num_hashes=16) for t in tables}
        cold = DataRepository.open(tmp_path, load_profiles=False)
        executor = make_executor("process", 2)
        try:
            sharded = cold.profiles_many(
                [t.name for t in tables], num_hashes=16, executor=executor
            )
        finally:
            executor.shutdown()
        assert profile_states(sharded) == profile_states(serial)


# -- the spill join reproduces left_join for every partition count ----------


class TestGraceSpillEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(join_cases(), chunk_targets, partition_counts)
    def test_matches_left_join(self, tmp_path_factory, case, chunk_rows, partitions):
        left, right, on = case
        reference = left_join(left, right, on)
        spill_dir = tmp_path_factory.mktemp("spill")
        got, stats = grace_left_join(
            as_chunk_source(left, chunk_rows=chunk_rows),
            right,
            on,
            num_partitions=partitions,
            spill_dir=spill_dir,
        )
        assert_tables_equal(got, reference)
        assert stats.spill_partitions == partitions

    def test_single_row_tables(self, tmp_path):
        left = Table.from_dict({"k": [1.0], "x": [2.0]}, name="left")
        right = Table.from_dict({"rk": [1.0], "v": [9.0]}, name="right")
        for partitions in (1, 2, 5):
            got, _ = grace_left_join(
                as_chunk_source(left, chunk_rows=1),
                right,
                [("k", "rk")],
                num_partitions=partitions,
                spill_dir=tmp_path,
            )
            assert_tables_equal(got, left_join(left, right, [("k", "rk")]))

    def test_empty_partitions_and_empty_right(self, tmp_path):
        # one distinct key: with 8 partitions, 7 build partitions stay empty
        left = Table.from_dict(
            {"k": [3.0] * 9 + [None], "x": [float(i) for i in range(10)]}, name="left"
        )
        right = Table.from_dict({"rk": [3.0, 4.0], "v": [1.0, 2.0]}, name="right")
        got, _ = grace_left_join(
            as_chunk_source(left, chunk_rows=3),
            right,
            [("k", "rk")],
            num_partitions=8,
            spill_dir=tmp_path,
        )
        assert_tables_equal(got, left_join(left, right, [("k", "rk")]))

        empty_right = Table.from_dict({"rk": [], "v": []}, name="right")
        got, _ = grace_left_join(
            as_chunk_source(left, chunk_rows=4),
            empty_right,
            [("k", "rk")],
            num_partitions=3,
            spill_dir=tmp_path,
        )
        assert_tables_equal(got, left_join(left, empty_right, [("k", "rk")]))
