"""Tests for row-group chunked storage, streaming joins and out-of-core runs.

Three property groups pin the format's central invariants: a chunked file is
*content-equivalent* to the monolithic file (same decoded table, same
fingerprint, version-1 bit-compatibility when one chunk suffices), a
zone-map-pruned streaming join is *result-equivalent* to the in-memory join
(pruned ≡ unpruned ≡ ``left_join``), and chunk-wise profiling/binning produce
the same artifacts as their whole-table counterparts.  Around them sit the
operational pieces: per-kind ``bytes_read`` accounting, the ``repro.repo``
maintenance CLI, atomic ``rechunk``, and a tracemalloc-bounded end-to-end
``augment`` + ``predict`` over a base table several times the memory budget.
"""

import json
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.repo as repo_cli
from repro import ARDA, ARDAConfig
from repro.discovery.profiles import profile_table, profile_table_chunks
from repro.discovery.repository import DataRepository
from repro.ml.binning import BinnedMatrix
from repro.relational.join import (
    as_chunk_source,
    left_join,
    streaming_left_join,
    streaming_match_fraction,
)
from repro.relational.persist import (
    bytes_read,
    bytes_read_detail,
    open_chunks,
    read_table,
    read_table_header,
    reset_bytes_read,
    table_fingerprint,
    write_table,
    write_table_stream,
)
from repro.relational.schema import CATEGORICAL, NUMERIC
from repro.relational.table import Table

# -- strategies -------------------------------------------------------------

cat_entries = st.one_of(
    st.none(), st.sampled_from(["a", "bb", "", "日本語", "x y", "-1.5"])
)
num_entries = st.one_of(st.none(), st.sampled_from([0.0, -1.5, 2.0**40, 3.25]))
column_kinds = st.sampled_from(["numeric", "categorical"])
chunk_targets = st.sampled_from([1, 2, 3, 5, 8])


@st.composite
def tables(draw):
    n_rows = draw(st.integers(min_value=0, max_value=25))
    n_cols = draw(st.integers(min_value=0, max_value=4))
    data, types = {}, {}
    for i in range(n_cols):
        kind = draw(column_kinds)
        name = f"col{i}_{kind}"
        if kind == "categorical":
            data[name] = draw(st.lists(cat_entries, min_size=n_rows, max_size=n_rows))
            types[name] = CATEGORICAL
        else:
            data[name] = draw(st.lists(num_entries, min_size=n_rows, max_size=n_rows))
            types[name] = NUMERIC
    return Table.from_dict(data, types=types, name="t")


@st.composite
def join_cases(draw):
    """A left table, a right table and key pairs, all with messy keys."""
    keys = st.one_of(st.none(), st.sampled_from([0.0, 1.0, 2.0, 7.5, -3.0]))
    n_left = draw(st.integers(min_value=0, max_value=30))
    n_right = draw(st.integers(min_value=0, max_value=12))
    left = Table.from_dict(
        {
            "k": draw(st.lists(keys, min_size=n_left, max_size=n_left)),
            "c": draw(st.lists(cat_entries, min_size=n_left, max_size=n_left)),
            "x": draw(st.lists(num_entries, min_size=n_left, max_size=n_left)),
        },
        types={"k": NUMERIC, "c": CATEGORICAL, "x": NUMERIC},
        name="left",
    )
    right = Table.from_dict(
        {
            "rk": draw(st.lists(keys, min_size=n_right, max_size=n_right)),
            "rc": draw(st.lists(cat_entries, min_size=n_right, max_size=n_right)),
            "v": draw(st.lists(num_entries, min_size=n_right, max_size=n_right)),
        },
        types={"rk": NUMERIC, "rc": CATEGORICAL, "v": NUMERIC},
        name="right",
    )
    composite = draw(st.booleans())
    on = [("k", "rk"), ("c", "rc")] if composite else [("k", "rk")]
    return left, right, on


def assert_tables_equal(got, want):
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for name in want.column_names:
        assert got.column(name) == want.column(name), name


# -- chunked files are content-equivalent to monolithic ones ----------------


class TestChunkedRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(tables(), chunk_targets)
    def test_chunked_file_decodes_identically(self, tmp_path_factory, table, chunk_rows):
        path = tmp_path_factory.mktemp("chunked") / "t.tbl"
        header = write_table(table, path, chunk_rows=chunk_rows)
        assert header.fingerprint == table_fingerprint(table)
        assert_tables_equal(read_table(path), table)
        reader = open_chunks(path)
        assert reader.num_rows == table.num_rows
        assert_tables_equal(reader.table(), table)
        parts = list(reader.iter_chunks())
        assert sum(p.num_rows for p in parts) == table.num_rows
        if table.num_rows > chunk_rows:
            assert reader.num_chunks > 1
            assert all(p.num_rows <= chunk_rows for p in parts)

    @settings(max_examples=40, deadline=None)
    @given(tables(), chunk_targets, st.randoms(use_true_random=False))
    def test_reader_take_matches_table_take(
        self, tmp_path_factory, table, chunk_rows, rnd
    ):
        path = tmp_path_factory.mktemp("take") / "t.tbl"
        write_table(table, path, chunk_rows=chunk_rows)
        reader = open_chunks(path)
        n = table.num_rows
        indices = np.array(
            [rnd.randrange(n) for _ in range(rnd.randrange(2 * n + 1))], dtype=np.int64
        ) if n else np.array([], dtype=np.int64)
        assert_tables_equal(reader.take(indices), table.take(indices))

    @settings(max_examples=40, deadline=None)
    @given(tables(), chunk_targets)
    def test_stream_write_equals_direct_write(self, tmp_path_factory, table, chunk_rows):
        """Re-chunking through ``write_table_stream`` preserves content."""
        tmp = tmp_path_factory.mktemp("stream")
        write_table(table, tmp / "a.tbl", chunk_rows=chunk_rows)
        source = open_chunks(tmp / "a.tbl")
        header = write_table_stream(
            tmp / "b.tbl", source.iter_chunks(), name=table.name, chunk_rows=3
        )
        assert header.fingerprint == table_fingerprint(table)
        assert_tables_equal(read_table(tmp / "b.tbl"), table)

    def test_single_chunk_write_is_bit_identical_to_v1(self, tmp_path):
        table = Table.from_dict(
            {"k": ["a", "b", None], "x": [1.0, None, 3.0]},
            types={"k": CATEGORICAL, "x": NUMERIC},
            name="t",
        )
        write_table(table, tmp_path / "v1.tbl", chunk_rows=0)
        write_table(table, tmp_path / "auto.tbl", chunk_rows=10)  # fits one chunk
        assert (tmp_path / "auto.tbl").read_bytes() == (tmp_path / "v1.tbl").read_bytes()
        assert read_table_header(tmp_path / "auto.tbl").chunks is None

    def test_views_and_sorts_straddle_chunk_boundaries(self, tmp_path):
        rng = np.random.default_rng(5)
        table = Table.from_dict(
            {
                "k": rng.permutation(40).astype(float),
                "c": [f"g{i % 3}" for i in range(40)],
            },
            types={"k": NUMERIC, "c": CATEGORICAL},
            name="t",
        )
        view = table.sort_by("k").take(np.arange(1, 39))
        write_table(view, tmp_path / "v.tbl", chunk_rows=7)
        assert_tables_equal(read_table(tmp_path / "v.tbl"), view)
        reader = open_chunks(tmp_path / "v.tbl")
        assert reader.num_chunks == 6
        assert_tables_equal(reader.table(), view)

    def test_zone_map_matches_actual_chunk_ranges(self, tmp_path):
        values = np.arange(20, dtype=float)
        table = Table.from_dict({"k": values[::-1]}, types={"k": NUMERIC}, name="t")
        write_table(table, tmp_path / "t.tbl", chunk_rows=6)
        reader = open_chunks(tmp_path / "t.tbl")
        for i in range(reader.num_chunks):
            lo, hi = reader.zones(i)["k"]
            chunk_values = reader.chunk(i).column("k").values
            assert lo == chunk_values.min() and hi == chunk_values.max()

    def test_v1_file_reads_as_single_unprunable_chunk(self, tmp_path):
        table = Table.from_dict({"x": [1.0, 2.0]}, types={"x": NUMERIC}, name="t")
        write_table(table, tmp_path / "t.tbl", chunk_rows=0)
        reader = open_chunks(tmp_path / "t.tbl")
        assert reader.num_chunks == 1 and not reader.has_zones
        assert reader.zones(0) is None
        assert_tables_equal(reader.table(), table)


# -- pruned streaming joins equal in-memory joins ---------------------------


class TestStreamingJoin:
    @settings(max_examples=50, deadline=None)
    @given(join_cases(), chunk_targets)
    def test_pruned_equals_unpruned_equals_in_memory(
        self, tmp_path_factory, case, chunk_rows
    ):
        left, right, on = case
        reference = left_join(left, right, on)
        path = tmp_path_factory.mktemp("join") / "left.tbl"
        write_table(left, path, chunk_rows=chunk_rows)
        for prune in (True, False):
            joined, stats = streaming_left_join(
                open_chunks(path), right, on, prune=prune
            )
            assert_tables_equal(joined, reference)
            assert stats.chunks_probed <= stats.chunks_total
        # an in-memory chunk source (no zone maps) takes the unpruned path
        joined, _ = streaming_left_join(
            as_chunk_source(left, chunk_rows=chunk_rows), right, on
        )
        assert_tables_equal(joined, reference)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors_produce_identical_results(self, tmp_path, executor):
        from repro.core.executor import make_executor

        rng = np.random.default_rng(11)
        left = Table.from_dict(
            {
                "k": rng.integers(0, 40, 500).astype(float),
                "x": rng.normal(size=500),
            },
            types={"k": NUMERIC, "x": NUMERIC},
            name="left",
        )
        right = Table.from_dict(
            {"rk": np.arange(40, dtype=float), "v": rng.normal(size=40)},
            types={"rk": NUMERIC, "v": NUMERIC},
            name="right",
        )
        write_table(left, tmp_path / "l.tbl", chunk_rows=64)
        reference = left_join(left, right, [("k", "rk")])
        with make_executor(executor, n_jobs=2) as pool:
            joined, stats = streaming_left_join(
                open_chunks(tmp_path / "l.tbl"), right, [("k", "rk")], executor=pool
            )
        assert_tables_equal(joined, reference)
        assert stats.rows_total == 500

    def test_zone_pruning_skips_selective_chunks(self, tmp_path):
        # sorted keys => each chunk covers a narrow range; a right side that
        # only overlaps the first tenth leaves the other chunks unprobed
        n = 10_000
        left = Table.from_dict(
            {"k": np.arange(n, dtype=float), "x": np.ones(n)},
            types={"k": NUMERIC, "x": NUMERIC},
            name="left",
        )
        right = Table.from_dict(
            {"rk": np.arange(n // 10, dtype=float), "v": np.zeros(n // 10)},
            types={"rk": NUMERIC, "v": NUMERIC},
            name="right",
        )
        write_table(left, tmp_path / "l.tbl", chunk_rows=500)
        pruned, stats = streaming_left_join(
            open_chunks(tmp_path / "l.tbl"), right, [("k", "rk")]
        )
        unpruned, _ = streaming_left_join(
            open_chunks(tmp_path / "l.tbl"), right, [("k", "rk")], prune=False
        )
        assert_tables_equal(pruned, unpruned)
        assert_tables_equal(pruned, left_join(left, right, [("k", "rk")]))
        assert stats.chunks_total == 20
        assert stats.pruning_ratio >= 0.5
        fraction, _ = streaming_match_fraction(
            open_chunks(tmp_path / "l.tbl"), right, [("k", "rk")]
        )
        assert fraction == pytest.approx(0.1)

    def test_categorical_zone_pruning_is_correct(self, tmp_path):
        # dictionary codes are file-level, so code-range zones are comparable
        # across chunks even though each chunk sees different values
        values = [f"v{i:04d}" for i in range(1000)]
        left = Table.from_dict(
            {"k": values, "x": np.arange(1000, dtype=float)},
            types={"k": CATEGORICAL, "x": NUMERIC},
            name="left",
        )
        right = Table.from_dict(
            {"rk": values[:100], "v": np.zeros(100)},
            types={"rk": CATEGORICAL, "v": NUMERIC},
            name="right",
        )
        write_table(left, tmp_path / "l.tbl", chunk_rows=100)
        joined, stats = streaming_left_join(
            open_chunks(tmp_path / "l.tbl"), right, [("k", "rk")]
        )
        assert_tables_equal(joined, left_join(left, right, [("k", "rk")]))
        assert stats.chunks_probed < stats.chunks_total

    def test_memory_budget_bounds_streaming_join(self, tmp_path):
        n = 200_000
        rng = np.random.default_rng(3)
        left = Table.from_dict(
            {
                "k": rng.integers(0, 1000, n).astype(float),
                "x": rng.normal(size=n),
                "y": rng.normal(size=n),
            },
            types={"k": NUMERIC, "x": NUMERIC, "y": NUMERIC},
            name="left",
        )
        right = Table.from_dict(
            {"rk": np.arange(1000, dtype=float), "v": rng.normal(size=1000)},
            types={"rk": NUMERIC, "v": NUMERIC},
            name="right",
        )
        write_table(left, tmp_path / "l.tbl", chunk_rows=10_000)
        left_bytes = n * 3 * 8
        del left
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        header = write_table_stream(
            tmp_path / "out.tbl",
            (
                part
                for part in _stream_join_chunks(
                    tmp_path / "l.tbl", right, memory_budget=512 * 1024
                )
            ),
            name="out",
            chunk_rows=10_000,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert header.num_rows == n
        # the whole join never holds more than a few chunk waves: far below
        # the 4.8 MB the materialised left table (let alone its join) needs
        assert peak - baseline < left_bytes // 2


def _stream_join_chunks(path, right, memory_budget):
    from repro.relational.join import iter_streaming_left_join

    yield from iter_streaming_left_join(
        open_chunks(path), right, [("k", "rk")], memory_budget=memory_budget
    )


# -- chunk-wise profiling and binning match whole-table results -------------


class TestChunkedProfilesAndBinning:
    def _mixed_table(self, n=3000, seed=0):
        rng = np.random.default_rng(seed)
        cats = [None if i % 17 == 0 else f"c{i % 23}" for i in range(n)]
        nums = rng.normal(size=n)
        nums[::13] = np.nan
        return Table.from_dict(
            {"cat": cats, "num": nums},
            types={"cat": CATEGORICAL, "num": NUMERIC},
            name="t",
        )

    def test_chunked_profiles_equal_whole_table_profiles(self, tmp_path):
        table = self._mixed_table()
        write_table(table, tmp_path / "t.tbl", chunk_rows=256)
        reference = profile_table(table)
        chunked = profile_table_chunks(open_chunks(tmp_path / "t.tbl"))
        assert set(chunked) == set(reference)
        for name in reference:
            assert chunked[name].to_state() == reference[name].to_state()

    def test_minhash_merge_is_exact_union(self):
        table = self._mixed_table()
        reference = profile_table(table)["cat"].minhash
        parts = [table.take(np.arange(0, 1500)), table.take(np.arange(1500, 3000))]
        merged = profile_table(parts[0])["cat"].minhash.merge(
            profile_table(parts[1])["cat"].minhash
        )
        assert np.array_equal(merged.signature, reference.signature)

    def test_chunked_binning_equals_in_memory_binning(self, tmp_path):
        table = self._mixed_table(n=2000, seed=4)
        write_table(table, tmp_path / "t.tbl", chunk_rows=300)
        matrix = np.column_stack(
            [table.column("num").values, table.column("num").values * 2.0]
        )
        reference = BinnedMatrix.from_matrix(matrix, max_bins=16)
        reader = open_chunks(tmp_path / "t.tbl")
        chunks = (
            np.column_stack(
                [part.column("num").values, part.column("num").values * 2.0]
            )
            for part in reader.iter_chunks()
        )
        chunked = BinnedMatrix.from_chunks(chunks, max_bins=16)
        assert np.array_equal(chunked.codes, reference.codes)
        assert np.array_equal(chunked.n_bins, reference.n_bins)
        for a, b in zip(chunked.bin_min, reference.bin_min):
            assert np.array_equal(a, b, equal_nan=True)
        for a, b in zip(chunked.bin_max, reference.bin_max):
            assert np.array_equal(a, b, equal_nan=True)


# -- bytes-read accounting --------------------------------------------------


class TestBytesReadAccounting:
    def _chunked_file(self, tmp_path, rows=20_000):
        rng = np.random.default_rng(0)
        table = Table.from_dict(
            {
                "k": rng.integers(0, 100, rows).astype(float),
                "c": [f"g{i % 9}" for i in range(rows)],
                "x": rng.normal(size=rows),
            },
            types={"k": NUMERIC, "c": CATEGORICAL, "x": NUMERIC},
            name="big",
        )
        path = tmp_path / "big.tbl"
        write_table(table, path, chunk_rows=1000)
        return path

    def test_header_open_reads_no_pages(self, tmp_path):
        path = self._chunked_file(tmp_path)
        reset_bytes_read()
        read_table_header(path)
        detail = bytes_read_detail()
        assert detail["pages"] == 0 and detail["dictionary"] == 0
        assert detail["header"] > 0 and detail["zone_map"] > 0

    def test_cold_open_stays_under_five_percent(self, tmp_path):
        path = self._chunked_file(tmp_path)
        file_bytes = path.stat().st_size
        reset_bytes_read()
        DataRepository.open(tmp_path, load_profiles=False)
        assert bytes_read() < 0.05 * file_bytes

    def test_chunk_reads_are_counted_per_kind(self, tmp_path):
        path = self._chunked_file(tmp_path)
        reset_bytes_read()
        reader = open_chunks(path, mmap=False)
        opened = bytes_read_detail()
        assert opened["dictionary"] == 0  # decoded lazily, not at open
        assert opened["pages"] == 0
        assert reader.chunks_read == 0
        reader.chunk(0)
        reader.chunk(3)
        detail = bytes_read_detail()
        assert reader.chunks_read == 2
        assert detail["pages"] == reader.chunk_nbytes(0) + reader.chunk_nbytes(3)
        # chunk 0 carries the categorical column, so its shared file-level
        # dictionary was decoded (and counted) on that first touch
        assert detail["dictionary"] > 0

    def test_numeric_scan_never_decodes_dictionaries(self, tmp_path):
        path = self._chunked_file(tmp_path)
        reset_bytes_read()
        reader = open_chunks(path, mmap=False)
        total = sum(len(chunk) for chunk in reader.iter_chunks(columns=["x"]))
        assert total == reader.num_rows
        assert bytes_read_detail()["dictionary"] == 0

    def test_mmap_chunk_reads_fault_no_counted_pages(self, tmp_path):
        path = self._chunked_file(tmp_path)
        reader = open_chunks(path)
        reset_bytes_read()
        reader.chunk(0)
        # mapped pages are charged only when explicitly read, not when mapped
        assert bytes_read_detail()["pages"] == 0

    def test_pruning_ratio_visible_per_table(self, tmp_path):
        path = self._chunked_file(tmp_path)
        right = Table.from_dict(
            {"rk": [0.0, 1.0], "v": [1.0, 2.0]},
            types={"rk": NUMERIC, "v": NUMERIC},
            name="r",
        )
        reader = open_chunks(path)
        _, stats = streaming_left_join(reader, right, [("k", "rk")])
        assert stats.chunks_total == reader.num_chunks
        assert 0.0 <= stats.pruning_ratio <= 1.0


def _dict_bytes(reader):
    ref = None
    for meta in reader.header.columns:
        if meta.dictionary is not None:
            ref = meta.dictionary
    return ref.nbytes if ref is not None else 0


# -- rechunk + maintenance CLI ----------------------------------------------


class TestRechunkAndCli:
    def _repo(self, tmp_path, chunk_rows=500):
        rng = np.random.default_rng(1)
        table = Table.from_dict(
            {
                "k": rng.integers(0, 50, 4000).astype(float),
                "c": [f"g{i % 5}" for i in range(4000)],
            },
            types={"k": NUMERIC, "c": CATEGORICAL},
            name="orders",
        )
        repo = DataRepository.open(tmp_path, chunk_rows=chunk_rows)
        repo.add(table)
        return repo, table

    def test_rechunk_preserves_content_and_fingerprint(self, tmp_path):
        repo, table = self._repo(tmp_path)
        fingerprint = repo.header("orders").fingerprint
        assert repo.header("orders").num_chunks == 8
        repo.rechunk("orders", chunk_rows=1000)
        assert repo.header("orders").num_chunks == 4
        assert repo.header("orders").fingerprint == fingerprint
        assert_tables_equal(repo.get("orders"), table)
        repo.rechunk("orders", chunk_rows=0)  # back to a monolithic v1 file
        assert repo.header("orders").chunks is None
        assert repo.header("orders").fingerprint == fingerprint
        assert_tables_equal(DataRepository.open(tmp_path).get("orders"), table)

    def test_snapshot_survives_rechunk(self, tmp_path):
        repo, table = self._repo(tmp_path)
        snapshot = repo.snapshot()
        repo.rechunk("orders", chunk_rows=2000)
        assert_tables_equal(snapshot.get("orders"), table)
        assert_tables_equal(repo.get("orders"), table)
        snapshot.release()

    def test_cli_stat_reports_layout_from_headers(self, tmp_path, capsys):
        self._repo(tmp_path)
        assert repo_cli.main(["stat", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "orders" in out and "v2" in out and "8" in out
        reset_bytes_read()
        assert repo_cli.main(["stat", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tables"][0]["chunks"] == 8
        assert doc["tables"][0]["zone_coverage"] == 1.0
        assert doc["bytes_read"]["pages"] == 0

    def test_cli_rechunk_rewrites_layout(self, tmp_path, capsys):
        self._repo(tmp_path)
        assert repo_cli.main(["rechunk", str(tmp_path), "orders", "--chunk-rows", "2000"]) == 0
        assert "8 -> 2 chunks" in capsys.readouterr().out
        assert repo_cli.main(["rechunk", str(tmp_path), "--all", "--chunk-rows", "0"]) == 0
        capsys.readouterr()
        assert DataRepository.open(tmp_path).header("orders").chunks is None

    def test_cli_error_paths(self, tmp_path, capsys):
        self._repo(tmp_path)
        assert repo_cli.main(["rechunk", str(tmp_path), "missing"]) == 1
        assert repo_cli.main(["rechunk", str(tmp_path)]) == 2
        assert repo_cli.main(["stat", str(tmp_path / "nope")]) == 1
        capsys.readouterr()


# -- out-of-core end to end -------------------------------------------------


class TestOutOfCoreAugment:
    @pytest.fixture(scope="class")
    def out_of_core_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("ooc")
        rng = np.random.default_rng(3)
        n, entities = 150_000, 2000
        key = rng.integers(0, entities, n).astype(float)
        # features are discretised measurements: numeric profiling state is
        # O(distinct values) per column, so continuous columns with n distinct
        # values would legitimately cost O(n) during discovery
        base = Table.from_dict(
            {
                "cust_id": key,
                "x1": np.round(rng.normal(size=n), 2),
                "x2": np.round(rng.normal(size=n), 2),
                "x3": np.round(rng.normal(size=n), 2),
                "x4": np.round(rng.normal(size=n), 2),
                "y": key % 7 + rng.normal(scale=0.1, size=n),
            },
            types={name: NUMERIC for name in ("cust_id", "x1", "x2", "x3", "x4", "y")},
            name="base",
        )
        signal = Table.from_dict(
            {
                "cust_id": np.arange(entities, dtype=float),
                "score": (np.arange(entities) % 7).astype(float),
                "region": [f"r{i % 5}" for i in range(entities)],
            },
            types={"cust_id": NUMERIC, "score": NUMERIC, "region": CATEGORICAL},
            name="custinfo",
        )
        unrelated = Table.from_dict(
            {
                "cust_id": np.arange(500, dtype=float) + 5000,
                "junk": rng.normal(size=500),
            },
            types={"cust_id": NUMERIC, "junk": NUMERIC},
            name="unrelated",
        )
        repository = DataRepository([signal, unrelated])
        base_path = tmp / "base.tbl"
        write_table(base, base_path, chunk_rows=7500)
        base_bytes = n * 6 * 8  # 7.2 MB of float64 pages
        memory_budget = base_bytes // 5  # base is 5x the budget

        config = ARDAConfig(
            coreset_size=2000,
            random_state=0,
            chunk_rows=7500,
            memory_budget=memory_budget,
            selector="random forest",
            estimator_options={"n_estimators": 10},
        )
        out_path = tmp / "augmented.tbl"
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        reader = open_chunks(base_path)
        streamed = ARDA(config).augment_tables(
            reader, repository, target="y", augmented_path=out_path
        )
        predictions = streamed.pipeline.predict(reader, repository=repository)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        in_memory_config = ARDAConfig(
            coreset_size=2000,
            random_state=0,
            selector="random forest",
            estimator_options={"n_estimators": 10},
        )
        in_memory = ARDA(in_memory_config).augment_tables(base, repository, target="y")
        return {
            "base": base,
            "base_bytes": base_bytes,
            "memory_budget": memory_budget,
            "out_path": out_path,
            "streamed": streamed,
            "in_memory": in_memory,
            "predictions": predictions,
            "peak": peak - baseline,
            "repository": repository,
        }

    def test_streamed_run_keeps_the_same_columns(self, out_of_core_run):
        streamed, in_memory = out_of_core_run["streamed"], out_of_core_run["in_memory"]
        assert streamed.kept_columns == in_memory.kept_columns
        assert "custinfo" in streamed.kept_tables

    def test_streamed_file_matches_in_memory_materialisation(self, out_of_core_run):
        augmented = open_chunks(out_of_core_run["out_path"]).table()
        assert_tables_equal(augmented, out_of_core_run["in_memory"].augmented_table)

    def test_stream_stats_record_pruning(self, out_of_core_run):
        stats = out_of_core_run["streamed"].stream_stats
        assert stats and all(s.chunks_total == 20 for s in stats.values())
        for table_stats in stats.values():
            assert table_stats.rows_total == out_of_core_run["base"].num_rows

    def test_predictions_stream_over_the_reader(self, out_of_core_run):
        predictions = out_of_core_run["predictions"]
        base = out_of_core_run["base"]
        assert predictions.shape == (base.num_rows,)
        # the streamed pipeline trains on the coreset; judge it on quality
        # against the full base rather than agreement with the full-fit model
        y = base.column("y").values
        residual = y - np.asarray(predictions, dtype=float)
        r2 = 1.0 - residual.var() / y.var()
        assert r2 > 0.9

    def test_peak_memory_stays_bounded(self, out_of_core_run):
        # augment + predict over a base 5x the memory budget: the traced
        # working set stays within a couple of base-table sizes (coreset +
        # one chunk wave + models + the O(n) predictions vector), far below
        # the several-fold blowup of materialising and joining in memory
        assert out_of_core_run["streamed"].stream_stats  # took the streamed path
        assert out_of_core_run["base_bytes"] >= 4 * out_of_core_run["memory_budget"]
        assert out_of_core_run["peak"] < 2 * out_of_core_run["base_bytes"]
