"""Smoke tests for the experiment harness (tiny configurations of every table/figure)."""

from repro.evaluation import experiments

TINY = {"scale": 0.15, "rifs_options": {"n_rounds": 1}}


class TestExperimentHarness:
    def test_figure3_rows_have_expected_methods(self):
        rows = experiments.experiment_figure3_augmentation(
            datasets=("poverty",), include_automl=False, **TINY
        )
        methods = {row["method"] for row in rows}
        assert {"ARDA", "All tables", "TR rule", "Base table"} <= methods
        base_row = next(row for row in rows if row["method"] == "Base table")
        assert base_row["improvement_pct"] == 0.0

    def test_table1_contains_baseline_and_selectors(self):
        rows = experiments.experiment_table1_real_world(
            datasets=("poverty",), selectors=("RIFS", "f-test"), **TINY
        )
        methods = [row["method"] for row in rows]
        assert "baseline" in methods and "RIFS" in methods and "f-test" in methods
        for row in rows:
            if row["method"] != "baseline":
                assert row["time_s"] >= 0.0

    def test_figure4_pct_change_relative_to_baseline(self):
        rows = experiments.experiment_figure4_score_vs_time(
            datasets=("poverty",), selectors=("f-test",), **TINY
        )
        assert all("pct_change" in row for row in rows)

    def test_table2_coreset_classification(self):
        rows = experiments.experiment_table2_coreset_classification(
            datasets=("kraken",), selectors=("f-test",), coreset_size=150,
            **{"rifs_options": {"n_rounds": 1}},
        )
        strategies = {row["strategy"] for row in rows}
        assert strategies == {"stratified", "sketch"}

    def test_table3_coreset_regression(self):
        rows = experiments.experiment_table3_coreset_regression(
            datasets=("poverty",), selectors=("f-test",), coreset_size=100, **TINY
        )
        assert all(row["strategy"] == "sketch" for row in rows)

    def test_figure5_soft_join_variants(self):
        rows = experiments.experiment_figure5_soft_joins(
            datasets=("pickup",), selectors=("f-test",), **TINY
        )
        variants = {row["join_strategy"] for row in rows}
        assert variants == {"Hard", "Time-Resampled", "Nearest", "2-way Nearest"}
        assert all(row["error"] >= 0 for row in rows)

    def test_table4_tuple_ratio(self):
        rows = experiments.experiment_table4_tuple_ratio(
            datasets=("poverty",), taus=(10.0,), **TINY
        )
        assert any(row.get("best_for_dataset") for row in rows)
        assert all("speedup_x" in row for row in rows if "tau" in row)

    def test_table5_table_grouping(self):
        rows = experiments.experiment_table5_table_grouping(
            datasets=("poverty",), selectors=("random forest",), **TINY
        )
        groupings = {row["grouping"] for row in rows}
        assert groupings == {"table", "full"}

    def test_table6_micro(self):
        rows = experiments.experiment_table6_micro(
            datasets=("kraken",), selectors=("f-test",), noise_factor=2,
            rifs_options={"n_rounds": 1},
        )
        assert any(row["method"] == "baseline (original features)" for row in rows)

    def test_figure6_noise_filtering_fraction_bounds(self):
        rows = experiments.experiment_figure6_noise_filtering(
            datasets=("kraken",), selectors=("f-test", "random forest"), noise_factor=2,
            rifs_options={"n_rounds": 1},
        )
        for row in rows:
            assert 0.0 <= row["fraction_real"] <= 1.0
            assert row["n_real_selected"] <= row["n_selected"]

    def test_ablation_injection(self):
        rows = experiments.experiment_ablation_injection(
            dataset_name="poverty", scale=0.15, rifs_rounds=1
        )
        assert {row["injection"] for row in rows} == {"moment_matched", "standard"}

    def test_ablation_ensemble_weight(self):
        rows = experiments.experiment_ablation_ensemble_weight(
            dataset_name="poverty", nus=(0.0, 1.0), scale=0.15, rifs_rounds=1
        )
        assert {row["nu"] for row in rows} == {0.0, 1.0}
