"""Tests for the synthetic dataset and micro-benchmark generators."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    RelationalDatasetBuilder,
    load_dataset,
    load_digits,
    load_kraken,
    make_micro_benchmark,
)
from repro.datasets.synthetic import NoiseTableSpec, SignalTableSpec
from repro.relational.schema import DATETIME
from repro.selection.base import CLASSIFICATION, REGRESSION


class TestBuilder:
    def _small_dataset(self, **kwargs):
        builder = RelationalDatasetBuilder(
            "toy", n_rows=120, n_entities=40, n_base_features=3, seed=0, **kwargs
        )
        builder.add_signal_table(SignalTableSpec("sig", n_signal_columns=2, key="entity"))
        builder.add_noise_table(NoiseTableSpec("junk", n_columns=3))
        return builder.build()

    def test_base_table_structure(self):
        dataset = self._small_dataset()
        assert dataset.base_table.num_rows == 120
        assert "target" in dataset.base_table
        assert "entity_id" in dataset.base_table

    def test_repository_contains_declared_tables(self):
        dataset = self._small_dataset()
        assert set(dataset.repository.table_names) == {"sig", "junk"}
        assert dataset.signal_tables == ["sig"]

    def test_candidates_reference_repository_tables(self):
        dataset = self._small_dataset()
        for candidate in dataset.candidates:
            assert candidate.foreign_table in dataset.repository

    def test_time_key_datasets_have_soft_candidates(self):
        builder = RelationalDatasetBuilder(
            "timed", n_rows=100, n_entities=30, with_time_key=True, n_days=50, seed=1
        )
        builder.add_signal_table(SignalTableSpec("weather", key="time", fine_grained_time=True))
        dataset = builder.build()
        assert dataset.soft_key_columns == ["timestamp"]
        assert dataset.base_table["timestamp"].ctype is DATETIME
        assert dataset.candidates[0].is_soft

    def test_classification_target_has_requested_classes(self):
        builder = RelationalDatasetBuilder(
            "clf", task="classification", n_classes=3, n_rows=200, n_entities=50, seed=2
        )
        builder.add_signal_table(SignalTableSpec("sig"))
        dataset = builder.build()
        assert len(np.unique(dataset.base_table["target"].values)) == 3

    def test_seed_reproducibility(self):
        a = self._small_dataset()
        b = self._small_dataset()
        assert a.base_table == b.base_table

    def test_signal_actually_correlates_with_target(self):
        """Joining the signal table must add predictive power over the base table."""
        from repro.core.join_execution import join_candidates
        from repro.relational.encoding import to_design_matrix
        from repro.relational.imputation import impute_table
        from repro.selection.base import holdout_score

        dataset = self._small_dataset()
        X_base, y, _enc = to_design_matrix(
            impute_table(dataset.base_table), dataset.target
        )
        joined, _contributed = join_candidates(
            dataset.base_table, dataset.repository,
            [c for c in dataset.candidates if c.foreign_table == "sig"],
        )
        X_aug, y_aug, _enc = to_design_matrix(impute_table(joined), dataset.target)
        assert holdout_score(X_aug, y_aug, REGRESSION) > holdout_score(X_base, y, REGRESSION)


class TestScenarios:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_named_scenarios_build(self, name):
        dataset = load_dataset(name, scale=0.2)
        assert dataset.base_table.num_rows > 50
        assert dataset.num_candidate_tables > 5
        assert len(dataset.signal_tables) >= 2

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            load_dataset("nope")

    def test_regression_vs_classification_tasks(self):
        assert load_dataset("taxi", scale=0.2).task == REGRESSION
        assert load_dataset("school_s", scale=0.2).task == CLASSIFICATION

    def test_school_l_has_more_tables_than_school_s(self):
        small = load_dataset("school_s", scale=0.2)
        large = load_dataset("school_l", scale=0.2)
        assert large.num_candidate_tables > small.num_candidate_tables

    def test_time_datasets_have_soft_keys(self):
        for name in ("taxi", "pickup"):
            dataset = load_dataset(name, scale=0.2)
            assert dataset.soft_key_columns == ["timestamp"]

    def test_summary_fields(self):
        summary = load_dataset("poverty", scale=0.2).summary()
        assert summary["task"] == REGRESSION
        assert summary["candidate_tables"] == summary["signal_tables"] + 36


class TestMicroBenchmarks:
    def test_kraken_shape_and_balance(self):
        micro = load_kraken(seed=0)
        assert micro.X.shape == (1000, 12)
        positives = int(micro.y.sum())
        assert 380 <= positives <= 480

    def test_kraken_is_learnable(self):
        from repro.evaluation.evaluator import classification_accuracy

        micro = load_kraken(seed=0)
        assert classification_accuracy(micro.X, micro.y) > 0.7

    def test_digits_classes_and_shape(self):
        micro = load_digits(samples_per_class=30)
        assert micro.X.shape == (300, 64)
        assert len(np.unique(micro.y)) == 10
        assert micro.X.min() >= 0.0 and micro.X.max() <= 16.0

    def test_digits_is_learnable(self):
        from repro.evaluation.evaluator import classification_accuracy

        micro = load_digits(samples_per_class=40, seed=0)
        assert classification_accuracy(micro.X, micro.y) > 0.6

    def test_noise_injection_multiplies_columns(self):
        micro = make_micro_benchmark("kraken", noise_factor=10, seed=0)
        assert micro.X.shape[1] == 12 * 11
        assert micro.n_real == 12
        assert micro.n_noise == 120

    def test_noise_mask_marks_original_columns(self):
        micro = make_micro_benchmark("kraken", noise_factor=2, seed=0)
        assert micro.real_mask[:12].all()
        assert not micro.real_mask[12:].any()

    def test_unknown_micro_benchmark(self):
        with pytest.raises(ValueError):
            make_micro_benchmark("mnist")
