"""Tests for the serving layer: fitted pipelines, artifacts, inference replay.

Covers the PR-5 acceptance surface:

* ``transform`` on the training base table reproduces the training design
  matrix byte-for-byte (direct and hypothesis-pinned through the fitted
  imputer/encoder kernels);
* artifact round trips (save -> load -> identical transforms/predictions),
  including through a fresh process;
* failure modes that must raise instead of mis-serving: artifact version
  mismatch, truncation, repository fingerprint drift, missing tables/columns;
* serving edge cases: unseen dictionary values, all-missing key columns,
  empty batches, streaming micro-batches, executor determinism;
* estimator state round trips through the page format.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arda import ARDA
from repro.core.config import ARDAConfig
from repro.datasets.synthetic import RelationalDatasetBuilder, SignalTableSpec
from repro.discovery.repository import DataRepository
from repro.ml import (
    DecisionTreeClassifier,
    RandomForestClassifier,
    RandomForestRegressor,
    estimator_from_state,
    estimator_to_state,
)
from repro.relational.column import Column
from repro.relational.encoding import FittedEncoder, encode_features, to_design_matrix
from repro.relational.imputation import FittedImputer, impute_table
from repro.relational.schema import CATEGORICAL, NUMERIC
from repro.relational.table import Table
from repro.serving import (
    ARTIFACT_VERSION,
    ArtifactError,
    FittedPipeline,
    read_artifact,
    write_artifact,
)

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


# -- fixtures ----------------------------------------------------------------


@pytest.fixture(scope="module")
def trained():
    """One ARDA run over a synthetic relational dataset, pipeline captured."""
    builder = RelationalDatasetBuilder(
        "serving", task="regression", n_rows=160, n_entities=50, seed=3
    )
    builder.add_signal_table(SignalTableSpec("signal", n_signal_columns=2, weight=2.0))
    builder.add_noise_tables(2, prefix="noise", n_columns=2)
    dataset = builder.build()
    report = ARDA(ARDAConfig()).augment(dataset)
    assert report.pipeline is not None
    return dataset, report


@pytest.fixture(scope="module")
def training_matrix(trained):
    """The training design matrix, computed the pre-serving way."""
    dataset, report = trained
    X, y, _encoding = to_design_matrix(
        impute_table(report.augmented_table, seed=0),
        dataset.target,
        max_categories=12,
        seed=0,
    )
    return X, y


# -- train-matrix byte identity ----------------------------------------------


class TestTrainByteIdentity:
    def test_transform_reproduces_training_matrix(self, trained, training_matrix):
        dataset, report = trained
        X_ref, _y = training_matrix
        X = report.pipeline.transform(dataset.base_table, repository=dataset.repository)
        assert X.shape == X_ref.shape
        assert X.tobytes() == X_ref.tobytes()

    def test_round_tripped_pipeline_reproduces_training_matrix(
        self, trained, training_matrix, tmp_path
    ):
        dataset, report = trained
        X_ref, _y = training_matrix
        path = tmp_path / "model.pipeline"
        report.pipeline.save(path)
        loaded = FittedPipeline.load(path, repository=dataset.repository)
        X = loaded.transform(dataset.base_table)
        assert X.tobytes() == X_ref.tobytes()

    def test_feature_names_match_training_layout(self, trained):
        dataset, report = trained
        encoding = to_design_matrix(
            impute_table(report.augmented_table, seed=0),
            dataset.target,
            max_categories=12,
            seed=0,
        )[2]
        assert report.pipeline.feature_names == encoding.feature_names

    def test_provenance_covers_kept_columns(self, trained):
        _dataset, report = trained
        recorded = {p.column for p in report.pipeline.provenance}
        assert recorded == set(report.kept_columns)
        for p in report.pipeline.provenance:
            assert p.table in report.kept_tables
            assert p.batch_index >= 0


# -- hypothesis: fitted kernels == training kernels ---------------------------


cat_entries = st.one_of(
    st.none(), st.sampled_from(["a", "bb", "", "日本語", "x y", "-1.5"])
)
num_entries = st.one_of(st.none(), st.sampled_from([0.0, -1.5, 2.0**40, 3.25]))


@st.composite
def mixed_tables(draw):
    n_rows = draw(st.integers(min_value=0, max_value=20))
    n_cols = draw(st.integers(min_value=0, max_value=4))
    data, types = {}, {}
    for i in range(n_cols):
        if draw(st.booleans()):
            name = f"cat{i}"
            data[name] = draw(st.lists(cat_entries, min_size=n_rows, max_size=n_rows))
            types[name] = CATEGORICAL
        else:
            name = f"num{i}"
            data[name] = draw(st.lists(num_entries, min_size=n_rows, max_size=n_rows))
            types[name] = NUMERIC
    return Table.from_dict(data, types=types, name="generated")


class TestFittedKernelsMatchTraining:
    @settings(max_examples=60, deadline=None)
    @given(table=mixed_tables(), seed=st.integers(min_value=0, max_value=5))
    def test_fitted_imputer_replays_training_imputation(self, table, seed):
        reference = impute_table(table, seed=seed)
        imputer, fitted = FittedImputer.fit(table, seed=seed)
        assert fitted == reference
        assert imputer.transform(table) == reference

    @settings(max_examples=60, deadline=None)
    @given(table=mixed_tables(), max_categories=st.integers(min_value=1, max_value=6))
    def test_fitted_encoder_replays_training_encoding(self, table, max_categories):
        imputed = impute_table(table, seed=0)
        reference = encode_features(
            imputed, max_categories=max_categories, impute=False
        )
        encoder, encoded = FittedEncoder.fit(imputed, max_categories=max_categories)
        assert encoded.feature_names == reference.feature_names
        assert encoded.source_columns == reference.source_columns
        assert encoded.matrix.tobytes() == reference.matrix.tobytes()
        assert encoder.transform(imputed).tobytes() == reference.matrix.tobytes()


# -- artifact failure modes ---------------------------------------------------


class TestArtifactErrors:
    def test_version_mismatch_raises(self, trained, tmp_path):
        _dataset, report = trained
        path = tmp_path / "model.pipeline"
        report.pipeline.save(path)
        raw = bytearray(path.read_bytes())
        bad_version = (ARTIFACT_VERSION + 1).to_bytes(4, "little")
        raw[8:12] = bad_version
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="version"):
            FittedPipeline.load(path)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "junk.pipeline"
        path.write_bytes(b"not an artifact at all")
        with pytest.raises(ArtifactError, match="magic"):
            FittedPipeline.load(path)

    def test_truncated_pages_raise(self, trained, tmp_path):
        _dataset, report = trained
        path = tmp_path / "model.pipeline"
        report.pipeline.save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(ArtifactError, match="truncated"):
            FittedPipeline.load(path)

    def test_object_arrays_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="dtype"):
            write_artifact(
                tmp_path / "bad.pipeline",
                {"doc": True},
                {"page": np.array(["a", "b"], dtype=object)},
            )

    def test_round_trip_preserves_doc_and_arrays(self, tmp_path):
        doc = {"nested": {"pi": 3.25}, "list": [1, "two"]}
        arrays = {
            "f": np.arange(5, dtype=np.float64),
            "i": np.arange(6, dtype=np.int32).reshape(2, 3),
            "u": np.arange(4, dtype=np.uint8),
        }
        path = tmp_path / "ok.pipeline"
        write_artifact(path, doc, arrays)
        loaded_doc, loaded_arrays = read_artifact(path)
        assert loaded_doc == doc
        assert set(loaded_arrays) == set(arrays)
        for name, array in arrays.items():
            assert loaded_arrays[name].dtype == array.dtype
            assert np.array_equal(loaded_arrays[name], array)


class TestFingerprintDrift:
    def test_drifted_repository_table_raises(self, trained, tmp_path):
        dataset, report = trained
        path = tmp_path / "model.pipeline"
        report.pipeline.save(path)
        drifted = DataRepository()
        for name in dataset.repository.table_names:
            table = dataset.repository.get(name)
            if name == report.pipeline.joins[0].foreign_table:
                # perturb one value: content fingerprint must change
                victim = table.columns()[-1]
                values = list(victim.values)
                if victim.ctype is CATEGORICAL:
                    values[0] = "drift"
                else:
                    values[0] = (values[0] if values[0] == values[0] else 0.0) + 1.0
                table = table.with_column(Column(victim.name, values, victim.ctype))
            drifted.add(table.rename(name))
        with pytest.raises(ArtifactError, match="drifted"):
            FittedPipeline.load(path, repository=drifted)

    def test_missing_table_raises(self, trained, tmp_path):
        dataset, report = trained
        path = tmp_path / "model.pipeline"
        report.pipeline.save(path)
        partial = DataRepository()
        kept = {step.foreign_table for step in report.pipeline.joins}
        for name in dataset.repository.table_names:
            if name not in kept:
                partial.add(dataset.repository.get(name))
        with pytest.raises(ArtifactError, match="no table"):
            FittedPipeline.load(path, repository=partial)

    def test_disk_backed_repository_validates_from_headers(self, trained, tmp_path):
        dataset, report = trained
        lake = tmp_path / "lake"
        lake.mkdir()
        for name in dataset.repository.table_names:
            dataset.repository.get(name).save(lake / f"{name}.tbl")
        path = tmp_path / "model.pipeline"
        report.pipeline.save(path)
        repo = DataRepository.open(lake)
        loaded = FittedPipeline.load(path, repository=repo)
        X = loaded.transform(dataset.base_table)
        assert X.shape[0] == dataset.base_table.num_rows


# -- serving edge cases -------------------------------------------------------


class TestServingEdgeCases:
    def test_unseen_dictionary_values(self, trained):
        dataset, report = trained
        pipeline = report.pipeline
        rows = dataset.base_table.head(5)
        mutated = []
        for col in rows.columns():
            if col.ctype is CATEGORICAL:
                values = list(col.values)
                values[0] = "never-seen-in-training"
                mutated.append(Column(col.name, values, CATEGORICAL))
            else:
                mutated.append(col)
        X = pipeline.transform(
            Table(mutated, name=rows.name), repository=dataset.repository
        )
        assert X.shape == (5, len(pipeline.feature_names))
        assert np.isfinite(X).all()

    def test_all_missing_key_columns(self, trained):
        dataset, report = trained
        pipeline = report.pipeline
        rows = dataset.base_table.head(4)
        key_columns = {b for step in pipeline.joins for b, _f, _s in step.keys}
        assert key_columns, "fixture pipeline must replay at least one join"
        mutated = []
        for col in rows.columns():
            if col.name in key_columns:
                mutated.append(Column(col.name, [None] * 4, col.ctype))
            else:
                mutated.append(col)
        X = pipeline.transform(
            Table(mutated, name=rows.name), repository=dataset.repository
        )
        # unmatched rows get imputed foreign values, never NaNs
        assert X.shape == (4, len(pipeline.feature_names))
        assert np.isfinite(X).all()
        predictions = pipeline.predict(
            Table(mutated, name=rows.name), repository=dataset.repository
        )
        assert predictions.shape == (4,)

    def test_empty_batch(self, trained):
        dataset, report = trained
        pipeline = report.pipeline
        empty = dataset.base_table.head(0)
        X = pipeline.transform(empty, repository=dataset.repository)
        assert X.shape == (0, len(pipeline.feature_names))
        predictions = pipeline.predict(empty, repository=dataset.repository)
        assert predictions.shape == (0,)

    def test_missing_base_column_raises(self, trained):
        dataset, report = trained
        required = report.pipeline.required_columns[0]
        rows = dataset.base_table.drop([required])
        with pytest.raises(KeyError, match=required):
            report.pipeline.transform(rows, repository=dataset.repository)

    def test_type_drift_raises(self, trained):
        dataset, report = trained
        pipeline = report.pipeline
        name = next(
            col.name
            for col in dataset.base_table.columns()
            if col.ctype is not CATEGORICAL and col.name != pipeline.target
        )
        rows = dataset.base_table.with_column(
            Column(name, ["x"] * dataset.base_table.num_rows, CATEGORICAL)
        )
        with pytest.raises(TypeError, match=name):
            pipeline.transform(rows, repository=dataset.repository)

    def test_featureless_augment_skips_capture(self):
        # a base table with nothing but the target cannot be served; augment
        # must complete (as before PR 5) with pipeline=None, not crash on an
        # unfitted estimator at save/predict time
        base = Table.from_dict({"y": [1.0, 2.0, 3.0, 4.0]}, name="base")
        repository = DataRepository(
            [Table.from_dict({"k": [0.0], "v": [1.0]}, name="aux")]
        )
        report = ARDA(ARDAConfig()).augment_tables(
            base, repository, target="y", candidates=[]
        )
        assert report.pipeline is None

    def test_target_column_optional(self, trained, training_matrix):
        dataset, report = trained
        X_ref, _y = training_matrix
        rows = dataset.base_table.drop([dataset.target])
        X = report.pipeline.transform(rows, repository=dataset.repository)
        # dropping the (numeric) target does not consume RNG draws, so the
        # feature matrix is unchanged
        assert X.tobytes() == X_ref.tobytes()


class TestStreamingAndExecutors:
    def test_streaming_concat_matches_manual_batches(self, trained):
        dataset, report = trained
        pipeline = report.pipeline
        rows = dataset.base_table
        streamed = np.concatenate(
            list(
                pipeline.iter_predict(
                    rows, repository=dataset.repository, batch_rows=37
                )
            )
        )
        via_predict = pipeline.predict(
            rows, repository=dataset.repository, batch_rows=37
        )
        assert np.array_equal(streamed, via_predict)
        assert streamed.shape == (rows.num_rows,)

    def test_predictions_identical_across_executors(self, trained):
        dataset, report = trained
        pipeline = report.pipeline
        rows = dataset.base_table
        reference = pipeline.predict(rows, repository=dataset.repository)
        for executor in ("thread", "process"):
            predictions = pipeline.predict(
                rows,
                repository=dataset.repository,
                executor=executor,
                n_jobs=2,
            )
            assert np.array_equal(reference, predictions), executor


# -- estimator state ----------------------------------------------------------


class TestEstimatorState:
    def test_forest_round_trip_bit_identical(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 5))
        y_clf = (X[:, 0] + X[:, 1] > 0).astype(float)
        y_reg = X[:, 0] * 2.0 - X[:, 2]
        for estimator, y in [
            (RandomForestClassifier(n_estimators=4, random_state=1), y_clf),
            (RandomForestRegressor(n_estimators=4, random_state=1), y_reg),
            (DecisionTreeClassifier(max_depth=4, random_state=1), y_clf),
        ]:
            estimator.fit(X, y)
            doc, arrays = estimator_to_state(estimator)
            restored = estimator_from_state(doc, arrays)
            assert np.array_equal(estimator.predict(X), restored.predict(X))
            assert np.array_equal(
                estimator.feature_importances_, restored.feature_importances_
            )

    def test_unfitted_estimator_rejected(self):
        with pytest.raises(RuntimeError, match="unfitted"):
            estimator_to_state(RandomForestRegressor())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown estimator kind"):
            estimator_from_state({"kind": "quantum_forest"}, {})


# -- classification decode ----------------------------------------------------


class TestClassificationServing:
    def test_categorical_target_predictions_decode_to_labels(self, tmp_path):
        rng = np.random.default_rng(0)
        n = 120
        x = rng.normal(size=n)
        base = Table.from_dict(
            {
                "entity_id": [float(i % 30) for i in range(n)],
                "x": x,
                "label": ["hi" if v > 0 else "lo" for v in x],
            },
            name="base",
        )
        repository = DataRepository(
            [
                Table.from_dict(
                    {
                        "entity_id": [float(i) for i in range(30)],
                        "extra": list(rng.normal(size=30)),
                    },
                    name="aux",
                )
            ]
        )
        report = ARDA(ARDAConfig()).augment_tables(
            base, repository, target="label"
        )
        pipeline = report.pipeline
        assert pipeline.task == "classification"
        path = tmp_path / "clf.pipeline"
        pipeline.save(path)
        loaded = FittedPipeline.load(path, repository=repository)
        predictions = loaded.predict(base, repository=repository)
        assert set(predictions) <= {"hi", "lo"}
        assert np.array_equal(
            predictions, pipeline.predict(base, repository=repository)
        )


# -- fresh process ------------------------------------------------------------


class TestFreshProcess:
    def test_fresh_process_load_reproduces_training_matrix(
        self, trained, training_matrix, tmp_path
    ):
        dataset, report = trained
        X_ref, _y = training_matrix
        lake = tmp_path / "lake"
        lake.mkdir()
        for name in dataset.repository.table_names:
            dataset.repository.get(name).save(lake / f"{name}.tbl")
        artifact = tmp_path / "model.pipeline"
        report.pipeline.save(artifact)
        rows_path = tmp_path / "rows.tbl"
        dataset.base_table.save(rows_path)
        expected_path = tmp_path / "expected.npy"
        np.save(expected_path, X_ref)
        script = (
            "import numpy as np\n"
            "from repro.discovery.repository import DataRepository\n"
            "from repro.relational.table import Table\n"
            "from repro.serving import FittedPipeline\n"
            f"pipeline = FittedPipeline.load({str(artifact)!r}, "
            f"repository=DataRepository.open({str(lake)!r}))\n"
            f"X = pipeline.transform(Table.load({str(rows_path)!r}))\n"
            f"expected = np.load({str(expected_path)!r})\n"
            "assert X.tobytes() == expected.tobytes(), 'fresh-process transform drifted'\n"
            "print('fresh-process byte-identity ok')\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert "byte-identity ok" in result.stdout
