"""Tests for the sqlgen scenario sampler and the planted-ground-truth sweep.

Covers the seeded-repeatability contract (same seed => byte-identical specs,
repository fingerprints, and sweep scores across fresh processes; different
seeds => distinct schemas), the metamorphic sweep properties (planted joins
outrank decoys, layout and executor invariance), failing-scenario repro files
and their standalone replay, the explicit-seed RNG audit of the dataset
builders, and the streaming micro-batch ingest scenario.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import ARDAConfig, ServingConfig, SweepConfig
from repro.datasets.sqlgen import (
    ColumnSpec,
    QUICK_PROFILE,
    SamplerProfile,
    ScenarioSpec,
    ScenarioSweep,
    TableSpec,
    TargetSpec,
    generate_scenario,
    iter_streaming_batches,
    materialise_scenario,
    replay_repro,
    repository_fingerprint,
    resolve_profile,
    run_streaming_scenario,
    write_scenario_repository,
)
from repro.datasets.sqlgen.materialise import STREAM_TABLE, materialise_tables
from repro.datasets.synthetic import RelationalDatasetBuilder
from repro.discovery.discovery import JoinDiscovery
from repro.evaluation import format_sweep, sweep_rows
from repro.observability import MetricsRegistry
from repro.relational.persist import table_fingerprint


def make_sweep(**overrides) -> ScenarioSweep:
    """A sweep with a private metrics registry (keeps the global one clean)."""
    defaults = dict(n_scenarios=2, seed=0, layout="memory")
    defaults.update(overrides)
    return ScenarioSweep(SweepConfig(**defaults), registry=MetricsRegistry())


# -- spec round-trip -----------------------------------------------------------


class TestSpecRoundTrip:
    def test_json_round_trip_is_lossless(self):
        spec = generate_scenario(11, 2)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_doc(spec.to_doc()).fingerprint() == spec.fingerprint()

    def test_from_doc_rejects_unknown_format(self):
        doc = generate_scenario(0, 0).to_doc()
        doc["format"] = "something-else"
        with pytest.raises(ValueError, match="format"):
            ScenarioSpec.from_doc(doc)

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ColumnSpec(name="x", kind="blob")
        with pytest.raises(ValueError, match="role"):
            TableSpec(name="t", role="phantom", key_column="k", n_keys=5)
        with pytest.raises(ValueError, match="key_overlap"):
            TableSpec(name="t", role="decoy", key_column="k", n_keys=5, key_overlap=1.5)
        with pytest.raises(ValueError, match="task"):
            TargetSpec(task="ranking", noise_level=0.1)
        with pytest.raises(ValueError, match="n_classes"):
            TargetSpec(task="classification", noise_level=0.1, n_classes=1)
        with pytest.raises(ValueError, match="profile"):
            resolve_profile("enormous")


# -- seeded repeatability ------------------------------------------------------


class TestSeededRepeatability:
    def test_same_seed_same_spec_bytes(self):
        for seed in (0, 1, 7):
            first = generate_scenario(seed, 0)
            second = generate_scenario(seed, 0)
            assert first == second
            assert first.to_json() == second.to_json()
            assert first.fingerprint() == second.fingerprint()

    def test_different_seeds_distinct_schemas(self):
        specs = [generate_scenario(seed, 0) for seed in range(8)]
        assert len({s.fingerprint() for s in specs}) == len(specs)
        # the schemas themselves differ, not just embedded seeds
        shapes = {
            (s.n_base_rows, tuple(t.name for t in s.tables), s.target.task)
            for s in specs
        }
        assert len(shapes) > 1

    def test_different_indices_distinct(self):
        fingerprints = {generate_scenario(0, i).fingerprint() for i in range(6)}
        assert len(fingerprints) == 6

    def test_materialisation_repeatable(self):
        spec = generate_scenario(4, 0)
        base_a, tables_a = materialise_tables(spec)
        base_b, tables_b = materialise_tables(spec)
        assert table_fingerprint(base_a) == table_fingerprint(base_b)
        for left, right in zip(tables_a, tables_b):
            assert table_fingerprint(left) == table_fingerprint(right)

    def test_repository_fingerprint_layout_invariant(self, tmp_path):
        spec = generate_scenario(2, 0)
        _, mono = write_scenario_repository(spec, tmp_path / "mono", chunk_rows=0)
        _, chunked = write_scenario_repository(spec, tmp_path / "chunked", chunk_rows=32)
        memory = materialise_scenario(spec).repository
        assert (
            repository_fingerprint(mono)
            == repository_fingerprint(chunked)
            == repository_fingerprint(memory)
        )

    def test_sweep_scores_byte_identical_across_fresh_processes(self):
        """Two fresh interpreters produce the same deterministic sweep JSON."""
        program = (
            "from repro.core.config import SweepConfig\n"
            "from repro.datasets.sqlgen import ScenarioSweep\n"
            "from repro.observability import MetricsRegistry\n"
            "config = SweepConfig(n_scenarios=2, seed=0, layout='memory')\n"
            "result = ScenarioSweep(config, registry=MetricsRegistry()).run()\n"
            "print(result.deterministic_json())\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env=env,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
        doc = json.loads(outputs[0])
        assert [s["failures"] for s in doc["scores"]] == [[], []]


# -- metamorphic sweep properties ----------------------------------------------


class TestMetamorphicSweep:
    @pytest.fixture(scope="class")
    def memory_result(self):
        return make_sweep(n_scenarios=3).run()

    def test_planted_joins_outrank_decoys_at_recall_floor(self, memory_result):
        assert memory_result.passed
        for score in memory_result.scores:
            assert score.discovery_recall >= 0.9
            assert score.ranking_ok
            assert score.discovery_precision == 1.0

    def test_uplift_and_selection_find_the_plant(self, memory_result):
        # the target is a function of planted features, so augmentation
        # must beat the no-augmentation baseline on average
        assert memory_result.mean_uplift > 0.0
        assert memory_result.mean_selection_recall > 0.5

    def test_layout_invariance(self, memory_result, tmp_path):
        """Monolithic and chunked disk layouts reproduce the memory scores."""
        reference = memory_result.deterministic_doc()
        for layout in ("monolithic", "chunked"):
            result = make_sweep(n_scenarios=3, layout=layout, chunk_rows=48).run(
                work_dir=tmp_path / layout
            )
            doc = result.deterministic_doc()
            assert doc["scores"] == reference["scores"], layout

    def test_executor_invariance(self, memory_result):
        reference = memory_result.deterministic_doc()["scores"][:1]
        for executor in ("thread", "process"):
            result = make_sweep(n_scenarios=1, executor=executor, n_jobs=2).run()
            assert result.deterministic_doc()["scores"] == reference, executor

    def test_rechunk_invariance(self, tmp_path):
        """Rewriting the stored row groups must not move a single candidate."""
        spec = generate_scenario(1, 0)
        base, repository = write_scenario_repository(spec, tmp_path, chunk_rows=0)
        before = [
            (c.foreign_table, c.key_pairs(), round(c.score, 12))
            for c in JoinDiscovery().discover(base, repository, target="target")
        ]
        fingerprint = repository_fingerprint(repository)
        for name in repository.table_names:
            repository.rechunk(name, chunk_rows=32)
        assert repository_fingerprint(repository) == fingerprint
        after = [
            (c.foreign_table, c.key_pairs(), round(c.score, 12))
            for c in JoinDiscovery().discover(base, repository, target="target")
        ]
        assert after == before


# -- failing scenarios: repro files and standalone replay ----------------------


def hostile_profile() -> SamplerProfile:
    """A profile whose decoys overlap the base domain almost completely,
    guaranteeing a deterministic planted-vs-decoy ranking violation."""
    return dataclasses.replace(
        QUICK_PROFILE,
        name="hostile",
        decoy_overlap=(0.92, 0.98),
        fan_out_choices=(3,),
        n_decoys=(2, 3),
    )


class TestReproFiles:
    def test_failing_sweep_writes_repro_files(self, tmp_path):
        repro_dir = tmp_path / "failures"
        sweep = ScenarioSweep(
            SweepConfig(
                n_scenarios=2,
                seed=0,
                profile=hostile_profile(),
                layout="memory",
                repro_dir=str(repro_dir),
            ),
            registry=MetricsRegistry(),
        )
        result = sweep.run()
        assert result.n_failed > 0
        assert len(result.repro_files) == result.n_failed
        for path in result.repro_files:
            doc = json.loads(Path(path).read_text())
            assert doc["format"] == "arda-sweep-repro-v1"
            assert doc["failures"]
            assert ScenarioSpec.from_doc(doc["spec"]).fingerprint() == doc["score"][
                "spec_fingerprint"
            ]

    def test_replay_reproduces_the_exact_failure(self, tmp_path):
        sweep = ScenarioSweep(
            SweepConfig(
                n_scenarios=1,
                seed=0,
                profile=hostile_profile(),
                layout="memory",
                repro_dir=str(tmp_path),
            ),
            registry=MetricsRegistry(),
        )
        result = sweep.run()
        assert result.repro_files
        original = result.scores[0]
        replayed = replay_repro(result.repro_files[0])
        assert not replayed.passed
        assert replayed.to_doc() == original.to_doc()

    def test_replay_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "unrelated"}))
        with pytest.raises(ValueError, match="repro file"):
            replay_repro(path)

    def test_doctored_spec_fails_discovery_recall(self):
        """A join edge the engine cannot possibly emit must fail the floor."""
        spec = generate_scenario(3, 0)
        edge = spec.joins[0]
        broken = dataclasses.replace(
            spec,
            joins=(dataclasses.replace(edge, foreign_column="no_such_column"),)
            + spec.joins[1:],
        )
        score = make_sweep(n_scenarios=1).run_scenario(broken)
        assert score.discovery_recall < 1.0
        assert any("below floor" in failure for failure in score.failures)


# -- reporting -----------------------------------------------------------------


class TestSweepReporting:
    def test_sweep_rows_and_table(self):
        score = make_sweep(n_scenarios=1).run_scenario(generate_scenario(0, 0))
        rows = sweep_rows([score])
        assert rows[0]["scenario"] == score.scenario_id
        assert rows[0]["status"] == "pass"
        assert rows[0]["ranking"] == "ok"
        rendered = format_sweep([score])
        assert score.scenario_id in rendered
        assert "disc_recall" in rendered


# -- CLI -----------------------------------------------------------------------


class TestSweepCLI:
    def test_sweep_json_output(self, tmp_path, capsys):
        rc = cli_main(
            [
                "sweep",
                "--n-scenarios",
                "1",
                "--seed",
                "0",
                "--layout",
                "memory",
                "--json",
                "--repro-dir",
                str(tmp_path / "failures"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out)
        assert doc["summary"]["scenarios"] == 1
        assert doc["summary"]["failed"] == 0
        assert doc["scores"][0]["discovery_recall"] >= 0.9

    def test_sweep_replay_of_failing_scenario_exits_nonzero(self, tmp_path, capsys):
        sweep = ScenarioSweep(
            SweepConfig(
                n_scenarios=1,
                seed=0,
                profile=hostile_profile(),
                layout="memory",
                repro_dir=str(tmp_path),
            ),
            registry=MetricsRegistry(),
        )
        result = sweep.run()
        assert result.repro_files
        rc = cli_main(["sweep", "--replay", result.repro_files[0]])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out


# -- RNG audit: explicit seeds everywhere --------------------------------------


class TestExplicitSeeding:
    @staticmethod
    def _build(seed):
        return RelationalDatasetBuilder(
            "rng-audit", n_rows=120, n_entities=40, seed=seed
        ).build()

    def test_builder_accepts_generator_seed(self):
        from_int = self._build(123)
        from_generator = self._build(np.random.default_rng(123))
        assert table_fingerprint(from_int.base_table) == table_fingerprint(
            from_generator.base_table
        )
        for name in from_int.repository.table_names:
            assert table_fingerprint(from_int.repository.get(name)) == table_fingerprint(
                from_generator.repository.get(name)
            )

    def test_generators_ignore_global_numpy_state(self):
        """Reseeding the legacy global RNG must not move any generator output."""
        np.random.seed(1)
        first = self._build(7)
        spec_first = generate_scenario(7, 0)
        np.random.seed(99)
        second = self._build(7)
        spec_second = generate_scenario(7, 0)
        assert table_fingerprint(first.base_table) == table_fingerprint(second.base_table)
        assert spec_first.to_json() == spec_second.to_json()


# -- streaming ingest under a live server --------------------------------------


class TestStreamingScenario:
    def test_predictions_pinned_across_ingest_generations(self, tmp_path):
        score = run_streaming_scenario(
            tmp_path, seed=0, n_batches=2, batch_rows=12, probe_rows=6,
            registry=MetricsRegistry(),
        )
        assert score.passed
        assert score.generations == [0, 1, 2]
        assert score.reloads == 2
        assert score.n_requests == 3
        assert score.n_failed_requests == 0
        assert score.stream_rows == 24
        assert len(score.predictions) == 6

    def test_streaming_batches_are_append_only_and_deterministic(self):
        spec = generate_scenario(0, 0)
        batches_a = list(iter_streaming_batches(spec, 3, 8))
        batches_b = list(iter_streaming_batches(spec, 3, 8))
        for left, right in zip(batches_a, batches_b):
            assert table_fingerprint(left) == table_fingerprint(right)
        for prev, grown in zip(batches_a, batches_a[1:]):
            assert grown.num_rows == prev.num_rows + 8
            for column in prev.column_names:
                assert np.array_equal(
                    np.asarray(grown.column(column).values)[: prev.num_rows],
                    np.asarray(prev.column(column).values),
                )

    @pytest.mark.stress
    def test_ingest_under_sustained_load_zero_failures(self, tmp_path):
        """Micro-batch ingests while concurrent clients hammer /predict:
        every response must carry the pinned predictions, zero failures."""
        from repro.core.arda import ARDA
        from repro.datasets.sqlgen.materialise import planted_candidates
        from repro.serving.pipeline import FittedPipeline
        from repro.serving.server import PredictionServer

        n_batches = max(4, int(os.environ.get("ARDA_STRESS", "0") or 0) // 100)
        spec = generate_scenario(0, 0, "quick")
        lake = tmp_path / "lake"
        base, repository = write_scenario_repository(spec, lake, chunk_rows=0)
        report = ARDA(
            ARDAConfig(capture_pipeline=True, persist_profiles=False)
        ).augment_tables(
            base_table=base,
            repository=repository,
            target="target",
            candidates=planted_candidates(spec),
            task=spec.target.task,
            dataset_name=spec.scenario_id,
        )
        artifact = tmp_path / "stream.pipeline"
        report.pipeline.save(artifact)
        offline = FittedPipeline.load(artifact, repository=repository)
        expected = np.asarray(offline.predict(base.head(4)), dtype=np.float64)
        offline.release()

        payload = json.dumps([base.row(i) for i in range(4)]).encode()
        config = ServingConfig(port=0, workers=3, reload_interval_s=0.02)
        server = PredictionServer(
            artifact, repository=str(lake), config=config, registry=MetricsRegistry()
        ).start()
        failures: list[str] = []
        generations: set[int] = set()
        stop = threading.Event()
        lock = threading.Lock()
        try:
            host, port = server.address

            def hammer():
                while not stop.is_set():
                    request = urllib.request.Request(
                        f"http://{host}:{port}/predict",
                        data=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    try:
                        with urllib.request.urlopen(request, timeout=30) as response:
                            doc = json.loads(response.read())
                        served = np.asarray(doc["predictions"], dtype=np.float64)
                        if not np.array_equal(served, expected):
                            raise AssertionError("prediction drift during ingest")
                        with lock:
                            generations.add(doc["generation"])
                    except Exception as exc:  # noqa: BLE001 - recorded, not raised
                        with lock:
                            failures.append(repr(exc))
                        stop.set()

            clients = [threading.Thread(target=hammer) for _ in range(4)]
            for client in clients:
                client.start()
            for batch in iter_streaming_batches(spec, n_batches, 16):
                if STREAM_TABLE in repository.table_names:
                    repository.replace(batch)
                else:
                    repository.add(batch)
                deadline = time.monotonic() + 10
                while server.generation < repository.generation and (
                    time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                time.sleep(0.05)
            stop.set()
            for client in clients:
                client.join()
            final_generation = server.generation
        finally:
            server.close()
        assert failures == []
        assert final_generation == n_batches
        assert max(generations) == n_batches
