"""Tests for metrics, model selection, preprocessing and the AutoML search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    AutoMLSearch,
    KFold,
    LabelEncoder,
    MinMaxScaler,
    StandardScaler,
    StratifiedKFold,
    accuracy_score,
    cross_val_score,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_score,
    r2_score,
    recall_score,
    root_mean_squared_error,
    train_test_split,
)
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import confusion_matrix


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_perfect_f1(self):
        assert f1_score([0, 1, 1], [0, 1, 1]) == 1.0

    def test_precision_recall_asymmetry(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 1, 1, 0]
        # class 1: precision 2/3, recall 1; class 0: precision 1, recall 1/2
        assert precision_score(y_true, y_pred) == pytest.approx((2 / 3 + 1) / 2)
        assert recall_score(y_true, y_pred) == pytest.approx((1 + 0.5) / 2)

    def test_log_loss_penalises_confident_mistakes(self):
        confident_right = log_loss([0, 1], [[0.9, 0.1], [0.1, 0.9]])
        confident_wrong = log_loss([0, 1], [[0.1, 0.9], [0.9, 0.1]])
        assert confident_wrong > confident_right

    def test_confusion_matrix(self):
        matrix = confusion_matrix([0, 0, 1], [0, 1, 1])
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_mae_mse_rmse(self):
        y_true, y_pred = [0.0, 2.0], [1.0, 0.0]
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(1.5)
        assert mean_squared_error(y_true, y_pred) == pytest.approx(2.5)
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(np.sqrt(2.5))

    def test_r2_of_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestSplitters:
    def test_train_test_split_sizes(self):
        X = np.arange(40).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.25, random_state=0)
        assert len(X_test) == 10
        assert len(X_train) == 30

    def test_split_is_a_partition(self):
        X = np.arange(20)
        X_train, X_test = train_test_split(X, test_size=0.3, random_state=1)
        assert sorted(np.concatenate([X_train, X_test]).tolist()) == list(range(20))

    def test_stratified_split_keeps_all_classes(self):
        y = np.array([0] * 18 + [1] * 2, dtype=float)
        _ytr, y_test = train_test_split(y, test_size=0.25, stratify=y, random_state=0)
        assert 1.0 in y_test

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), np.arange(6))

    def test_kfold_covers_every_index_once(self):
        folds = list(KFold(n_splits=4, random_state=0).split(np.arange(22)))
        test_indices = np.concatenate([test for _train, test in folds])
        assert sorted(test_indices.tolist()) == list(range(22))

    def test_kfold_train_test_disjoint(self):
        for train, test in KFold(n_splits=3).split(np.arange(10)):
            assert not set(train) & set(test)

    def test_stratified_kfold_balances_classes(self):
        y = np.array([0] * 30 + [1] * 6, dtype=float)
        for _train, test in StratifiedKFold(n_splits=3).split(np.zeros((36, 1)), y):
            assert (y[test] == 1).sum() == 2

    def test_kfold_requires_two_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_cross_val_score_classification(self, classification_matrix):
        X, y = classification_matrix
        scores = cross_val_score(RandomForestClassifier(n_estimators=5), X, y, cv=3)
        assert len(scores) == 3
        assert scores.mean() > 0.7

    def test_cross_val_score_custom_scoring(self, regression_matrix):
        X, y = regression_matrix
        scores = cross_val_score(
            RandomForestRegressor(n_estimators=5), X, y, cv=3, scoring=mean_absolute_error
        )
        assert (scores > 0).all()


class TestPreprocessing:
    def test_standard_scaler(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(100, 4))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_column(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_standard_scaler_inverse(self, rng):
        X = rng.normal(size=(20, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_scaler_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_minmax_scaler_range(self, rng):
        X = rng.uniform(-10, 10, size=(50, 3))
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_label_encoder_roundtrip(self):
        encoder = LabelEncoder()
        codes = encoder.fit_transform(["b", "a", "b", "c"])
        assert codes.tolist() == [1, 0, 1, 2]
        assert encoder.inverse_transform(codes).tolist() == ["b", "a", "b", "c"]

    def test_label_encoder_unseen_label(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.transform(["z"])


class TestAutoML:
    def test_classification_search_finds_working_model(self, classification_matrix):
        X, y = classification_matrix
        automl = AutoMLSearch(task="classification", time_budget=5.0, max_trials=4).fit(X, y)
        assert automl.score(X, y) > 0.8
        assert len(automl.result_.trials) >= 1

    def test_regression_search(self, regression_matrix):
        X, y = regression_matrix
        automl = AutoMLSearch(task="regression", time_budget=5.0, max_trials=4).fit(X, y)
        assert automl.score(X, y) > 0.5

    def test_invalid_task_rejected(self):
        with pytest.raises(ValueError):
            AutoMLSearch(task="clustering")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            AutoMLSearch().predict(np.ones((2, 2)))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=60).filter(
        lambda values: len(set(values)) > 1
    )
)
def test_accuracy_bounds_and_f1_consistency(labels):
    """Property: accuracy is in [0, 1] and perfect predictions give F1 = 1."""
    y = np.array(labels, dtype=float)
    predictions = np.roll(y, 1)
    accuracy = accuracy_score(y, predictions)
    assert 0.0 <= accuracy <= 1.0
    assert f1_score(y, y) == 1.0
