"""Tests for hard joins, soft joins, aggregation, resampling, imputation and encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import (
    Table,
    group_by_aggregate,
    impute_table,
    left_join,
    nearest_join,
    resample_to_granularity,
    two_way_nearest_join,
)
from repro.relational.aggregate import is_unique_on
from repro.relational.encoding import encode_features, encode_target, to_design_matrix
from repro.relational.imputation import missing_fraction
from repro.relational.join import join_match_fraction
from repro.relational.resample import align_time_granularity, infer_granularity
from repro.relational.schema import DATETIME


class TestLeftJoin:
    def test_preserves_all_base_rows(self, base_table, foreign_table):
        joined = left_join(base_table, foreign_table, on=[("entity_id", "entity_id")])
        assert joined.num_rows == base_table.num_rows

    def test_unmatched_rows_get_nulls(self, base_table, foreign_table):
        joined = left_join(base_table, foreign_table, on=[("entity_id", "entity_id")])
        assert np.isnan(joined["value"].values[5])
        assert joined["label"].values[5] is None

    def test_one_to_many_is_preaggregated(self, base_table, foreign_table):
        joined = left_join(base_table, foreign_table, on=[("entity_id", "entity_id")])
        # entity 1 matches two foreign rows with values 200 and 300 -> mean 250
        assert joined["value"].values[1] == pytest.approx(250.0)

    def test_first_match_mode(self, base_table, foreign_table):
        joined = left_join(
            base_table, foreign_table, on=[("entity_id", "entity_id")],
            aggregate_duplicates=False,
        )
        assert joined["value"].values[1] == pytest.approx(200.0)

    def test_right_key_column_not_duplicated(self, base_table, foreign_table):
        joined = left_join(base_table, foreign_table, on=[("entity_id", "entity_id")])
        assert joined.column_names.count("entity_id") == 1

    def test_name_clash_gets_suffix(self, base_table):
        other = Table.from_dict(
            {"eid": [0.0, 1.0], "feature_a": [7.0, 8.0]}, name="other"
        )
        joined = left_join(base_table, other, on=[("entity_id", "eid")])
        assert "feature_a_r" in joined

    def test_composite_key_join(self):
        left = Table.from_dict({"a": [1.0, 1.0, 2.0], "b": ["x", "y", "x"], "t": [0.0, 0.0, 0.0]})
        right = Table.from_dict({"a": [1.0, 2.0], "b": ["y", "x"], "v": [5.0, 6.0]})
        joined = left_join(left, right, on=[("a", "a"), ("b", "b")])
        assert np.isnan(joined["v"].values[0])
        assert joined["v"].values[1] == 5.0
        assert joined["v"].values[2] == 6.0

    def test_missing_key_does_not_match(self):
        left = Table.from_dict({"k": [1.0, None]})
        right = Table.from_dict({"k": [1.0, None], "v": [10.0, 20.0]})
        joined = left_join(left, right, on=[("k", "k")])
        assert joined["v"].values[0] == 10.0
        assert np.isnan(joined["v"].values[1])

    def test_requires_key_pairs(self, base_table, foreign_table):
        with pytest.raises(ValueError):
            left_join(base_table, foreign_table, on=[])

    def test_match_fraction(self, base_table, foreign_table):
        fraction = join_match_fraction(base_table, foreign_table, [("entity_id", "entity_id")])
        assert fraction == pytest.approx(3 / 6)


class TestVectorisedProbe:
    """The vectorised join probe must agree with the dict-based reference."""

    @staticmethod
    def _both(left, right, on):
        from repro.relational.join import _match_first_occurrence, _match_via_hash_index

        left_cols = [left.column(a) for a, _ in on]
        right_cols = [right.column(b) for _, b in on]
        return (
            _match_first_occurrence(left_cols, right_cols),
            _match_via_hash_index(left_cols, right_cols),
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_on_random_keys(self, seed):
        rng = np.random.default_rng(seed)
        n_left, n_right = rng.integers(1, 40, size=2)
        def numeric(n):
            vals = rng.integers(0, 8, size=n).astype(np.float64)
            vals[rng.random(n) < 0.2] = np.nan
            return vals
        def categorical(n):
            return [
                None if rng.random() < 0.2 else f"g{rng.integers(0, 5)}" for _ in range(n)
            ]
        left = Table.from_dict({"k": numeric(n_left), "c": categorical(n_left)}, name="l")
        right = Table.from_dict({"k": numeric(n_right), "c": categorical(n_right)}, name="r")
        for on in ([("k", "k")], [("c", "c")], [("k", "k"), ("c", "c")]):
            fast, reference = self._both(left, right, on)
            assert np.array_equal(fast, reference)

    def test_cross_type_key_pair_never_matches(self):
        left = Table.from_dict({"k": [1.0, 2.0]}, name="l")
        right = Table.from_dict({"k": ["1.0", "2.0"], "v": [1.0, 2.0]}, name="r")
        fast, reference = self._both(left, right, [("k", "k")])
        assert np.array_equal(fast, reference)
        assert (fast == -1).all()

    def test_duplicate_right_keys_first_occurrence_wins(self):
        left = Table.from_dict({"k": [7.0]}, name="l")
        right = Table.from_dict({"k": [5.0, 7.0, 7.0], "v": [0.0, 1.0, 2.0]}, name="r")
        fast, reference = self._both(left, right, [("k", "k")])
        assert np.array_equal(fast, reference)
        assert fast[0] == 1

    def test_empty_right_table(self):
        left = Table.from_dict({"k": [1.0, 2.0]}, name="l")
        right = Table.from_dict(
            {"k": np.array([], dtype=np.float64), "v": np.array([], dtype=np.float64)},
            name="r",
        )
        fast, reference = self._both(left, right, [("k", "k")])
        assert np.array_equal(fast, reference)
        assert (fast == -1).all()


class TestAggregation:
    def test_group_by_mean_and_mode(self):
        table = Table.from_dict(
            {"k": [1.0, 1.0, 2.0], "v": [1.0, 3.0, 10.0], "c": ["a", "a", "b"]}
        )
        grouped = group_by_aggregate(table, ["k"])
        assert grouped.num_rows == 2
        row = {grouped["k"].values[i]: grouped["v"].values[i] for i in range(2)}
        assert row[1.0] == pytest.approx(2.0)
        assert grouped["c"].values[list(grouped["k"].values).index(1.0)] == "a"

    def test_agg_overrides(self):
        table = Table.from_dict({"k": [1.0, 1.0], "v": [1.0, 3.0]})
        grouped = group_by_aggregate(table, ["k"], agg_overrides={"v": "max"})
        assert grouped["v"].values[0] == 3.0

    def test_count_and_nunique(self):
        table = Table.from_dict({"k": [1.0, 1.0], "v": [1.0, None], "c": ["a", "b"]})
        grouped = group_by_aggregate(
            table, ["k"], agg_overrides={"v": "count", "c": "nunique"}
        )
        assert grouped["v"].values[0] == 1.0
        assert grouped["c"].values[0] == 2.0

    def test_unknown_aggregate_raises(self):
        table = Table.from_dict({"k": [1.0], "v": [1.0]})
        with pytest.raises(ValueError):
            group_by_aggregate(table, ["k"], numeric_agg="bogus")

    def test_is_unique_on(self, foreign_table):
        assert not is_unique_on(foreign_table, ["entity_id"])
        assert is_unique_on(foreign_table, ["entity_id", "value"])


class TestSoftJoins:
    def test_nearest_join_picks_closest(self):
        base = Table.from_dict({"t": [0.0, 10.0]})
        right = Table.from_dict({"t": [1.0, 8.0], "v": [100.0, 200.0]})
        joined = nearest_join(base, right, "t", "t")
        assert list(joined["v"].values) == [100.0, 200.0]

    def test_nearest_join_tolerance(self):
        base = Table.from_dict({"t": [0.0, 50.0]})
        right = Table.from_dict({"t": [1.0], "v": [100.0]})
        joined = nearest_join(base, right, "t", "t", tolerance=5.0)
        assert joined["v"].values[0] == 100.0
        assert np.isnan(joined["v"].values[1])

    def test_two_way_join_interpolates_linearly(self):
        base = Table.from_dict({"t": [5.0]})
        right = Table.from_dict({"t": [0.0, 10.0], "v": [0.0, 100.0]})
        joined = two_way_nearest_join(base, right, "t", "t")
        assert joined["v"].values[0] == pytest.approx(50.0)

    def test_two_way_join_outside_range_clamps(self):
        base = Table.from_dict({"t": [-5.0, 20.0]})
        right = Table.from_dict({"t": [0.0, 10.0], "v": [0.0, 100.0]})
        joined = two_way_nearest_join(base, right, "t", "t")
        assert joined["v"].values[0] == pytest.approx(0.0)
        assert joined["v"].values[1] == pytest.approx(100.0)

    def test_soft_join_requires_numeric_key(self, base_table):
        right = Table.from_dict({"t": [1.0], "v": [1.0]})
        with pytest.raises(ValueError):
            nearest_join(base_table, right, "category", "t")

    def test_soft_join_preserves_base_rows(self, rng):
        base = Table.from_dict({"t": rng.uniform(0, 100, size=50)})
        right = Table.from_dict({"t": rng.uniform(0, 100, size=20), "v": rng.normal(size=20)})
        for joiner in (nearest_join, two_way_nearest_join):
            assert joiner(base, right, "t", "t").num_rows == 50


class TestResampling:
    def test_infer_granularity(self):
        assert infer_granularity(np.array([0.0, 86400.0, 172800.0])) == 86400.0
        assert infer_granularity(np.array([0.0, 3600.0])) == 3600.0

    def test_resample_aggregates_within_bucket(self):
        table = Table.from_dict(
            {"t": [0.0, 3600.0, 86400.0], "v": [1.0, 3.0, 10.0]},
            types={"t": DATETIME},
        )
        resampled = resample_to_granularity(table, "t", "day")
        assert resampled.num_rows == 2
        values = dict(zip(resampled["t"].values, resampled["v"].values))
        assert values[0.0] == pytest.approx(2.0)
        assert values[86400.0] == pytest.approx(10.0)

    def test_align_time_granularity_only_resamples_finer(self):
        base = Table.from_dict({"t": [0.0, 86400.0]}, types={"t": DATETIME})
        fine = Table.from_dict(
            {"t": [0.0, 3600.0, 7200.0], "v": [1.0, 2.0, 3.0]}, types={"t": DATETIME}
        )
        coarse = Table.from_dict({"t": [0.0, 86400.0], "v": [5.0, 6.0]}, types={"t": DATETIME})
        assert align_time_granularity(base, fine, "t", "t").num_rows == 1
        assert align_time_granularity(base, coarse, "t", "t") is coarse

    def test_bad_granularity_name(self):
        table = Table.from_dict({"t": [0.0]})
        with pytest.raises(ValueError):
            resample_to_granularity(table, "t", "fortnight")


class TestImputationAndEncoding:
    def test_impute_numeric_median(self):
        table = Table.from_dict({"x": [1.0, None, 3.0]})
        imputed = impute_table(table)
        assert imputed["x"].values[1] == pytest.approx(2.0)

    def test_impute_categorical_samples_observed(self):
        table = Table.from_dict({"c": ["a", None, "a", "a"]})
        imputed = impute_table(table, seed=1)
        assert imputed["c"].values[1] == "a"

    def test_impute_all_missing_categorical(self):
        table = Table.from_dict({"c": [None, None]}, types={"c": "categorical"}) if False else None
        # build explicitly to avoid inference on all-None
        from repro.relational.column import Column
        from repro.relational.schema import CATEGORICAL
        table = Table([Column("c", [None, None], CATEGORICAL)])
        imputed = impute_table(table)
        assert imputed["c"].values[0] == "__missing__"

    def test_missing_fraction(self):
        table = Table.from_dict({"x": [1.0, None], "c": ["a", "b"]})
        fractions = missing_fraction(table)
        assert fractions["x"] == pytest.approx(0.5)
        assert fractions["c"] == 0.0

    def test_encode_one_hot(self, base_table):
        encoded = encode_features(base_table, exclude=["target"])
        assert "category=x" in encoded.feature_names
        assert encoded.matrix.shape[0] == 6

    def test_encode_high_cardinality_uses_frequency(self):
        table = Table.from_dict({"c": [str(i) for i in range(50)]})
        encoded = encode_features(table, max_categories=10)
        assert encoded.feature_names == ["c__freq"]

    def test_encode_source_mapping(self, base_table):
        encoded = encode_features(base_table, exclude=["target"])
        indices = encoded.columns_for_source("category")
        assert len(indices) == 2

    def test_to_design_matrix_shapes(self, base_table):
        X, y, encoding = to_design_matrix(base_table, "target")
        assert X.shape[0] == len(y) == 6
        assert "target" not in encoding.source_columns

    def test_encode_target_categorical(self):
        from repro.relational.column import Column
        codes = encode_target(Column.categorical("t", ["b", "a", "b"]))
        assert list(codes) == [1.0, 0.0, 1.0]

    def test_encoded_matrix_has_no_nan(self, base_table, foreign_table):
        joined = left_join(base_table, foreign_table, on=[("entity_id", "entity_id")])
        X, _y, _enc = to_design_matrix(joined, "target")
        assert np.isfinite(X).all()


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30),
    right_keys=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30),
)
def test_left_join_always_preserves_row_count(keys, right_keys):
    """Property: LEFT join never adds or removes base-table rows."""
    left = Table.from_dict({"k": [float(k) for k in keys]})
    right = Table.from_dict(
        {"k": [float(k) for k in right_keys], "v": [float(i) for i in range(len(right_keys))]}
    )
    joined = left_join(left, right, on=[("k", "k")])
    assert joined.num_rows == left.num_rows


@settings(max_examples=25, deadline=None)
@given(
    base_times=st.lists(
        st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=20
    ),
    right_times=st.lists(
        st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=20
    ),
)
def test_two_way_join_values_stay_within_range(base_times, right_times):
    """Property: interpolated values never leave the [min, max] of the foreign column."""
    right_values = [float(i) for i in range(len(right_times))]
    base = Table.from_dict({"t": base_times})
    right = Table.from_dict({"t": right_times, "v": right_values})
    joined = two_way_nearest_join(base, right, "t", "t")
    values = joined["v"].values
    assert np.nanmin(values) >= min(right_values) - 1e-9
    assert np.nanmax(values) <= max(right_values) + 1e-9
