"""Tests for the parallel join executor backends and the repository profile cache."""

import numpy as np
import pytest

from repro import ARDA, ARDAConfig
from repro.core.executor import (
    JoinExecutor,
    ProcessJoinExecutor,
    SerialJoinExecutor,
    ThreadJoinExecutor,
    longest_first_order,
    make_executor,
    resolve_n_jobs,
)
from repro.core.join_execution import join_candidates
from repro.core.join_plan import build_join_plan
from repro.datasets import RelationalDatasetBuilder
from repro.datasets.synthetic import SignalTableSpec
from repro.discovery import JoinDiscovery, ProfileCache
from repro.discovery.profiles import profile_table
from repro.discovery.repository import DataRepository
from repro.relational import Table

FAST_RIFS = {"n_rounds": 2}


@pytest.fixture(scope="module")
def small_dataset():
    """The same scenario shape the core-pipeline integration tests use."""
    builder = RelationalDatasetBuilder(
        "unit", n_rows=220, n_entities=60, n_base_features=3, seed=7, noise_level=0.25
    )
    builder.add_signal_table(SignalTableSpec("alpha", n_signal_columns=2, weight=1.5))
    builder.add_signal_table(SignalTableSpec("beta", n_signal_columns=2, weight=1.0))
    builder.add_noise_tables(6, prefix="junk", n_columns=4)
    return builder.build()


def _repo_with(n_tables=3, rows=40):
    rng = np.random.default_rng(0)
    tables = [
        Table.from_dict(
            {
                "entity_id": np.arange(rows, dtype=np.float64),
                "value": rng.normal(size=rows),
            },
            name=f"t{i}",
        )
        for i in range(n_tables)
    ]
    return DataRepository(tables)


class TestExecutorFactory:
    def test_serial_by_default(self):
        assert isinstance(make_executor(), SerialJoinExecutor)

    def test_named_backends(self):
        assert isinstance(make_executor("thread", 2), ThreadJoinExecutor)
        assert isinstance(make_executor("process", 2), ProcessJoinExecutor)

    def test_n_jobs_1_falls_back_to_serial(self):
        assert isinstance(make_executor("thread", n_jobs=1), SerialJoinExecutor)
        assert isinstance(make_executor("process", n_jobs=1), SerialJoinExecutor)

    def test_instance_passes_through(self):
        executor = ThreadJoinExecutor(2)
        assert make_executor(executor) is executor

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_config_validates_executor(self):
        with pytest.raises(ValueError):
            ARDAConfig(executor="gpu")

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(4) == 4
        assert resolve_n_jobs(None) >= 1
        assert resolve_n_jobs(0) >= 1

    def test_map_preserves_order(self):
        items = list(range(20))
        expected = [i * i for i in items]
        for executor in (SerialJoinExecutor(), ThreadJoinExecutor(4)):
            assert executor.map(lambda i: i * i, items) == expected

    def test_longest_first_order(self):
        assert longest_first_order([1, 5, 3, 5]) == [1, 3, 2, 0]

    def test_base_executor_is_abstract(self):
        with pytest.raises(NotImplementedError):
            JoinExecutor().map(lambda x: x, [1])

    def test_pool_reused_across_maps_then_shutdown(self):
        executor = ThreadJoinExecutor(2)
        executor.map(lambda i: i, [1, 2, 3])
        pool = executor._pool
        assert pool is not None
        executor.map(lambda i: i, [4, 5, 6])
        assert executor._pool is pool
        executor.shutdown()
        assert executor._pool is None

    def test_context_manager_shuts_down(self):
        with ThreadJoinExecutor(2) as executor:
            executor.map(lambda i: i, [1, 2])
            assert executor._pool is not None
        assert executor._pool is None

    def test_serial_shutdown_is_noop(self):
        SerialJoinExecutor().shutdown()


class TestParallelJoinIdentity:
    """Parallel backends must be byte-identical to the serial reference."""

    def _join_all(self, dataset, executor):
        return join_candidates(
            dataset.base_table,
            dataset.repository,
            dataset.candidates,
            rng=np.random.default_rng(0),
            executor=executor,
        )

    def test_thread_identical_to_serial(self, small_dataset):
        table_s, contrib_s = self._join_all(small_dataset, SerialJoinExecutor())
        table_t, contrib_t = self._join_all(small_dataset, ThreadJoinExecutor(4))
        assert table_s == table_t
        assert contrib_s == contrib_t

    def test_process_identical_to_serial(self, small_dataset):
        table_s, contrib_s = self._join_all(small_dataset, SerialJoinExecutor())
        table_p, contrib_p = self._join_all(small_dataset, ProcessJoinExecutor(2))
        assert table_s == table_p
        assert contrib_s == contrib_p

    def test_empty_batch_returns_base(self, small_dataset):
        table, contributed = join_candidates(
            small_dataset.base_table, small_dataset.repository, [], executor=ThreadJoinExecutor(2)
        )
        assert table == small_dataset.base_table
        assert contributed == {}

    def test_full_pipeline_identical(self, small_dataset):
        serial = ARDA(
            ARDAConfig(selector="RIFS", selector_options=FAST_RIFS, random_state=0)
        ).augment(small_dataset)
        threaded = ARDA(
            ARDAConfig(
                selector="RIFS", selector_options=FAST_RIFS, random_state=0,
                executor="thread", n_jobs=4,
            )
        ).augment(small_dataset)
        assert serial.augmented_table == threaded.augmented_table
        assert serial.augmented_score == threaded.augmented_score
        assert serial.kept_columns == threaded.kept_columns
        assert serial.kept_tables == threaded.kept_tables
        assert threaded.executor == "thread"
        assert serial.executor == "serial"

    def test_batch_plan_carries_feature_counts(self, small_dataset):
        for strategy in ("budget", "table", "full"):
            plan = build_join_plan(
                small_dataset.candidates, small_dataset.repository, strategy, budget=10
            )
            for batch in plan:
                assert len(batch.feature_counts) == len(batch.candidates)
                assert sum(batch.feature_counts) == batch.estimated_features


class TestProfileCache:
    def test_second_lookup_hits(self):
        repo = _repo_with(3)
        first = repo.profiles("t0")
        second = repo.profiles("t0")
        assert first is second
        assert repo.profile_cache.hits == 1
        assert repo.profile_cache.misses == 1

    def test_cached_profiles_match_direct_profiling(self):
        repo = _repo_with(1)
        cached = repo.profiles("t0")
        direct = profile_table(repo.get("t0"))
        assert set(cached) == set(direct)
        for name in cached:
            assert cached[name].num_distinct == direct[name].num_distinct
            assert cached[name].null_fraction == direct[name].null_fraction

    def test_distinct_num_hashes_are_distinct_entries(self):
        repo = _repo_with(1)
        repo.profiles("t0", num_hashes=32)
        repo.profiles("t0", num_hashes=64)
        assert repo.profile_cache.misses == 2
        assert len(repo.profile_cache) == 2

    def test_replace_invalidates(self):
        repo = _repo_with(2)
        repo.profiles("t0")
        replacement = repo.get("t0").with_column(repo.get("t1").column("value").rename("extra"))
        repo.replace(replacement.rename("t0"))
        repo.profiles("t0")
        assert repo.profile_cache.invalidations == 1
        assert repo.profile_cache.misses == 2
        assert repo.profile_cache.hits == 0
        assert "extra" in repo.profiles("t0")

    def test_remove_invalidates(self):
        repo = _repo_with(2)
        repo.profiles("t1")
        repo.remove("t1")
        assert repo.profile_cache.invalidations == 1
        with pytest.raises(KeyError):
            repo.profiles("t1")

    def test_remove_missing_raises(self):
        repo = _repo_with(1)
        with pytest.raises(KeyError):
            repo.remove("nope")

    def test_invalidate_all_and_reset(self):
        repo = _repo_with(3)
        for name in repo.table_names:
            repo.profiles(name)
        assert repo.profile_cache.invalidate() == 3
        assert len(repo.profile_cache) == 0
        repo.profile_cache.reset_counters()
        assert repo.profile_cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "invalidations": 0,
        }

    def test_cache_shared_between_discoveries(self):
        repo = _repo_with(4)
        base = Table.from_dict(
            {
                "entity_id": np.arange(40, dtype=np.float64),
                "target": np.arange(40, dtype=np.float64) * 2.0,
            },
            name="base",
        )
        discovery = JoinDiscovery()
        discovery.discover(base, repo, target="target")
        misses = repo.profile_cache.misses
        assert misses == len(repo)
        discovery.discover(base, repo, target="target")
        assert repo.profile_cache.misses == misses
        assert repo.profile_cache.hits == len(repo)

    def test_discovery_can_bypass_cache(self):
        repo = _repo_with(2)
        base = Table.from_dict(
            {
                "entity_id": np.arange(40, dtype=np.float64),
                "target": np.arange(40, dtype=np.float64),
            },
            name="base",
        )
        JoinDiscovery(use_cache=False).discover(base, repo, target="target")
        assert repo.profile_cache.stats()["misses"] == 0

    def test_standalone_cache_identity_guard(self):
        cache = ProfileCache()
        table = _repo_with(1).get("t0")
        cache.get_or_profile(table)
        cache.get_or_profile(table)
        assert (cache.hits, cache.misses) == (1, 1)
        # same name, different object: identity guard forces a re-profile
        cache.get_or_profile(table.copy())
        assert cache.misses == 2


class TestARDACacheReuse:
    def test_repeated_augment_skips_reprofiling(self, small_dataset):
        repository = DataRepository(list(small_dataset.repository))
        config = ARDAConfig(selector="random forest", coreset_size=150, random_state=0)
        kwargs = dict(target="target", task="regression")

        ARDA(config).augment_tables(small_dataset.base_table, repository, **kwargs)
        stats = repository.profile_cache.stats()
        assert stats["misses"] == len(repository)
        assert stats["hits"] == 0

        ARDA(config).augment_tables(small_dataset.base_table, repository, **kwargs)
        stats = repository.profile_cache.stats()
        assert stats["misses"] == len(repository)  # no re-profiling
        assert stats["hits"] == len(repository)

    def test_cache_profiles_false_bypasses_cache(self, small_dataset):
        repository = DataRepository(list(small_dataset.repository))
        config = ARDAConfig(
            selector="random forest", coreset_size=150, random_state=0,
            cache_profiles=False,
        )
        ARDA(config).augment_tables(
            small_dataset.base_table, repository, target="target", task="regression"
        )
        assert repository.profile_cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "invalidations": 0,
        }


class TestFinalMaterialisation:
    """Kept columns must survive re-materialisation even when collision
    suffixes assign them different names in the final join than they had
    during the coreset batch loop."""

    def test_materialise_kept_restores_loop_names_and_values(self):
        from repro.core.join_execution import join_candidates_detailed
        from repro.discovery.candidates import JoinCandidate, KeyPair

        base = Table.from_dict(
            {"entity_id": [0.0, 1.0, 2.0, 3.0], "target": [1.0, 2.0, 3.0, 4.0]},
            name="base",
        )
        t = Table.from_dict(
            {
                "entity_id": [0.0, 1.0, 2.0, 3.0],
                "key2": [3.0, 2.0, 1.0, 0.0],
                "x": [10.0, 20.0, 30.0, 40.0],
            },
            name="t",
        )
        repo = DataRepository([t])
        candidate = JoinCandidate("t", [KeyPair("entity_id", "key2")], score=1.0)
        # during the batch loop this candidate's second column collided with a
        # carried column and was kept under the suffixed name "t.x_r"
        kept_specs = [(candidate, [1], ["t.x_r"])]
        out = ARDA(ARDAConfig())._materialise_kept(
            base, repo, kept_specs, SerialJoinExecutor()
        )
        assert out.column_names == ["entity_id", "target", "t.x_r"]
        # joined via key2: base entity 0 matches the t row whose key2 is 0 -> x=40
        assert out["t.x_r"].values.tolist() == [40.0, 30.0, 20.0, 10.0]
        # sanity: a plain final join would have named this column "t.x"
        joined, added = join_candidates_detailed(base, repo, [candidate])
        assert added == [["t.entity_id", "t.x"]]

    def test_augment_kept_columns_all_present(self, small_dataset):
        config = ARDAConfig(selector="random forest", coreset_size=150, random_state=0)
        report = ARDA(config).augment_tables(
            small_dataset.base_table,
            small_dataset.repository,
            target="target",
            task="regression",
        )
        # discovery emits up to 2 candidates per table, so duplicate-table
        # collisions are in play; every reported kept column must exist
        missing = [
            name
            for name in report.kept_columns
            if name not in report.augmented_table
        ]
        assert missing == []


class TestStageTimings:
    def test_report_stage_breakdown(self, small_dataset):
        config = ARDAConfig(selector="random forest", random_state=0)
        report = ARDA(config).augment(small_dataset)
        breakdown = report.stage_breakdown()
        assert set(breakdown) == {
            "discovery_s", "coreset_s", "join_s", "selection_s", "fit_s",
            "other_s", "total_s",
        }
        assert breakdown["join_s"] > 0
        assert breakdown["fit_s"] > 0
        assert breakdown["total_s"] >= breakdown["join_s"]
        assert all(v >= 0 for v in breakdown.values())
        assert report.summary()["executor"] == "serial"
        assert any(batch.join_time > 0 for batch in report.batches)

    def test_stage_breakdown_reporting(self, small_dataset):
        from repro.evaluation import format_stage_breakdown, stage_breakdown_rows

        config = ARDAConfig(selector="random forest", random_state=0)
        report = ARDA(config).augment(small_dataset)
        rows = stage_breakdown_rows([report])
        assert rows[0]["dataset"] == "unit"
        text = format_stage_breakdown([report])
        assert "join_s" in text and "executor" in text

    def test_evaluate_augmentation_exposes_stage_times(self, small_dataset):
        from repro.evaluation import evaluate_augmentation

        record = evaluate_augmentation(
            small_dataset, ARDAConfig(selector="random forest", random_state=0)
        )
        assert "stage_times" in record.extra
        assert record.extra["stage_times"]["total_s"] > 0
