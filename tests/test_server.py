"""Tests for the resident serving server, unified CLI and metrics registry.

Covers the serving-server acceptance surface:

* served predictions — single-row, batch, and under concurrent clients —
  are byte-identical to offline ``FittedPipeline.predict`` on the same rows;
* micro-batch coalescing: several queued requests are scored as one batch,
  and a malformed request in a coalesced batch fails alone (batch-mates
  still succeed);
* hot reload: artifact swap under sustained multi-client load with zero
  failed requests, repository-generation pickup, torn-write resilience;
* graceful shutdown: every admitted request gets its response;
* HTTP error surface: 400/404/413/503 with JSON bodies, ``/healthz`` and
  ``/metrics`` content;
* the unified ``python -m repro`` CLI, the deprecated
  ``repro.serve``/``repro.repo`` shims, and content-based row-file dispatch;
* the :mod:`repro.observability` registry and the migrated subsystem
  counters.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

import repro.repo as repo_shim
import repro.serve as serve_shim
from repro.cli import _load_rows, main as cli_main
from repro.core import ARDA, ARDAConfig, ServingConfig
from repro.core.results import AugmentationReport
from repro.datasets.synthetic import RelationalDatasetBuilder, SignalTableSpec
from repro.discovery.repository import DataRepository, ProfileCache
from repro.observability import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.relational.io import write_csv
from repro.relational.join import StreamJoinStats
from repro.relational.table import Table
from repro.serving import FittedPipeline, PredictionServer, RequestError
from repro.serving.codec import (
    parse_predict_payload,
    predictions_to_payload,
    rows_to_table,
)
from repro.serving.server import _Job

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


# -- fixtures ----------------------------------------------------------------


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """Two ARDA runs over one dataset (hot-swap source and target) + a lake."""
    builder = RelationalDatasetBuilder(
        "server", task="regression", n_rows=120, n_entities=40, seed=3
    )
    builder.add_signal_table(SignalTableSpec("signal", n_signal_columns=2, weight=2.0))
    builder.add_noise_tables(1, prefix="noise", n_columns=2)
    dataset = builder.build()
    report = ARDA(ARDAConfig()).augment(dataset)
    report_b = ARDA(ARDAConfig(random_state=7)).augment(dataset)
    assert report.pipeline is not None and report_b.pipeline is not None
    tmp = tmp_path_factory.mktemp("server-module")
    artifact = tmp / "model.pipeline"
    report.pipeline.save(artifact)
    artifact_b = tmp / "model-b.pipeline"
    report_b.pipeline.save(artifact_b)
    lake = tmp / "lake"
    lake.mkdir()
    for name in dataset.repository.table_names:
        dataset.repository.get(name).save(lake / f"{name}.tbl")
    rows = [dataset.base_table.row(i) for i in range(16)]
    types = {c.name: c.ctype for c in dataset.base_table.columns()}
    offline = FittedPipeline.load(artifact, repository=DataRepository.open(lake))
    expected = offline.predict(Table.from_rows(rows, types=types))
    offline_b = FittedPipeline.load(artifact_b, repository=DataRepository.open(lake))
    expected_b = offline_b.predict(Table.from_rows(rows, types=types))
    assert not np.array_equal(expected, expected_b)  # swap must be observable
    assert offline.joins  # the serving tests exercise join replay
    return SimpleNamespace(
        dataset=dataset,
        artifact=artifact,
        artifact_b=artifact_b,
        lake=lake,
        rows=rows,
        types=types,
        expected=expected,
        expected_b=expected_b,
    )


@pytest.fixture
def mutable_copy(trained, tmp_path):
    """A private artifact + lake copy tests may overwrite or truncate."""
    artifact = tmp_path / "model.pipeline"
    shutil.copyfile(trained.artifact, artifact)
    lake = tmp_path / "lake"
    shutil.copytree(trained.lake, lake)
    return SimpleNamespace(artifact=artifact, lake=lake)


def make_server(artifact, lake, **overrides) -> PredictionServer:
    """A started server on an ephemeral port with an isolated registry."""
    options = {"port": 0, "workers": 2, "reload_interval_s": 0.0}
    options.update(overrides)
    config = ServingConfig(**options)
    return PredictionServer(
        artifact, repository=str(lake), config=config, registry=MetricsRegistry()
    ).start()


def http_post(address, payload, path="/predict", timeout=30):
    host, port = address
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(f"http://{host}:{port}{path}", data=data)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_get(address, path, timeout=30):
    host, port = address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=timeout
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


# -- serving config ----------------------------------------------------------


class TestServingConfig:
    def test_defaults_validate(self):
        config = ServingConfig()
        assert config.workers >= 1 and config.max_batch_rows >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_batch_rows": 0},
            {"max_wait_ms": -1.0},
            {"queue_depth": 0},
            {"max_request_rows": 0},
            {"reload_interval_s": -0.1},
            {"drain_timeout_s": 0.0},
            {"port": 70000},
            {"executor": "bogus"},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


# -- codec -------------------------------------------------------------------


class TestCodec:
    def test_payload_shapes(self):
        rows, single = parse_predict_payload({"a": 1.0})
        assert single and rows == [{"a": 1.0}]
        rows, single = parse_predict_payload([{"a": 1.0}, {"a": 2.0}])
        assert not single and len(rows) == 2
        rows, single = parse_predict_payload({"rows": [{"a": 1.0}]})
        assert not single and rows == [{"a": 1.0}]

    @pytest.mark.parametrize(
        "payload",
        ["text", 7, {"rows": "nope"}, {"rows": [1, 2]}, [], {"rows": []}, [None]],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(RequestError):
            parse_predict_payload(payload)

    def test_rows_to_table_pins_fitted_types(self):
        table = rows_to_table(
            [{"x": "3.5", "label": 7}, {"x": None, "label": "b"}],
            [("x", "numeric"), ("label", "categorical")],
        )
        assert table.column("x").ctype.value == "numeric"
        assert table.column("label").ctype.value == "categorical"
        values = table.column("x").values
        assert values[0] == 3.5 and np.isnan(values[1])

    def test_rows_to_table_bad_value_raises_request_error(self):
        with pytest.raises(RequestError, match="could not decode rows"):
            rows_to_table([{"x": "abc"}], [("x", "numeric")])

    def test_predictions_to_payload_json_safe(self):
        out = predictions_to_payload(np.array([1.5, np.nan, np.inf]))
        assert out == [1.5, None, None]
        labels = np.array(["a", None, "b"], dtype=object)
        assert predictions_to_payload(labels) == ["a", None, "b"]


# -- the resident server ------------------------------------------------------


class TestPredictionServer:
    def test_concurrent_singles_and_batch_identical_to_offline(self, trained):
        with make_server(trained.artifact, trained.lake, max_wait_ms=5.0) as server:
            results = [None] * len(trained.rows)

            def fetch(i):
                results[i] = http_post(server.address, trained.rows[i])

            threads = [
                threading.Thread(target=fetch, args=(i,))
                for i in range(len(trained.rows))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(status == 200 for status, _doc in results)
            singles = np.array([doc["prediction"] for _status, doc in results])
            assert np.array_equal(singles, trained.expected)

            status, doc = http_post(server.address, {"rows": trained.rows})
            assert status == 200
            assert np.array_equal(np.array(doc["predictions"]), trained.expected)
            assert doc["generation"] == 0

    def test_worker_coalesces_queued_jobs_into_one_batch(self, trained):
        # drive the worker loop synchronously: five queued jobs and a stop
        # sentinel must score as ONE merged batch, split back per job
        server = PredictionServer(
            trained.artifact,
            repository=str(trained.lake),
            config=ServingConfig(port=0, workers=1),
            registry=MetricsRegistry(),
        )
        server._live = server._load_generation(index=0)
        try:
            jobs = [_Job([row]) for row in trained.rows[:5]]
            for job in jobs:
                server._queue.put(job)
            from repro.serving.server import _STOP

            server._queue.put(_STOP)
            server._worker_loop()
            for job, want in zip(jobs, trained.expected[:5]):
                assert job.event.is_set() and job.error is None
                assert job.predictions == [want]
            batches = server.registry.histogram("server.batch_rows")
            assert batches.count == 1  # one batch, not five
            assert batches.sum == 5.0
        finally:
            server.close()

    def test_bad_job_in_coalesced_batch_fails_alone(self, trained):
        server = PredictionServer(
            trained.artifact,
            repository=str(trained.lake),
            config=ServingConfig(port=0, workers=1),
            registry=MetricsRegistry(),
        )
        server._live = server._load_generation(index=0)
        try:
            numeric = next(
                name
                for name, ctype in server._live.pipeline.base_schema
                if ctype == "numeric" and name != server._live.pipeline.target
            )
            good = _Job([dict(trained.rows[0])])
            poisoned_row = dict(trained.rows[1])
            poisoned_row[numeric] = "not-a-number"
            bad = _Job([poisoned_row])
            server._score_jobs([good, bad])
            assert good.error is None
            assert good.predictions == [trained.expected[0]]
            assert bad.error is not None and bad.error[0] == 400
        finally:
            server.close()

    def test_http_error_surface(self, trained):
        with make_server(trained.artifact, trained.lake, max_request_rows=4) as server:
            status, doc = http_post(server.address, b"{not json")
            assert status == 400 and "JSON" in doc["error"]
            status, doc = http_post(server.address, {"rows": [1, 2]})
            assert status == 400
            status, doc = http_post(server.address, {"bogus_column": 1.0})
            assert status == 400 and "missing base columns" in doc["error"]
            status, doc = http_post(server.address, {"rows": trained.rows[:5]})
            assert status == 413 and "max_request_rows" in doc["error"]
            status, doc = http_post(server.address, trained.rows[0], path="/nope")
            assert status == 404
            status, doc = http_get(server.address, "/nope")
            assert status == 404

    def test_healthz_and_metrics(self, trained):
        with make_server(trained.artifact, trained.lake) as server:
            status, doc = http_get(server.address, "/healthz")
            assert status == 200 and doc == {"status": "ok", "generation": 0}
            http_post(server.address, {"rows": trained.rows[:3]})
            status, snap = http_get(server.address, "/metrics")
            assert status == 200
            assert snap["counters"]["server.requests"] == 1.0
            assert snap["counters"]["server.rows"] == 3.0
            assert snap["counters"]["server.batches"] >= 1.0
            assert snap["histograms"]["server.request_s"]["count"] == 1
            state = snap["sources"]["server.state"]
            assert state["generation"] == 0 and state["workers"] == 2
            assert not state["draining"]

    def test_graceful_shutdown_drains_admitted_requests(self, trained):
        server = make_server(trained.artifact, trained.lake, max_wait_ms=5.0)
        address = server.address
        outcomes = []
        lock = threading.Lock()

        def fire():
            try:
                status, doc = http_post(address, {"rows": trained.rows})
            except OSError:
                # never admitted (socket already closed) — not a failed request
                status, doc = None, None
            with lock:
                outcomes.append((status, doc))

        threads = [threading.Thread(target=fire) for _ in range(12)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let most requests get admitted before draining
        server.close()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 12
        assert any(status == 200 for status, _doc in outcomes)
        for status, doc in outcomes:
            # admitted requests must complete; late arrivals get a clean 503
            assert status in (200, 503, None), (status, doc)
            if status == 200:
                assert np.array_equal(
                    np.array(doc["predictions"]), trained.expected
                )
        # the drained server answers nothing further
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://{address[0]}:{address[1]}/healthz", timeout=5
            )

    def test_manual_hot_swap_changes_predictions(self, trained, mutable_copy):
        with make_server(mutable_copy.artifact, mutable_copy.lake) as server:
            status, doc = http_post(server.address, {"rows": trained.rows})
            assert status == 200 and doc["generation"] == 0
            assert np.array_equal(np.array(doc["predictions"]), trained.expected)
            assert server.check_reload() is False  # nothing changed yet

            shutil.copyfile(trained.artifact_b, mutable_copy.artifact)
            assert server.check_reload() is True
            assert server.generation == 1
            status, doc = http_post(server.address, {"rows": trained.rows})
            assert status == 200 and doc["generation"] == 1
            assert np.array_equal(np.array(doc["predictions"]), trained.expected_b)
            snap = server.registry.snapshot()
            assert snap["counters"]["server.reloads"] == 1.0

    def test_torn_artifact_write_keeps_old_generation(self, trained, mutable_copy):
        with make_server(mutable_copy.artifact, mutable_copy.lake) as server:
            whole = mutable_copy.artifact.read_bytes()
            mutable_copy.artifact.write_bytes(whole[: len(whole) // 2])
            assert server.check_reload() is False
            assert server.generation == 0
            status, doc = http_post(server.address, {"rows": trained.rows})
            assert status == 200
            assert np.array_equal(np.array(doc["predictions"]), trained.expected)
            snap = server.registry.snapshot()
            assert snap["counters"]["server.reload_failures"] >= 1.0
            # the restored artifact fingerprints back to the live generation
            mutable_copy.artifact.write_bytes(whole)
            assert server.check_reload() is False

    def test_repository_generation_triggers_reload(self, trained, mutable_copy):
        with make_server(mutable_copy.artifact, mutable_copy.lake) as server:
            writer = DataRepository.open(mutable_copy.lake)
            writer.add(
                Table.from_dict(
                    {"k": [1.0, 2.0], "v": [3.0, 4.0]}, name="late_arrival"
                )
            )
            assert server.check_reload() is True
            assert server.generation == 1
            status, doc = http_post(server.address, {"rows": trained.rows})
            assert status == 200
            assert np.array_equal(np.array(doc["predictions"]), trained.expected)

    @pytest.mark.stress
    def test_hot_swap_under_sustained_load_zero_failures(self, trained, mutable_copy):
        """4 concurrent clients, artifact swapped live: no request may fail."""
        swaps = max(2, int(os.environ.get("ARDA_STRESS", "0") or 0) // 50)
        with make_server(
            mutable_copy.artifact, mutable_copy.lake,
            workers=3, reload_interval_s=0.05, max_wait_ms=2.0,
        ) as server:
            failures: list = []
            generations: set[int] = set()
            stop = threading.Event()
            lock = threading.Lock()

            def hammer():
                while not stop.is_set():
                    try:
                        status, doc = http_post(
                            server.address, {"rows": trained.rows[:4]}
                        )
                        if status != 200:
                            raise AssertionError((status, doc))
                        with lock:
                            generations.add(doc["generation"])
                        want = (
                            trained.expected
                            if doc["generation"] % 2 == 0
                            else trained.expected_b
                        )
                        if not np.array_equal(
                            np.array(doc["predictions"]), want[:4]
                        ):
                            raise AssertionError("prediction drift mid-swap")
                    except Exception as exc:  # noqa: BLE001 - recorded, not raised
                        with lock:
                            failures.append(repr(exc))
                        stop.set()

            clients = [threading.Thread(target=hammer) for _ in range(4)]
            for client in clients:
                client.start()
            sources = [trained.artifact_b, trained.artifact]
            for swap in range(swaps):
                time.sleep(0.4)
                shutil.copyfile(sources[swap % 2], mutable_copy.artifact)
                deadline = time.monotonic() + 10
                while server.generation == swap and time.monotonic() < deadline:
                    time.sleep(0.02)
            time.sleep(0.3)
            stop.set()
            for client in clients:
                client.join()
            assert failures == []
            assert server.generation == swaps
            assert generations >= set(range(swaps + 1))

    def test_snapshot_rejected_and_unbound_joins_rejected(self, trained, tmp_path):
        repo = DataRepository.open(trained.lake)
        with pytest.raises(TypeError, match="live DataRepository"):
            PredictionServer(trained.artifact, repository=repo.snapshot())
        server = PredictionServer(
            trained.artifact, config=ServingConfig(port=0), registry=MetricsRegistry()
        )
        with pytest.raises(ValueError, match="repository"):
            server.start()


# -- repository reload --------------------------------------------------------


class TestRepositoryReload:
    def test_reader_adopts_writer_generation(self, tmp_path):
        writer = DataRepository.open(tmp_path)
        writer.add(Table.from_dict({"k": [1.0], "v": [10.0]}, name="t"))
        reader = DataRepository.open(tmp_path)
        before = reader.generation
        assert reader.reload() == before  # nothing new
        writer.replace(Table.from_dict({"k": [1.0], "v": [99.0]}, name="t"))
        assert reader.reload() > before
        assert reader.get("t").column("v").values[0] == 99.0

    def test_reload_noop_without_directory(self):
        repository = DataRepository()
        assert repository.reload() == repository.generation


# -- pipeline warm/release ----------------------------------------------------


class TestWarmRelease:
    def test_warm_requires_binding(self, trained):
        pipeline = FittedPipeline.load(trained.artifact)
        if pipeline.joins:
            with pytest.raises(ValueError, match="bind"):
                pipeline.warm()
        pipeline.bind(DataRepository.open(trained.lake))
        assert pipeline.warm() is pipeline

    def test_release_is_idempotent_and_rebindable(self, trained):
        repository = DataRepository.open(trained.lake)
        pipeline = FittedPipeline.load(trained.artifact, repository=repository)
        pipeline.release()
        pipeline.release()
        with pytest.raises(ValueError, match="repository"):
            pipeline.predict(Table.from_rows(trained.rows, types=trained.types))
        pipeline.bind(repository)
        out = pipeline.predict(Table.from_rows(trained.rows, types=trained.types))
        assert np.array_equal(out, trained.expected)


# -- unified CLI and shims ----------------------------------------------------


class TestUnifiedCLI:
    def test_inspect_and_score(self, trained, tmp_path, capsys):
        assert cli_main(["inspect", str(trained.artifact)]) == 0
        assert "target" in capsys.readouterr().out
        rows_path = tmp_path / "rows.tbl"
        Table.from_rows(trained.rows, types=trained.types).save(rows_path)
        out_path = tmp_path / "predictions.csv"
        assert (
            cli_main(
                [
                    "score",
                    str(trained.artifact),
                    "--repository",
                    str(trained.lake),
                    "--rows",
                    str(rows_path),
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        from repro.relational.io import read_csv

        written = read_csv(out_path).column("prediction").values
        assert np.array_equal(written, trained.expected)

    def test_score_dispatches_on_content_not_suffix(self, trained, tmp_path, capsys):
        table = Table.from_rows(trained.rows, types=trained.types)
        upper = tmp_path / "rows.CSV"
        write_csv(table, upper)
        noext = tmp_path / "rowsdata"
        write_csv(table, noext)
        for path in (upper, noext):
            assert (
                cli_main(
                    [
                        "score",
                        str(trained.artifact),
                        "--repository",
                        str(trained.lake),
                        "--rows",
                        str(path),
                        "--head",
                        "1",
                    ]
                )
                == 0
            )
            assert capsys.readouterr().out.splitlines()[0] == str(trained.expected[0])

    def test_load_rows_garbage_names_accepted_formats(self, tmp_path):
        garbage = tmp_path / "blob.bin"
        garbage.write_bytes(b"\x00\xff\xfe definitely not a table")
        with pytest.raises(ValueError) as excinfo:
            _load_rows(garbage)
        message = str(excinfo.value)
        assert "RPROTBLF" in message and "CSV" in message

    def test_repo_subcommands(self, mutable_copy, capsys):
        assert cli_main(["repo", "stat", str(mutable_copy.lake)]) == 0
        assert "bytes read" in capsys.readouterr().out
        assert (
            cli_main(
                ["repo", "rechunk", str(mutable_copy.lake), "signal", "--chunk-rows", "32"]
            )
            == 0
        )
        assert "-> " in capsys.readouterr().out
        assert cli_main(["repo", "rechunk", str(mutable_copy.lake)]) == 2

    def test_deprecated_shims_warn_and_forward(self, trained, capsys):
        with pytest.warns(DeprecationWarning, match="python -m repro"):
            assert serve_shim.main(["inspect", str(trained.artifact)]) == 0
        capsys.readouterr()
        with pytest.warns(DeprecationWarning, match="python -m repro repo"):
            assert repo_shim.main(["stat", str(trained.lake)]) == 0
        assert "bytes read" in capsys.readouterr().out

    def test_server_subcommand_serves_and_drains_on_sigint(self, trained):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(trained.artifact),
                "--repository",
                str(trained.lake),
                "--port",
                "0",
                "--reload-interval",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline().strip()
            assert "http://" in banner
            address = banner.rsplit("http://", 1)[1]
            with urllib.request.urlopen(
                f"http://{address}/healthz", timeout=30
            ) as response:
                assert json.loads(response.read())["status"] == "ok"
        finally:
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=60) == 0


# -- observability ------------------------------------------------------------


class TestObservability:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_quantiles_and_dict(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        assert math.isnan(histogram.quantile(0.5))
        for value in (0.5, 1.5, 1.5, 3.0, 7.0):
            histogram.observe(value)
        doc = histogram.to_dict()
        assert doc["count"] == 5 and doc["min"] == 0.5 and doc["max"] == 7.0
        assert doc["sum"] == pytest.approx(13.5)
        assert 0.5 <= doc["p50"] <= 2.0
        assert 4.0 <= doc["p99"] <= 7.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_registry_get_or_create_and_collisions(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.register_source("y", lambda: {})

    def test_snapshot_shape_and_source_errors(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.histogram("lat").observe(0.2)
        registry.register_source("ok", lambda: {"a": 1})
        registry.register_source("boom", lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["counters"] == {"jobs": 3.0}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["sources"]["ok"] == {"a": 1}
        assert "ZeroDivisionError" in snap["sources"]["boom"]["error"]
        assert json.dumps(snap)  # must be JSON-serialisable
        registry.unregister_source("boom")
        assert "boom" not in registry.snapshot()["sources"]

    def test_record_timings(self):
        registry = MetricsRegistry()
        registry.record_timings("stage", {"join_s": 0.5, "fit_s": 1.5})
        snap = registry.snapshot()
        assert snap["histograms"]["stage.join_s"]["count"] == 1
        assert snap["histograms"]["stage.fit_s"]["sum"] == 1.5

    def test_persist_bytes_read_is_a_default_source(self):
        snap = get_registry().snapshot()
        assert "persist.bytes_read" in snap["sources"]
        assert isinstance(snap["sources"]["persist.bytes_read"], dict)

    def test_profile_cache_register_metrics(self):
        registry = MetricsRegistry()
        cache = ProfileCache()
        name = cache.register_metrics(registry, name="cache")
        assert name == "cache"
        stats = registry.snapshot()["sources"]["cache"]
        assert {"hits", "misses"} <= set(stats)

    def test_stream_join_stats_record_to(self):
        registry = MetricsRegistry()
        stats = StreamJoinStats(
            chunks_total=4, chunks_probed=3,
            rows_total=100, rows_probed=75, rows_matched=50,
        )
        stats.record_to(registry)
        stats.record_to(registry)
        counters = registry.snapshot()["counters"]
        assert counters["stream_join.chunks_total"] == 8.0
        assert counters["stream_join.rows_matched"] == 100.0

    def test_augment_records_into_default_registry(self, trained):
        # the module fixture ran ARDA.augment, which records per-run metrics
        snap = get_registry().snapshot()
        assert snap["counters"].get("arda.runs", 0) >= 1.0
        assert snap["histograms"]["arda.stage.total_s"]["count"] >= 1

    def test_report_record_metrics_isolated(self):
        registry = MetricsRegistry()
        report = AugmentationReport(
            dataset_name="d", task="regression", base_score=0.1,
            augmented_score=0.2, augmented_table=Table([], name="t"),
            total_time=1.0, selection_time=0.25, fit_time=0.5,
        )
        report.record_metrics(registry)
        snap = registry.snapshot()
        assert snap["counters"]["arda.runs"] == 1.0
        assert snap["histograms"]["arda.stage.selection_s"]["sum"] == 0.25
