"""Tests for columns, type inference and coercion."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.relational.column import Column, concat_columns, infer_type
from repro.relational.schema import BOOLEAN, CATEGORICAL, DATETIME, NUMERIC, Schema, ColumnSpec


class TestTypeInference:
    def test_numeric_list(self):
        assert infer_type([1, 2.5, 3]) is NUMERIC

    def test_numeric_with_none(self):
        assert infer_type([1.0, None, 3.0]) is NUMERIC

    def test_string_list(self):
        assert infer_type(["a", "b"]) is CATEGORICAL

    def test_mixed_string_and_number_is_categorical(self):
        assert infer_type([1, "a"]) is CATEGORICAL

    def test_datetime_list(self):
        assert infer_type([dt.datetime(2020, 1, 1), None]) is DATETIME

    def test_boolean_list(self):
        assert infer_type([True, False, None]) is BOOLEAN

    def test_numpy_float_array(self):
        assert infer_type(np.array([1.0, 2.0])) is NUMERIC


class TestColumnConstruction:
    def test_numeric_values_stored_as_float(self):
        col = Column.numeric("x", [1, 2, 3])
        assert col.values.dtype == np.float64
        assert col.ctype is NUMERIC

    def test_none_becomes_nan_for_numeric(self):
        col = Column.numeric("x", [1.0, None, 3.0])
        assert np.isnan(col.values[1])
        assert col.null_count() == 1

    def test_categorical_none_preserved(self):
        col = Column.categorical("c", ["a", None, "b"])
        assert col.values[1] is None
        assert col.null_count() == 1

    def test_categorical_coerces_to_string(self):
        col = Column.categorical("c", [1, 2, 1])
        assert list(col.values) == ["1", "2", "1"]

    def test_datetime_from_datetime_objects(self):
        col = Column.datetime("t", [dt.datetime(1970, 1, 2)])
        assert col.values[0] == pytest.approx(86400.0)

    def test_datetime_from_iso_string(self):
        col = Column.datetime("t", ["1970-01-01T01:00:00"])
        assert col.values[0] == pytest.approx(3600.0)

    def test_boolean_stored_as_float(self):
        col = Column.boolean("b", [True, False])
        assert list(col.values) == [1.0, 0.0]

    def test_empty_numeric_string_becomes_nan(self):
        col = Column.numeric("x", ["1.5", " "])
        assert col.values[0] == pytest.approx(1.5)
        assert np.isnan(col.values[1])


class TestColumnOperations:
    def test_take_with_repeats(self):
        col = Column.numeric("x", [10.0, 20.0, 30.0])
        taken = col.take(np.array([2, 0, 0]))
        assert list(taken.values) == [30.0, 10.0, 10.0]

    def test_filter(self):
        col = Column.numeric("x", [1.0, 2.0, 3.0])
        assert list(col.filter(np.array([True, False, True])).values) == [1.0, 3.0]

    def test_rename_keeps_data(self):
        col = Column.numeric("x", [1.0])
        renamed = col.rename("y")
        assert renamed.name == "y"
        assert renamed.values is col.values

    def test_unique_categorical_preserves_first_seen_order(self):
        col = Column.categorical("c", ["b", "a", "b", None])
        assert col.unique() == ["b", "a"]

    def test_unique_numeric_excludes_nan(self):
        col = Column.numeric("x", [3.0, 1.0, None, 3.0])
        assert col.unique() == [1.0, 3.0]

    def test_equality_with_nan(self):
        a = Column.numeric("x", [1.0, None])
        b = Column.numeric("x", [1.0, None])
        assert a == b

    def test_inequality_on_name(self):
        assert Column.numeric("x", [1.0]) != Column.numeric("y", [1.0])

    def test_cast_numeric_to_categorical(self):
        col = Column.numeric("x", [1.0, 2.0]).cast(CATEGORICAL)
        assert col.ctype is CATEGORICAL
        assert list(col.values) == ["1.0", "2.0"]

    def test_concat_columns(self):
        a = Column.numeric("x", [1.0])
        b = Column.numeric("x", [2.0, 3.0])
        merged = concat_columns([a, b])
        assert list(merged.values) == [1.0, 2.0, 3.0]

    def test_concat_mismatched_types_raises(self):
        with pytest.raises(ValueError):
            concat_columns([Column.numeric("x", [1.0]), Column.categorical("x", ["a"])])


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([ColumnSpec("a", NUMERIC), ColumnSpec("a", CATEGORICAL)])

    def test_lookup_and_contains(self):
        schema = Schema.from_pairs([("a", NUMERIC), ("b", CATEGORICAL)])
        assert schema.type_of("b") is CATEGORICAL
        assert "a" in schema and "z" not in schema
        assert schema.names == ["a", "b"]

    def test_equality(self):
        a = Schema.from_pairs([("a", NUMERIC)])
        b = Schema.from_pairs([("a", NUMERIC)])
        assert a == b


@given(st.lists(st.one_of(st.floats(allow_nan=False, allow_infinity=False, width=32), st.none()), min_size=1, max_size=30))
def test_numeric_column_roundtrip_preserves_values(values):
    """Numeric coercion keeps non-missing values and maps None to NaN."""
    col = Column.numeric("x", values)
    assert len(col) == len(values)
    for raw, stored in zip(values, col.values):
        if raw is None:
            assert np.isnan(stored)
        else:
            assert stored == pytest.approx(float(raw))


@given(st.lists(st.text(min_size=0, max_size=5), min_size=1, max_size=30))
def test_categorical_null_count_matches_none_count(values):
    """Categorical columns never invent or drop missing values."""
    col = Column.categorical("c", values)
    assert col.null_count() == 0
    assert len(col.unique()) == len(set(values))
