"""Snapshot isolation of the repository manifest layer.

Four layers of assurance, bottom-up:

* unit tests of the manifest format and the generation lifecycle;
* deterministic tests of snapshot pinning, reference-counted GC and crash
  recovery (debris injection);
* unit tests that the black-box history validator (``tests/si_checker.py``)
  flags every anomaly kind it claims to — including against deliberately
  broken repository variants (torn publish, eager GC);
* randomized multi-threaded workloads (hypothesis-driven, fixed seeds)
  validated by that checker — a quick profile in tier-1, hundreds of
  histories under ``-m stress`` with ``ARDA_STRESS`` set (CI's concurrency
  job).  Failing histories are serialized to a repro file.
"""

from __future__ import annotations

import gc
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.discovery.repository import (
    MANIFEST_NAME,
    PROFILE_SIDECAR,
    DataRepository,
    ProfileCache,
    RepositorySnapshot,
)
from repro.relational.persist import (
    ManifestEntry,
    ManifestFormatError,
    RepositoryManifest,
    TableFormatError,
    read_manifest,
    table_fingerprint,
    write_manifest,
    write_table,
)
from repro.relational.table import Table
from si_checker import (
    Anomaly,
    EagerGCRepository,
    History,
    SnapshotObservation,
    TornPublishRepository,
    WorkloadConfig,
    WriteOp,
    assert_history_clean,
    check_history,
    history_from_json,
    run_workload,
    serialize_history,
    stress_iterations,
)


def make_table(name: str, payload: float) -> Table:
    return Table.from_dict({"k": [1.0, 2.0], "v": [payload, payload + 1.0]}, name=name)


# -- the manifest format -------------------------------------------------------


class TestManifestFormat:
    def test_round_trip(self, tmp_path):
        manifest = RepositoryManifest(
            generation=7,
            tables={
                "a": ManifestEntry(file="a-abc.tbl", fingerprint="abc", num_rows=3),
                "b": ManifestEntry(file="b-def.tbl", fingerprint="def", num_rows=0),
            },
        )
        path = tmp_path / MANIFEST_NAME
        write_manifest(path, manifest)
        loaded = read_manifest(path)
        assert loaded.generation == 7
        assert loaded.tables == manifest.tables
        assert sorted(loaded.files()) == ["a-abc.tbl", "b-def.tbl"]

    def test_rejects_negative_generation(self, tmp_path):
        with pytest.raises(ValueError, match="generation"):
            write_manifest(tmp_path / "m", RepositoryManifest(generation=-1, tables={}))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_bytes(b"NOTAMANI" + b"\x00" * 16)
        with pytest.raises(ManifestFormatError, match="bad magic"):
            read_manifest(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        write_manifest(path, RepositoryManifest(generation=1, tables={}))
        blob = bytearray(path.read_bytes())
        blob[8] = 99  # version uint32 starts right after the 8-byte magic
        path.write_bytes(bytes(blob))
        with pytest.raises(ManifestFormatError, match="version"):
            read_manifest(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        write_manifest(path, RepositoryManifest(generation=1, tables={}))
        blob = path.read_bytes()
        path.write_bytes(blob[:-4])
        with pytest.raises(ManifestFormatError, match="truncated"):
            read_manifest(path)

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        write_manifest(path, RepositoryManifest(generation=1, tables={}))
        blob = bytearray(path.read_bytes())
        blob[-2] = ord("!")
        path.write_bytes(bytes(blob))
        with pytest.raises(ManifestFormatError, match="corrupt"):
            read_manifest(path)

    def test_no_tmp_debris_after_writes(self, tmp_path):
        for generation in range(1, 4):
            write_manifest(
                tmp_path / MANIFEST_NAME,
                RepositoryManifest(generation=generation, tables={}),
            )
        assert not list(tmp_path.glob("*.tmp"))


# -- the generation lifecycle ----------------------------------------------------


class TestGenerationLifecycle:
    def test_legacy_directory_opens_at_generation_zero(self, tmp_path):
        write_table(make_table("t0", 1.0), tmp_path / "t0.tbl")
        repo = DataRepository.open(tmp_path)
        assert repo.generation == 0
        assert not (tmp_path / MANIFEST_NAME).exists()  # manifest appears lazily

    def test_mutations_publish_monotonic_generations(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        assert repo.add(make_table("a", 1.0)) == 1
        assert repo.replace(make_table("a", 2.0)) == 2
        assert repo.add(make_table("b", 3.0)) == 3
        assert repo.remove("a") == 4
        assert repo.generation == 4
        assert read_manifest(tmp_path / MANIFEST_NAME).generation == 4

    def test_reopen_resumes_at_committed_generation(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        repo.replace(make_table("a", 2.0))
        reopened = DataRepository.open(tmp_path)
        assert reopened.generation == 2
        assert reopened.add(make_table("b", 3.0)) == 3
        assert reopened.get("a")["v"].to_list() == [2.0, 3.0]

    def test_in_memory_generations(self):
        repo = DataRepository()
        assert repo.add(make_table("a", 1.0)) == 1
        assert repo.replace(make_table("a", 2.0)) == 2
        assert repo.remove("a") == 3

    def test_manifest_referencing_missing_file_raises(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        next(tmp_path.glob("a-*.tbl")).unlink()
        with pytest.raises(TableFormatError, match="missing table file"):
            DataRepository.open(tmp_path)

    def test_external_file_collision_prefers_manifest(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        # an out-of-band file carrying an already-managed table name
        write_table(make_table("a", 9.0), tmp_path / "rogue.tbl")
        reopened = DataRepository.open(tmp_path)
        assert reopened.get("a")["v"].to_list() == [1.0, 2.0]

    def test_unmarked_external_file_is_adopted(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        write_table(make_table("extra", 5.0), tmp_path / "extra.tbl")
        reopened = DataRepository.open(tmp_path)
        assert sorted(reopened.table_names) == ["a", "extra"]
        # the adopted table survives the next publish
        reopened.replace(make_table("a", 2.0))
        assert sorted(DataRepository.open(tmp_path).table_names) == ["a", "extra"]


# -- snapshot semantics ------------------------------------------------------------


class TestSnapshotSemantics:
    def test_snapshot_pins_content_across_replace(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        snap = repo.snapshot()
        repo.replace(make_table("a", 9.0))
        assert snap.generation == 1
        assert snap.get("a")["v"].to_list() == [1.0, 2.0]
        assert repo.get("a")["v"].to_list() == [9.0, 10.0]
        assert snap.header("a").fingerprint != repo.header("a").fingerprint
        snap.release()

    def test_snapshot_pins_removed_table(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        with repo.snapshot() as snap:
            repo.remove("a")
            assert "a" in snap
            assert snap.get("a")["v"].to_list() == [1.0, 2.0]
            assert "a" not in repo

    def test_snapshot_does_not_see_later_adds(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        with repo.snapshot() as snap:
            repo.add(make_table("b", 2.0))
            assert snap.table_names == ["a"]
            assert "b" not in snap
            with pytest.raises(KeyError):
                snap.get("b")

    def test_in_memory_snapshot_is_frozen(self):
        repo = DataRepository([make_table("a", 1.0)])
        with repo.snapshot() as snap:
            repo.replace(make_table("a", 9.0))
            repo.add(make_table("b", 2.0))
            assert snap.get("a")["v"].to_list() == [1.0, 2.0]
            assert snap.table_names == ["a"]
        assert repo.get("a")["v"].to_list() == [9.0, 10.0]

    def test_released_snapshot_refuses_reads(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        snap = repo.snapshot()
        snap.release()
        assert snap.released
        with pytest.raises(RuntimeError, match="released"):
            snap.get("a")
        snap.release()  # idempotent

    def test_snapshot_fingerprints_and_len(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        repo.add(make_table("b", 2.0))
        with repo.snapshot() as snap:
            prints = snap.fingerprints()
            assert set(prints) == {"a", "b"}
            assert prints["a"] == table_fingerprint(make_table("a", 1.0))
            assert len(snap) == 2
            assert {t.name for t in snap} == {"a", "b"}

    def test_snapshot_profiles_are_generation_keyed(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        snap = repo.snapshot()
        repo.replace(make_table("a", 9.0))
        old_profiles = snap.profiles("a")
        new_profiles = repo.profiles("a")
        assert old_profiles["v"].max_value == 2.0
        assert new_profiles["v"].max_value == 10.0
        snap.release()

    def test_repository_pickle_drops_live_snapshots(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        snap = repo.snapshot()
        clone = pickle.loads(pickle.dumps(repo))
        assert clone.live_snapshots == 0
        assert clone.generation == repo.generation
        assert clone.get("a")["v"].to_list() == [1.0, 2.0]
        snap.release()


# -- snapshot lifetime vs garbage collection ----------------------------------------


def live_tbl_files(tmp_path):
    return sorted(p.name for p in tmp_path.glob("*.tbl"))


class TestGarbageCollection:
    def test_pinned_file_survives_replace_until_release(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        snap = repo.snapshot()
        old_file = repo.header("a")
        repo.replace(make_table("a", 9.0))
        assert len(live_tbl_files(tmp_path)) == 2  # old pinned + new live
        assert snap.get("a")["v"].to_list() == [1.0, 2.0]
        snap.release()
        files = live_tbl_files(tmp_path)
        assert len(files) == 1
        assert files[0].startswith("a-")
        assert old_file.fingerprint != repo.header("a").fingerprint

    def test_last_of_many_snapshots_releases_file(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        snaps = [repo.snapshot() for _ in range(3)]
        repo.replace(make_table("a", 9.0))
        for snap in snaps[:-1]:
            snap.release()
            assert len(live_tbl_files(tmp_path)) == 2  # still pinned by the rest
        snaps[-1].release()
        assert len(live_tbl_files(tmp_path)) == 1

    def test_dropped_snapshot_reference_reclaims_via_weakref(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        snap = repo.snapshot()
        repo.replace(make_table("a", 9.0))
        assert len(live_tbl_files(tmp_path)) == 2
        del snap
        gc.collect()
        assert repo.live_snapshots == 0
        assert len(live_tbl_files(tmp_path)) == 1

    def test_remove_keeps_file_for_live_snapshot(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        with repo.snapshot() as snap:
            repo.remove("a")
            assert len(live_tbl_files(tmp_path)) == 1
            assert snap.get("a")["v"].to_list() == [1.0, 2.0]
        assert live_tbl_files(tmp_path) == []

    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["add", "replace", "remove", "snapshot", "release"]),
                st.integers(min_value=0, max_value=2),  # which table / which snapshot
                st.integers(min_value=0, max_value=99),  # payload variant
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_live_snapshots_never_lose_files(self, tmp_path_factory, ops):
        """Property: every file a live snapshot references exists and reads back;
        once all snapshots are gone, only current-catalog files remain."""
        tmp_path = tmp_path_factory.mktemp("si-gc")
        repo = DataRepository.open(tmp_path)
        names = ["a", "b", "c"]
        snapshots: list[RepositorySnapshot] = []
        for op, which, payload in ops:
            name = names[which]
            if op == "add":
                if name not in repo:
                    repo.add(make_table(name, float(payload)))
            elif op == "replace":
                repo.replace(make_table(name, float(payload)))
            elif op == "remove":
                if name in repo:
                    repo.remove(name)
            elif op == "snapshot":
                if len(snapshots) < 4:
                    snapshots.append(repo.snapshot())
            elif op == "release" and snapshots:
                snapshots.pop(which % len(snapshots)).release()
            # invariant: every live snapshot can still read every table it pinned
            for snap in snapshots:
                for pinned in snap.table_names:
                    assert table_fingerprint(snap.get(pinned)) == snap.header(
                        pinned
                    ).fingerprint
        for snap in snapshots:
            snap.release()
        expected = sorted(entry.path.name for entry in repo._catalog.values())
        assert live_tbl_files(tmp_path) == expected


# -- crash injection ------------------------------------------------------------------


class TestCrashInjection:
    def _repo_with_history(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        repo.add(make_table("b", 2.0))
        return repo

    def test_full_tmp_manifest_debris_is_ignored_and_cleaned(self, tmp_path):
        repo = self._repo_with_history(tmp_path)
        # a writer died between assembling the next manifest in its temp file
        # and the os.replace: a complete generation-3 document as *.tmp debris
        write_manifest(
            tmp_path / "phantom",
            RepositoryManifest(
                generation=3,
                tables={"zzz": ManifestEntry(file="zzz.tbl", fingerprint="00")},
            ),
        )
        (tmp_path / "phantom").rename(tmp_path / f"{MANIFEST_NAME}.k3j2.tmp")
        reopened = DataRepository.open(tmp_path)
        assert reopened.generation == repo.generation  # previous generation wins
        assert sorted(reopened.table_names) == ["a", "b"]
        assert not list(tmp_path.glob("*.tmp"))  # debris cleaned

    def test_truncated_tmp_debris_is_cleaned(self, tmp_path):
        repo = self._repo_with_history(tmp_path)
        (tmp_path / f"{MANIFEST_NAME}.x9.tmp").write_bytes(b"RPROMANF\x01\x00")
        reopened = DataRepository.open(tmp_path)
        assert reopened.generation == repo.generation
        assert not list(tmp_path.glob("*.tmp"))

    def test_staged_table_without_publish_is_reclaimed(self, tmp_path):
        repo = self._repo_with_history(tmp_path)
        # a writer died after staging its content-addressed file but before
        # publishing the manifest: the staged mark identifies it as debris
        orphan = make_table("c", 7.0)
        fingerprint = table_fingerprint(orphan)
        orphan_path = tmp_path / f"c-{fingerprint[:16]}.tbl"
        write_table(orphan, orphan_path, meta={"staged": True})
        reopened = DataRepository.open(tmp_path)
        assert sorted(reopened.table_names) == ["a", "b"]
        assert not orphan_path.exists()

    def test_superseded_file_from_dead_process_is_reclaimed(self, tmp_path):
        repo = self._repo_with_history(tmp_path)
        old_file = next(tmp_path.glob("a-*.tbl"))
        snap = repo.snapshot()  # a pin the "dying" process never releases
        repo.replace(make_table("a", 9.0))
        assert old_file.exists()  # pinned in the old process
        # a fresh process opening the directory reclaims the superseded file:
        # snapshot pins are process-local and do not survive a crash
        reopened = DataRepository.open(tmp_path)
        assert sorted(reopened.table_names) == ["a", "b"]
        assert not old_file.exists()
        snap.release()

    def test_corrupt_manifest_raises_not_misreads(self, tmp_path):
        self._repo_with_history(tmp_path)
        path = tmp_path / MANIFEST_NAME
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ManifestFormatError):
            DataRepository.open(tmp_path)


# -- the stale-sidecar window ----------------------------------------------------------


class TestProfileSidecarStaleness:
    def test_keyed_miss_stores_under_actual_fingerprint(self):
        """The race: a catalog entry is read at generation G, the table body at
        G+1.  The profiles computed then describe G+1's content and must be
        cached under G+1's fingerprint, never the requested stale one."""
        cache = ProfileCache()
        old = make_table("a", 1.0)
        new = make_table("a", 9.0)
        old_fp, new_fp = table_fingerprint(old), table_fingerprint(new)
        # request profiles for old_fp, but the loader already sees new content
        profiles = cache.get_or_profile_keyed("a", old_fp, loader=lambda: new)
        assert profiles["v"].max_value == 10.0
        # the racy miss was stored under the content's ACTUAL fingerprint, so
        # the new fingerprint hits it without loading
        assert cache.get_or_profile_keyed(
            "a", new_fp, loader=lambda: pytest.fail("must not load on a hit")
        )["v"].max_value == 10.0
        # while the stale key MISSES (and reprofiles), instead of serving the
        # new-content profiles it asked the old fingerprint for
        cache.reset_counters()
        served = cache.get_or_profile_keyed("a", old_fp, loader=lambda: old)
        assert served["v"].max_value == 2.0
        assert cache.stats()["misses"] == 1

    def test_profile_of_generation_g_never_served_after_g_plus_one(self, tmp_path):
        """Regression for the satellite: persist profiles at generation G,
        change the table's fingerprint in G+1, and prove no path — reopen,
        sidecar load, live lookup — serves the stale profiles."""
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        assert repo.profiles("a")["v"].max_value == 2.0
        repo.save_profiles()  # generation G sidecar on disk
        repo.replace(make_table("a", 9.0))  # generation G+1 changes the fingerprint

        # in-process: replace() invalidated the entry
        assert repo.profiles("a")["v"].max_value == 10.0

        # cross-process: a fresh open loads the G sidecar but prunes the entry
        reopened = DataRepository.open(tmp_path)
        reopened.profile_cache.reset_counters()
        assert reopened.profiles("a")["v"].max_value == 10.0
        assert reopened.profile_cache.stats()["misses"] == 1

    def test_sidecar_save_is_generation_stamped(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        repo.profiles("a")
        repo.save_profiles()
        cache = ProfileCache()
        cache.load(tmp_path / PROFILE_SIDECAR)
        assert cache.sidecar_generation == 1

    def test_concurrent_save_never_tears_the_sidecar(self, tmp_path):
        import threading

        repo = DataRepository.open(tmp_path)
        repo.add(make_table("a", 1.0))
        repo.profiles("a")
        errors = []

        def saver():
            try:
                for _ in range(10):
                    repo.save_profiles()
                    ProfileCache().load(tmp_path / PROFILE_SIDECAR)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=saver) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


# -- the history validator -------------------------------------------------------------


def _clean_history() -> History:
    """A hand-built anomaly-free history: two writes, readers at each generation."""
    return History(
        seed=0,
        config=WorkloadConfig(),
        initial_generation=1,
        initial_tables={"t0": "aaa"},
        writes=[
            WriteOp(thread=0, index=0, op="replace", table="t0", fingerprint="bbb", generation=2),
            WriteOp(thread=0, index=1, op="remove", table="t0", fingerprint=None, generation=3),
        ],
        observations=[
            SnapshotObservation(
                thread=0, index=0, generation=1, tables={"t0": "aaa"}, verified={"t0": "aaa"}
            ),
            SnapshotObservation(
                thread=0, index=1, generation=2, tables={"t0": "bbb"}, verified={"t0": "bbb"}
            ),
            SnapshotObservation(thread=1, index=0, generation=3, tables={}),
        ],
    )


class TestHistoryValidator:
    def test_clean_history_has_no_anomalies(self):
        assert check_history(_clean_history()) == []

    def _kinds(self, history) -> set[str]:
        return {a.kind for a in check_history(history)}

    def test_flags_torn_snapshot(self):
        history = _clean_history()
        # generation 2 claims generation-1 content: a mixed view
        history.observations[1] = SnapshotObservation(
            thread=0, index=1, generation=2, tables={"t0": "aaa"}
        )
        assert "torn-snapshot" in self._kinds(history)

    def test_flags_unknown_generation_as_torn(self):
        history = _clean_history()
        history.observations.append(
            SnapshotObservation(thread=2, index=0, generation=99, tables={})
        )
        assert "torn-snapshot" in self._kinds(history)

    def test_flags_resurrected_delete(self):
        history = _clean_history()
        # generation 3 removed t0, yet a generation-3 snapshot still shows it
        history.observations[2] = SnapshotObservation(
            thread=1, index=0, generation=3, tables={"t0": "bbb"}
        )
        assert "resurrected-delete" in self._kinds(history)

    def test_flags_phantom_table(self):
        history = _clean_history()
        history.observations[0] = SnapshotObservation(
            thread=0, index=0, generation=1, tables={"t0": "aaa", "ghost": "fff"}
        )
        assert "phantom-table" in self._kinds(history)

    def test_flags_lost_table(self):
        history = _clean_history()
        history.observations[0] = SnapshotObservation(
            thread=0, index=0, generation=1, tables={}
        )
        assert "lost-table" in self._kinds(history)

    def test_flags_dirty_read(self):
        history = _clean_history()
        history.observations[0] = SnapshotObservation(
            thread=0, index=0, generation=1, tables={"t0": "aaa"}, verified={"t0": "zzz"}
        )
        assert "dirty-read" in self._kinds(history)

    def test_flags_gc_reclaimed_live_file(self):
        history = _clean_history()
        history.observations[0] = SnapshotObservation(
            thread=0,
            index=0,
            generation=1,
            tables={"t0": "aaa"},
            errors={"t0": "FileNotFoundError: gone"},
        )
        assert "gc-reclaimed-live-file" in self._kinds(history)

    def test_flags_non_monotonic_generation(self):
        history = _clean_history()
        history.observations.append(
            SnapshotObservation(thread=0, index=2, generation=1, tables={"t0": "aaa"})
        )
        assert "non-monotonic-generation" in self._kinds(history)

    def test_flags_duplicate_generation_and_gap(self):
        history = _clean_history()
        history.writes.append(
            WriteOp(thread=1, index=0, op="replace", table="t0", fingerprint="ccc", generation=2)
        )
        assert "duplicate-generation" in self._kinds(history)
        history = _clean_history()
        history.writes[1] = WriteOp(
            thread=0, index=1, op="remove", table="t0", fingerprint=None, generation=4
        )
        assert "generation-gap" in self._kinds(history)

    def test_history_json_round_trip(self):
        history = _clean_history()
        clone = history_from_json(serialize_history(history))
        assert clone == history
        assert check_history(clone) == []

    def test_assert_history_clean_writes_repro_file(self, tmp_path):
        history = _clean_history()
        history.observations[0] = SnapshotObservation(
            thread=0, index=0, generation=1, tables={}
        )
        with pytest.raises(AssertionError, match="lost-table"):
            assert_history_clean(history, repro_dir=tmp_path / "failures")
        repro = tmp_path / "failures" / "history-seed0.json"
        assert repro.exists()
        replayed = history_from_json(repro.read_text())
        assert {a.kind for a in check_history(replayed)} == {"lost-table"}

    def test_anomaly_renders_readably(self):
        anomaly = Anomaly(kind="torn-snapshot", thread=1, index=2, detail="boom")
        assert "torn-snapshot" in str(anomaly) and "reader 1" in str(anomaly)


# -- negative controls: broken repositories must be caught --------------------------------


class TestNegativeControls:
    def test_torn_publish_is_caught(self, tmp_path):
        """An unlocked publish (generation visible before its catalog) must
        produce validator anomalies even single-threaded."""
        broken = TornPublishRepository.open(tmp_path)
        broken.add(make_table("t0", 1.0))
        broken.add(make_table("t1", 2.0))
        history = History(
            seed=0,
            config=WorkloadConfig(),
            initial_generation=0,
            initial_tables={},
            writes=[
                WriteOp(
                    thread=0,
                    index=i,
                    op="add",
                    table=f"t{i}",
                    fingerprint=table_fingerprint(make_table(f"t{i}", float(i + 1))),
                    generation=i + 1,
                )
                for i in range(2)
            ],
            observations=[],
        )
        with broken.snapshot() as snap:
            history.observations.append(
                SnapshotObservation(
                    thread=0, index=0, generation=snap.generation,
                    tables=dict(snap.fingerprints()),
                )
            )
        kinds = {a.kind for a in check_history(history)}
        assert kinds & {"torn-snapshot", "lost-table"}

    def test_torn_publish_caught_by_workload_driver(self, tmp_path):
        broken = TornPublishRepository.open(tmp_path)
        history = run_workload(
            broken,
            WorkloadConfig(writers=2, readers=2, writer_ops=8, reader_snapshots=10, seed=3),
        )
        assert check_history(history), "the validator must flag a torn publish"

    def test_eager_gc_is_caught(self, tmp_path):
        """A GC that ignores snapshot pins deletes a pinned file; the read
        through the live snapshot fails and the validator flags it."""
        broken = EagerGCRepository.open(tmp_path)
        broken.add(make_table("a", 1.0))
        snap = broken.snapshot()
        claimed = dict(snap.fingerprints())
        broken.replace(make_table("a", 9.0))  # eager GC deletes the pinned file
        observation = SnapshotObservation(
            thread=0, index=0, generation=snap.generation, tables=claimed
        )
        try:
            observation.verified["a"] = table_fingerprint(snap.get("a"))
        except Exception as exc:  # noqa: BLE001 - the failure IS the observation
            observation.errors["a"] = f"{type(exc).__name__}: {exc}"
        history = History(
            seed=0,
            config=WorkloadConfig(),
            initial_generation=1,
            initial_tables=claimed,
            writes=[
                WriteOp(
                    thread=0,
                    index=0,
                    op="replace",
                    table="a",
                    fingerprint=table_fingerprint(make_table("a", 9.0)),
                    generation=2,
                )
            ],
            observations=[observation],
        )
        kinds = {a.kind for a in check_history(history)}
        assert kinds & {"gc-reclaimed-live-file", "dirty-read"}
        snap.release()


# -- randomized multi-threaded histories ---------------------------------------------------


class TestThreadedHistories:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_disk_backed_workload_is_anomaly_free(self, tmp_path, si_repro_dir, seed):
        repo = DataRepository.open(tmp_path)
        history = run_workload(
            repo,
            WorkloadConfig(writers=2, readers=2, writer_ops=8, reader_snapshots=10, seed=seed),
        )
        assert_history_clean(history, repro_dir=si_repro_dir)
        assert repo.live_snapshots == 0

    def test_in_memory_workload_is_anomaly_free(self, si_repro_dir):
        repo = DataRepository()
        history = run_workload(
            repo,
            WorkloadConfig(
                writers=2, readers=2, writer_ops=8, reader_snapshots=10, seed=7,
                verify_reads=False,  # in-memory content cannot be torn by GC
            ),
        )
        assert_history_clean(history, repro_dir=si_repro_dir)

    def test_history_is_replayable_from_repro_json(self, tmp_path):
        repo = DataRepository.open(tmp_path)
        history = run_workload(
            repo, WorkloadConfig(writers=1, readers=1, writer_ops=5, reader_snapshots=5, seed=11)
        )
        clone = history_from_json(serialize_history(history))
        assert check_history(clone) == check_history(history) == []


@pytest.mark.stress
class TestStress:
    """Deep randomized sweep: ≥200 histories in CI (ARDA_STRESS=200).

    ``derandomize=True`` fixes hypothesis' seeds, so every CI run (and every
    local ``-m stress`` run without ``ARDA_STRESS``) executes the identical
    history set; a failing history is serialized for replay.
    """

    @settings(
        max_examples=stress_iterations(default=8),
        deadline=None,
        derandomize=True,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        writers=st.integers(min_value=1, max_value=3),
        readers=st.integers(min_value=1, max_value=3),
        writer_ops=st.integers(min_value=4, max_value=12),
        tables=st.integers(min_value=2, max_value=5),
        disk=st.booleans(),
    )
    def test_randomized_workloads_are_anomaly_free(
        self, tmp_path_factory, si_repro_dir, seed, writers, readers, writer_ops, tables, disk
    ):
        if disk:
            repo = DataRepository.open(tmp_path_factory.mktemp("si-stress"))
        else:
            repo = DataRepository()
        config = WorkloadConfig(
            tables=tables,
            writers=writers,
            readers=readers,
            writer_ops=writer_ops,
            reader_snapshots=10,
            seed=seed,
            verify_reads=disk,
        )
        history = run_workload(repo, config)
        assert_history_clean(history, repro_dir=si_repro_dir)
        assert repo.live_snapshots == 0
