"""Integration tests for join planning, join execution and the full ARDA pipeline."""

import pytest

from repro import ARDA, ARDAConfig
from repro.core.join_execution import execute_join, join_candidates
from repro.core.join_plan import build_join_plan, estimate_feature_count
from repro.datasets import RelationalDatasetBuilder
from repro.datasets.synthetic import SignalTableSpec
from repro.discovery.candidates import JoinCandidate, KeyPair
from repro.discovery.repository import DataRepository
from repro.relational import Table
from repro.relational.schema import DATETIME

FAST_RIFS = {"n_rounds": 2}


@pytest.fixture(scope="module")
def small_dataset():
    """A small regression dataset with 2 signal tables and 6 noise tables."""
    builder = RelationalDatasetBuilder(
        "unit", n_rows=220, n_entities=60, n_base_features=3, seed=7, noise_level=0.25
    )
    builder.add_signal_table(SignalTableSpec("alpha", n_signal_columns=2, weight=1.5))
    builder.add_signal_table(SignalTableSpec("beta", n_signal_columns=2, weight=1.0))
    builder.add_noise_tables(6, prefix="junk", n_columns=4)
    return builder.build()


class TestJoinPlan:
    def test_table_plan_one_batch_per_candidate(self, small_dataset):
        plan = build_join_plan(small_dataset.candidates, small_dataset.repository, "table")
        assert len(plan) == len(small_dataset.candidates)
        assert all(len(batch) == 1 for batch in plan)

    def test_full_plan_single_batch(self, small_dataset):
        plan = build_join_plan(small_dataset.candidates, small_dataset.repository, "full")
        assert len(plan) == 1
        assert len(plan[0]) == len(small_dataset.candidates)

    def test_budget_plan_respects_budget(self, small_dataset):
        plan = build_join_plan(
            small_dataset.candidates, small_dataset.repository, "budget", budget=10
        )
        assert len(plan) > 1
        for batch in plan[:-1]:
            assert batch.estimated_features <= 10 or len(batch) == 1

    def test_budget_plan_orders_by_score(self, small_dataset):
        plan = build_join_plan(
            small_dataset.candidates, small_dataset.repository, "budget", budget=1000
        )
        scores = [c.score for batch in plan for c in batch.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_strategy(self, small_dataset):
        with pytest.raises(ValueError):
            build_join_plan(small_dataset.candidates, small_dataset.repository, "bogus")

    def test_estimate_feature_count_excludes_keys(self, small_dataset):
        candidate = small_dataset.candidates[0]
        table = small_dataset.repository.get(candidate.foreign_table)
        assert estimate_feature_count(candidate, small_dataset.repository) == table.num_columns - 1


class TestJoinExecution:
    def test_execute_hard_join_prefixes_columns(self, base_table, foreign_table):
        repo = DataRepository([foreign_table])
        candidate = JoinCandidate("foreign", [KeyPair("entity_id", "entity_id")])
        joined = execute_join(base_table, repo.get("foreign"), candidate)
        assert "foreign.value" in joined
        assert joined.num_rows == base_table.num_rows

    def test_execute_soft_join_time_key(self):
        base = Table.from_dict(
            {"ts": [0.0, 86400.0, 172800.0], "target": [1.0, 2.0, 3.0]},
            types={"ts": DATETIME}, name="b",
        )
        weather = Table.from_dict(
            {"ts": [3600.0 * i for i in range(48)], "temp": [float(i) for i in range(48)]},
            types={"ts": DATETIME}, name="weather",
        )
        candidate = JoinCandidate("weather", [KeyPair("ts", "ts", soft=True)])
        joined = execute_join(base, weather, candidate, soft_strategy="nearest")
        assert "weather.temp" in joined
        # day 0 aggregates hours 0..23 -> mean 11.5
        assert joined["weather.temp"].values[0] == pytest.approx(11.5)

    def test_join_candidates_reports_contributed_columns(self, small_dataset):
        batch = small_dataset.candidates[:2]
        joined, contributed = join_candidates(
            small_dataset.base_table, small_dataset.repository, batch
        )
        assert set(contributed) == {c.foreign_table for c in batch}
        for columns in contributed.values():
            for name in columns:
                assert name in joined

    def test_soft_strategy_validation(self, base_table, foreign_table):
        candidate = JoinCandidate("foreign", [KeyPair("entity_id", "entity_id", soft=True)])
        with pytest.raises(ValueError):
            execute_join(base_table, foreign_table, candidate, soft_strategy="bogus")


class TestARDAConfig:
    def test_invalid_join_plan(self):
        with pytest.raises(ValueError):
            ARDAConfig(join_plan="everything")

    def test_invalid_soft_join(self):
        with pytest.raises(ValueError):
            ARDAConfig(soft_join="fuzzy")

    def test_invalid_coreset(self):
        with pytest.raises(ValueError):
            ARDAConfig(coreset_strategy="reservoir")

    def test_invalid_estimator(self):
        with pytest.raises(ValueError):
            ARDAConfig(estimator="xgboost")


class TestARDAPipeline:
    @pytest.fixture(scope="class")
    def report(self, small_dataset):
        config = ARDAConfig(selector="RIFS", selector_options=FAST_RIFS, random_state=0)
        return ARDA(config).augment(small_dataset)

    def test_augmentation_improves_score(self, report):
        assert report.augmented_score > report.base_score

    def test_signal_tables_are_kept(self, report):
        assert {"alpha", "beta"} <= set(report.kept_tables)

    def test_augmented_table_contains_all_base_columns(self, report, small_dataset):
        for name in small_dataset.base_table.column_names:
            assert name in report.augmented_table

    def test_augmented_table_preserves_row_count(self, report, small_dataset):
        assert report.augmented_table.num_rows == small_dataset.base_table.num_rows

    def test_report_bookkeeping(self, report, small_dataset):
        assert report.tables_considered == len(small_dataset.candidates)
        assert report.total_time > 0
        assert len(report.batches) >= 1
        assert report.summary()["dataset"] == "unit"

    def test_relative_improvement_sign(self, report):
        assert report.relative_improvement > 0

    def test_missing_target_raises(self, small_dataset):
        arda = ARDA(ARDAConfig(selector_options=FAST_RIFS))
        with pytest.raises(KeyError):
            arda.augment_tables(
                small_dataset.base_table.drop("target"),
                small_dataset.repository,
                target="target",
            )

    def test_runs_without_precomputed_candidates(self, small_dataset):
        """ARDA should fall back to its own join discovery."""
        config = ARDAConfig(
            selector="random forest", coreset_size=150, random_state=0
        )
        report = ARDA(config).augment_tables(
            small_dataset.base_table,
            small_dataset.repository,
            target="target",
            task="regression",
        )
        assert report.tables_considered > 0

    def test_tuple_ratio_prefilter_reduces_tables(self, small_dataset):
        config = ARDAConfig(
            selector="random forest", tuple_ratio_tau=0.5, random_state=0
        )
        report = ARDA(config).augment(small_dataset)
        assert report.tables_filtered_out > 0

    def test_table_join_plan_runs(self, small_dataset):
        config = ARDAConfig(
            selector="random forest", join_plan="table", coreset_size=120, random_state=0
        )
        report = ARDA(config).augment(small_dataset)
        assert report.augmented_score >= report.base_score - 0.2

    def test_classification_pipeline(self):
        builder = RelationalDatasetBuilder(
            "clf_unit", task="classification", n_rows=220, n_entities=60,
            n_base_features=3, seed=11, base_signal_weight=0.4,
        )
        builder.add_signal_table(SignalTableSpec("signal", n_signal_columns=3, weight=2.0))
        builder.add_noise_tables(4, prefix="junk", n_columns=4)
        dataset = builder.build()
        config = ARDAConfig(selector="RIFS", selector_options=FAST_RIFS, random_state=1)
        report = ARDA(config).augment(dataset)
        assert report.task == "classification"
        assert report.augmented_score >= report.base_score
        assert "signal" in report.kept_tables


class TestEvaluationHarness:
    def test_evaluate_augmentation_record(self, small_dataset):
        from repro.evaluation import evaluate_augmentation

        record = evaluate_augmentation(
            small_dataset, ARDAConfig(selector="random forest", random_state=0)
        )
        assert record.method.startswith("ARDA")
        assert record.extra["improvement"] == pytest.approx(
            record.score - record.extra["base_score"]
        )

    def test_materialize_full_join_dims(self, small_dataset):
        from repro.evaluation import materialize_full_join

        X, y, names, sources = materialize_full_join(small_dataset)
        assert X.shape[0] == small_dataset.base_table.num_rows
        assert len(names) == X.shape[1] == len(sources)

    def test_evaluate_selector_on_dataset(self, small_dataset):
        from repro.evaluation import evaluate_selector_on_dataset

        record = evaluate_selector_on_dataset("f-test", small_dataset)
        assert record.n_selected >= 1
        assert record.error is not None

    def test_format_table(self):
        from repro.evaluation import format_table

        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": None}])
        assert "a" in text and "22" in text

    def test_reporting_rows(self, small_dataset):
        from repro.evaluation import evaluate_selector_on_dataset, records_to_rows

        rows = records_to_rows([evaluate_selector_on_dataset("f-test", small_dataset)])
        assert rows[0]["method"] == "f-test"
