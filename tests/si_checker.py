"""Black-box snapshot-isolation checker for :class:`DataRepository`.

The method follows "Efficient Black-box Checking of Snapshot Isolation in
Databases": drive the system with a concurrent workload, record only what the
API lets clients observe (published generations, snapshot contents, read
results), then validate the recorded *history* against the snapshot-isolation
contract — without ever peeking at the repository's internals.

Three pieces:

* :func:`run_workload` — a multi-threaded driver.  N writer threads perform
  randomized ``add`` / ``replace`` / ``remove`` mutations (recording the
  generation each one published); M reader threads repeatedly take snapshots,
  record every ``(generation, table name, fingerprint)`` the snapshot claims,
  optionally verify each claim by actually loading the table and
  re-fingerprinting it, and randomly hold a few snapshots open across
  subsequent writes to stress the garbage collector.
* :func:`check_history` — the validator.  Because every mutation records the
  generation it published, the committed state at *every* generation can be
  replayed deterministically; each snapshot observation is then checked
  against the replayed state of its claimed generation.  Anomalies flagged:

  - ``torn-snapshot`` — a snapshot whose table/fingerprint map matches no
    single committed generation (it mixes two generations);
  - ``phantom-table`` / ``lost-table`` / ``resurrected-delete`` — a snapshot
    showing a table its generation does not have (worst case: one a previous
    generation deleted), or missing one it does;
  - ``dirty-read`` — a loaded table's actual content differs from the
    fingerprint its snapshot claimed;
  - ``gc-reclaimed-live-file`` — reading through a *live* snapshot failed,
    i.e. a file it pinned was deleted under it;
  - ``non-monotonic-generation`` — one reader's successive snapshots went
    backwards in generation;
  - ``duplicate-generation`` / ``generation-gap`` — two writers published the
    same generation, or a generation number was skipped.

* :func:`serialize_history` / :func:`history_from_json` — JSON round-trip so
  a failing randomized history can be written to a repro file and replayed.

Deliberately broken repository variants (:class:`TornPublishRepository`,
:class:`EagerGCRepository`) are provided so the test suite can prove the
validator actually catches the anomalies it claims to.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.discovery.repository import DataRepository
from repro.relational.persist import table_fingerprint
from repro.relational.table import Table


def stress_iterations(default: int = 8) -> int:
    """How many randomized histories stress tests should validate.

    Tier-1 keeps the default small so the suite stays fast; CI's concurrency
    job (and anyone hunting a race locally) raises it with ``ARDA_STRESS``.
    (Defined here rather than in ``conftest.py`` because ``conftest`` is not
    an importable module name across test roots.)
    """
    import os

    value = os.environ.get("ARDA_STRESS", "").strip()
    if not value:
        return default
    try:
        return max(1, int(value))
    except ValueError:
        return default


# -- workload definition ------------------------------------------------------


@dataclass
class WorkloadConfig:
    """Shape of one randomized concurrent workload."""

    tables: int = 4  # distinct table names writers mutate
    writers: int = 2  # concurrent writer threads
    readers: int = 2  # concurrent snapshot-taking threads
    writer_ops: int = 10  # mutations per writer
    reader_snapshots: int = 15  # snapshots per reader
    seed: int = 0
    verify_reads: bool = True  # load + re-fingerprint every claimed table
    payload_rows: int = 4  # rows per generated table version


@dataclass
class WriteOp:
    """One committed mutation, as the writer thread observed it."""

    thread: int
    index: int
    op: str  # "add" | "replace" | "remove"
    table: str
    fingerprint: str | None  # None for remove
    generation: int


@dataclass
class SnapshotObservation:
    """Everything one snapshot exposed to its reader."""

    thread: int
    index: int
    generation: int
    tables: dict[str, str]  # name -> claimed fingerprint
    verified: dict[str, str] = field(default_factory=dict)  # name -> loaded fingerprint
    errors: dict[str, str] = field(default_factory=dict)  # name -> read failure


@dataclass
class History:
    """One complete recorded run: the validator's only input."""

    seed: int
    config: WorkloadConfig
    initial_generation: int
    initial_tables: dict[str, str]  # committed state when the workload started
    writes: list[WriteOp]
    observations: list[SnapshotObservation]


@dataclass
class Anomaly:
    """One snapshot-isolation violation found by :func:`check_history`."""

    kind: str
    thread: int
    index: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] reader {self.thread} obs {self.index}: {self.detail}"


# -- the driver ----------------------------------------------------------------


def _make_table(name: str, rng: np.random.Generator, rows: int) -> Table:
    """A small table whose content (and hence fingerprint) is random."""
    return Table.from_dict(
        {
            "k": [float(i) for i in range(rows)],
            "v": [float(x) for x in rng.integers(0, 1_000_000, size=rows)],
        },
        name=name,
    )


def run_workload(repository: DataRepository, config: WorkloadConfig) -> History:
    """Drive ``repository`` with a randomized concurrent workload.

    The repository may be disk-backed or in-memory; it may already contain
    tables (they become part of the recorded initial state).  Writer errors
    that the API contract allows under concurrency (``add`` losing a name
    race, ``remove`` of a just-removed table) are treated as no-ops; anything
    else propagates.
    """
    rng = np.random.default_rng(config.seed)
    names = [f"t{i}" for i in range(config.tables)]
    # seed half the tables so removes/replaces have something to hit from op 1
    for name in names[: max(1, config.tables // 2)]:
        if name not in repository:
            repository.add(_make_table(name, rng, config.payload_rows))

    initial_generation = repository.generation
    with repository.snapshot() as seed_snapshot:
        initial_tables = dict(seed_snapshot.fingerprints())

    writes: list[WriteOp] = []
    observations: list[SnapshotObservation] = []
    record_lock = threading.Lock()
    failures: list[BaseException] = []
    barrier = threading.Barrier(config.writers + config.readers)

    def writer(thread_id: int) -> None:
        wrng = np.random.default_rng([config.seed, 1000 + thread_id])
        barrier.wait()
        for index in range(config.writer_ops):
            name = names[int(wrng.integers(0, len(names)))]
            op = ("add", "replace", "remove")[int(wrng.integers(0, 3))]
            try:
                if op == "remove":
                    generation = repository.remove(name)
                    fingerprint = None
                else:
                    table = _make_table(name, wrng, config.payload_rows)
                    fingerprint = table_fingerprint(table)
                    if op == "add":
                        generation = repository.add(table)
                    else:
                        generation = repository.replace(table)
            except (ValueError, KeyError):
                continue  # lost a name race / removed a missing table: allowed
            with record_lock:
                writes.append(
                    WriteOp(
                        thread=thread_id,
                        index=index,
                        op=op,
                        table=name,
                        fingerprint=fingerprint,
                        generation=generation,
                    )
                )

    def reader(thread_id: int) -> None:
        rrng = np.random.default_rng([config.seed, 2000 + thread_id])
        held: list = []  # snapshots deliberately kept open to stress GC
        barrier.wait()
        try:
            for index in range(config.reader_snapshots):
                snapshot = repository.snapshot()
                claimed = dict(snapshot.fingerprints())
                obs = SnapshotObservation(
                    thread=thread_id,
                    index=index,
                    generation=snapshot.generation,
                    tables=claimed,
                )
                # give writers a chance to publish between claim and verify:
                # under SI the verify must still see the pinned content
                time.sleep(float(rrng.uniform(0.0, 0.002)))
                if config.verify_reads:
                    for name in claimed:
                        try:
                            obs.verified[name] = table_fingerprint(snapshot.get(name))
                        except Exception as exc:  # noqa: BLE001 - recorded, judged later
                            obs.errors[name] = f"{type(exc).__name__}: {exc}"
                with record_lock:
                    observations.append(obs)
                if len(held) < 2 and rrng.uniform() < 0.3:
                    held.append(snapshot)  # pin it across future writes
                else:
                    snapshot.release()
        finally:
            for snapshot in held:
                snapshot.release()

    threads = []
    for w in range(config.writers):
        threads.append(threading.Thread(target=_guard(writer, failures), args=(w,)))
    for r in range(config.readers):
        threads.append(threading.Thread(target=_guard(reader, failures), args=(r,)))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]

    return History(
        seed=config.seed,
        config=config,
        initial_generation=initial_generation,
        initial_tables=initial_tables,
        writes=sorted(writes, key=lambda op: op.generation),
        observations=observations,
    )


def _guard(fn, failures: list[BaseException]):
    """Wrap a thread body so unexpected exceptions surface in the main thread."""

    def runner(*args):
        try:
            fn(*args)
        except BaseException as exc:  # noqa: BLE001 - re-raised by run_workload
            failures.append(exc)

    return runner


# -- the validator ---------------------------------------------------------------


def replay_states(history: History) -> dict[int, dict[str, str]]:
    """Committed ``{name → fingerprint}`` state at every generation.

    Generation ``initial_generation`` is the recorded initial state; each
    recorded write transforms the previous generation's state into its own.
    """
    states = {history.initial_generation: dict(history.initial_tables)}
    state = dict(history.initial_tables)
    for op in sorted(history.writes, key=lambda op: op.generation):
        state = dict(state)
        if op.op == "remove":
            state.pop(op.table, None)
        else:
            state[op.table] = op.fingerprint
        states[op.generation] = state
    return states


def check_history(history: History) -> list[Anomaly]:
    """Validate a recorded history against the snapshot-isolation contract."""
    anomalies: list[Anomaly] = []

    # writer-side invariants: generations are unique and dense
    generations = [op.generation for op in history.writes]
    seen: dict[int, WriteOp] = {}
    for op in sorted(history.writes, key=lambda op: op.generation):
        if op.generation in seen:
            other = seen[op.generation]
            anomalies.append(
                Anomaly(
                    kind="duplicate-generation",
                    thread=op.thread,
                    index=op.index,
                    detail=(
                        f"writers {other.thread} and {op.thread} both published "
                        f"generation {op.generation}"
                    ),
                )
            )
        seen[op.generation] = op
    if generations:
        expected = set(
            range(history.initial_generation + 1, max(generations) + 1)
        )
        for missing in sorted(expected - set(generations)):
            anomalies.append(
                Anomaly(
                    kind="generation-gap",
                    thread=-1,
                    index=-1,
                    detail=f"no recorded write published generation {missing}",
                )
            )

    states = replay_states(history)

    # reader-side invariants, one observation at a time
    last_generation: dict[int, int] = {}
    for obs in history.observations:
        previous = last_generation.get(obs.thread)
        if previous is not None and obs.generation < previous:
            anomalies.append(
                Anomaly(
                    kind="non-monotonic-generation",
                    thread=obs.thread,
                    index=obs.index,
                    detail=(
                        f"snapshot generation went backwards: "
                        f"{previous} then {obs.generation}"
                    ),
                )
            )
        last_generation[obs.thread] = obs.generation

        state = states.get(obs.generation)
        if state is None:
            anomalies.append(
                Anomaly(
                    kind="torn-snapshot",
                    thread=obs.thread,
                    index=obs.index,
                    detail=(
                        f"snapshot claims generation {obs.generation}, which no "
                        f"recorded write published"
                    ),
                )
            )
            continue

        for name, fingerprint in obs.tables.items():
            if name not in state:
                deleted_before = any(
                    op.op == "remove"
                    and op.table == name
                    and op.generation <= obs.generation
                    for op in history.writes
                )
                kind = "resurrected-delete" if deleted_before else "phantom-table"
                source = _fingerprint_source(history, states, name, fingerprint)
                anomalies.append(
                    Anomaly(
                        kind=kind,
                        thread=obs.thread,
                        index=obs.index,
                        detail=(
                            f"table {name!r} shown by a generation-{obs.generation} "
                            f"snapshot, but that generation does not have it{source}"
                        ),
                    )
                )
            elif state[name] != fingerprint:
                source = _fingerprint_source(history, states, name, fingerprint)
                anomalies.append(
                    Anomaly(
                        kind="torn-snapshot",
                        thread=obs.thread,
                        index=obs.index,
                        detail=(
                            f"table {name!r} shows fingerprint {fingerprint[:12]}… "
                            f"but generation {obs.generation} committed "
                            f"{state[name][:12]}…{source}"
                        ),
                    )
                )
        for name in state:
            if name not in obs.tables:
                anomalies.append(
                    Anomaly(
                        kind="lost-table",
                        thread=obs.thread,
                        index=obs.index,
                        detail=(
                            f"generation {obs.generation} has table {name!r} "
                            f"but the snapshot does not show it"
                        ),
                    )
                )

        for name, actual in obs.verified.items():
            claimed = obs.tables.get(name)
            if claimed is not None and actual != claimed:
                anomalies.append(
                    Anomaly(
                        kind="dirty-read",
                        thread=obs.thread,
                        index=obs.index,
                        detail=(
                            f"loading {name!r} through the snapshot returned "
                            f"content {actual[:12]}…, not the claimed "
                            f"{claimed[:12]}…"
                        ),
                    )
                )
        for name, error in obs.errors.items():
            anomalies.append(
                Anomaly(
                    kind="gc-reclaimed-live-file",
                    thread=obs.thread,
                    index=obs.index,
                    detail=(
                        f"reading {name!r} through a live snapshot of generation "
                        f"{obs.generation} failed: {error}"
                    ),
                )
            )

    return anomalies


def _fingerprint_source(
    history: History, states: dict[int, dict[str, str]], name: str, fingerprint: str
) -> str:
    """Which generation(s) actually committed this (name, fingerprint) pair."""
    if fingerprint is None:
        return ""
    sources = [
        generation
        for generation, state in sorted(states.items())
        if state.get(name) == fingerprint
    ]
    if not sources:
        return " (content from no committed generation)"
    return f" (content committed at generation {sources[0]})"


# -- repro-file round-trip --------------------------------------------------------


def serialize_history(history: History) -> str:
    """JSON form of a history, for repro files and artifacts."""
    return json.dumps(asdict(history), indent=2, sort_keys=True)


def history_from_json(text: str) -> History:
    """Inverse of :func:`serialize_history`."""
    doc = json.loads(text)
    return History(
        seed=doc["seed"],
        config=WorkloadConfig(**doc["config"]),
        initial_generation=doc["initial_generation"],
        initial_tables=dict(doc["initial_tables"]),
        writes=[WriteOp(**op) for op in doc["writes"]],
        observations=[SnapshotObservation(**obs) for obs in doc["observations"]],
    )


def assert_history_clean(history: History, repro_dir: Path | None = None) -> None:
    """Raise ``AssertionError`` on any anomaly, serializing a repro file first."""
    anomalies = check_history(history)
    if not anomalies:
        return
    location = ""
    if repro_dir is not None:
        repro_dir.mkdir(parents=True, exist_ok=True)
        repro_path = repro_dir / f"history-seed{history.seed}.json"
        repro_path.write_text(serialize_history(history))
        location = f" (history serialized to {repro_path})"
    summary = "\n".join(str(a) for a in anomalies[:20])
    raise AssertionError(
        f"{len(anomalies)} snapshot-isolation anomal"
        f"{'y' if len(anomalies) == 1 else 'ies'} in seed-{history.seed} "
        f"history{location}:\n{summary}"
    )


# -- deliberately broken variants (negative controls) ------------------------------


class TornPublishRepository(DataRepository):
    """A repository whose catalog swap lags its manifest publication.

    Models an unlocked publish: the generation number becomes visible one
    mutation *before* the catalog contents that belong to it — exactly the
    window a writer without ``_write_lock`` atomicity would expose.  Every
    snapshot taken between two mutations therefore pairs generation N with
    the catalog of generation N-1, which the validator must flag.
    """

    def __init__(self, *args, **kwargs):
        self._deferred_catalog: dict | None = None
        super().__init__(*args, **kwargs)

    def _publish(self, new_catalog):
        generation = self._generation + 1
        if self._manifest_path is not None:
            # keep the on-disk manifest honest; the tear is in-process
            from repro.relational.persist import (
                ManifestEntry,
                RepositoryManifest,
                write_manifest,
            )

            write_manifest(
                self._manifest_path,
                RepositoryManifest(
                    generation=generation,
                    tables={
                        name: ManifestEntry(
                            file=entry.path.name,
                            fingerprint=entry.header.fingerprint,
                            num_rows=entry.header.num_rows,
                        )
                        for name, entry in new_catalog.items()
                    },
                ),
            )
        if self._deferred_catalog is not None:
            self._catalog = self._deferred_catalog  # one mutation late
        self._deferred_catalog = new_catalog
        self._generation = generation
        return generation


class EagerGCRepository(DataRepository):
    """A repository whose garbage collector ignores live snapshot pins.

    Models the bug the reference-counted GC exists to prevent: a superseded
    table file is deleted the moment it leaves the current catalog, even
    though live snapshots still reference it.  Reads through those snapshots
    fail (or mmap-protected ones survive by OS courtesy, which the checker
    does not rely on), surfacing as ``gc-reclaimed-live-file`` anomalies.
    """

    def _collect_garbage(self) -> int:
        referenced = {entry.path for entry in self._catalog.values()}
        reclaimed = 0
        for path in list(self._pending_gc):
            if path in referenced:
                continue
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue
            self._pending_gc.discard(path)
            reclaimed += 1
        return reclaimed
