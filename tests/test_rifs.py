"""Tests for RIFS: injection, aggregation, noise-beat fractions and the threshold wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.selection import (
    CLASSIFICATION,
    REGRESSION,
    RIFS,
    NoiseInjectionRankingSelector,
    RandomForestRanker,
    aggregate_rankings,
    fraction_ahead_of_all_noise,
    inject_moment_matched_noise,
    inject_noise_features,
    inject_standard_noise,
)
from repro.selection.injection import feature_moments
from repro.selection.tuple_ratio import TupleRatioFilter, foreign_key_domain_size, tuple_ratio
from repro.relational import Table


class TestInjection:
    def test_standard_noise_shape(self, rng):
        noise = inject_standard_noise(50, 7, rng)
        assert noise.shape == (50, 7)

    def test_standard_noise_zero_features(self, rng):
        assert inject_standard_noise(10, 0, rng).shape == (10, 0)

    def test_moment_matching_mean(self, rng):
        X = rng.normal(loc=3.0, size=(40, 200))
        mu, sigma = feature_moments(X)
        assert mu.shape == (40,)
        assert sigma.shape == (40, 40)
        assert np.allclose(mu, X.mean(axis=1))

    def test_moment_matched_noise_resembles_input(self, rng):
        X = rng.normal(loc=5.0, scale=0.1, size=(30, 100))
        noise = inject_moment_matched_noise(X, 50, rng)
        assert noise.shape == (30, 50)
        assert abs(noise.mean() - 5.0) < 0.5

    def test_inject_noise_features_mask(self, regression_matrix, rng):
        X, _y = regression_matrix
        augmented, mask = inject_noise_features(X, fraction=0.25, rng=rng)
        assert augmented.shape[0] == X.shape[0]
        assert mask.sum() == augmented.shape[1] - X.shape[1]
        assert mask.sum() >= int(np.ceil(0.25 * X.shape[1]))
        assert np.array_equal(augmented[:, : X.shape[1]], X)

    def test_unknown_strategy_rejected(self, regression_matrix, rng):
        X, _y = regression_matrix
        with pytest.raises(ValueError):
            inject_noise_features(X, strategy="bogus", rng=rng)


class TestAggregateRanking:
    def test_weighted_average(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([3.0, 2.0, 1.0])
        combined = aggregate_rankings([a, b], weights=[1.0, 0.0])
        assert np.argmax(combined) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            aggregate_rankings([np.ones(2), np.ones(3)])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            aggregate_rankings([np.ones(2)], weights=[0.0])

    def test_fraction_ahead_of_all_noise(self):
        scores = np.array([0.9, 0.2, 0.7, 0.5])  # last feature is noise
        mask = np.array([False, False, False, True])
        fractions = fraction_ahead_of_all_noise(scores, mask)
        assert fractions.tolist() == [1.0, 0.0, 1.0]

    def test_no_noise_features_means_everything_wins(self):
        fractions = fraction_ahead_of_all_noise(np.array([0.3, 0.4]), np.array([False, False]))
        assert fractions.tolist() == [1.0, 1.0]


class TestRIFS:
    def test_recovers_planted_signal_regression(self, regression_matrix):
        X, y = regression_matrix
        result = RIFS(n_rounds=3, random_state=0).select(X, y, task=REGRESSION)
        assert set(result.selected) >= {0, 1, 2}
        # noise columns should mostly be rejected
        assert len(result.selected) <= 10

    def test_noise_beat_fractions_shape_and_range(self, regression_matrix):
        X, y = regression_matrix
        fractions = RIFS(n_rounds=2).noise_beat_fractions(X, y, REGRESSION)
        assert fractions.shape == (X.shape[1],)
        assert fractions.min() >= 0.0 and fractions.max() <= 1.0

    def test_signal_features_beat_noise_more_often(self, regression_matrix):
        X, y = regression_matrix
        fractions = RIFS(n_rounds=3).noise_beat_fractions(X, y, REGRESSION)
        assert fractions[:4].mean() > fractions[4:].mean()

    def test_classification_task(self, classification_matrix):
        X, y = classification_matrix
        result = RIFS(n_rounds=2, random_state=1).select(X, y, task=CLASSIFICATION)
        assert len(set(result.selected) & {0, 1, 2}) >= 2

    def test_diagnostics_populated(self, regression_matrix):
        X, y = regression_matrix
        selector = RIFS(n_rounds=2)
        selector.select(X, y, task=REGRESSION)
        diagnostics = selector.diagnostics_
        assert diagnostics is not None
        assert diagnostics.rounds == 2
        assert len(diagnostics.thresholds_tried) >= 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RIFS(nu=2.0)
        with pytest.raises(ValueError):
            RIFS(n_rounds=0)

    def test_standard_injection_strategy(self, regression_matrix):
        X, y = regression_matrix
        result = RIFS(n_rounds=2, injection_strategy="standard").select(X, y, task=REGRESSION)
        assert len(result.selected) >= 1

    def test_never_returns_empty_selection(self, rng):
        # pure-noise input: nothing beats the injected features, fallback kicks in
        X = rng.normal(size=(80, 10))
        y = rng.normal(size=80)
        result = RIFS(n_rounds=2).select(X, y, task=REGRESSION)
        assert len(result.selected) >= 1

    def test_result_scores_are_fractions(self, regression_matrix):
        X, y = regression_matrix
        result = RIFS(n_rounds=2).select(X, y, task=REGRESSION)
        assert result.scores is not None
        assert result.scores.min() >= 0.0 and result.scores.max() <= 1.0

    def test_single_ranker_variant(self, regression_matrix):
        X, y = regression_matrix
        selector = NoiseInjectionRankingSelector(RandomForestRanker(n_estimators=10), n_rounds=2)
        result = selector.select(X, y, task=REGRESSION)
        assert result.method == "random forest+noise"
        assert len(set(result.selected) & {0, 1, 2, 3}) >= 2


class TestTupleRatio:
    def test_domain_size_counts_distinct_keys(self):
        table = Table.from_dict({"k": [1.0, 1.0, 2.0, None], "v": [1.0, 2.0, 3.0, 4.0]}, name="f")
        assert foreign_key_domain_size(table, ["k"]) == 2

    def test_tuple_ratio_value(self):
        table = Table.from_dict({"k": [1.0, 2.0, 3.0, 4.0]}, name="f")
        assert tuple_ratio(100, table, ["k"]) == pytest.approx(25.0)

    def test_empty_domain_gives_infinite_ratio(self):
        table = Table.from_dict({"k": [None, None]}, name="f")
        assert tuple_ratio(10, table, ["k"]) == float("inf")

    def test_filter_keeps_low_ratio_tables(self):
        wide_domain = Table.from_dict({"k": [float(i) for i in range(50)]}, name="wide")
        narrow_domain = Table.from_dict({"k": [1.0, 2.0]}, name="narrow")
        tr_filter = TupleRatioFilter(tau=10.0)
        keep, decisions = tr_filter.filter_candidates(
            100, [(wide_domain, ["k"]), (narrow_domain, ["k"])]
        )
        assert keep == [0]
        assert decisions[1].tuple_ratio == pytest.approx(50.0)
        assert not decisions[1].keep

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            TupleRatioFilter(tau=0.0)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=5, max_value=30), st.integers(min_value=2, max_value=8))
def test_injection_always_appends_requested_fraction(n_rows, n_features):
    """Property: the noise mask marks exactly the appended columns."""
    rng = np.random.default_rng(n_rows * 7 + n_features)
    X = rng.normal(size=(n_rows, n_features))
    augmented, mask = inject_noise_features(X, fraction=0.5, rng=rng)
    assert augmented.shape[1] == len(mask)
    assert (~mask[: n_features]).all()
    assert mask[n_features:].all()
