"""Tests for the histogram-binned training engine.

Pins the engine's three load-bearing guarantees:

* histogram trees are **bit-identical** to the exact-split reference on
  features whose distinct values fit in the bin budget (integer features),
* binning a table through the categorical-codes fast path produces exactly
  the bins of quantising the float design matrix,
* parallel forests and parallel RIFS rounds are **byte-identical** to their
  serial runs across all three executors.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arda import ARDA
from repro.core.config import ARDAConfig
from repro.ml.binning import BinnedMatrix, check_max_bins, resolve_tree_method
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import train_test_split
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.relational.column import Column
from repro.relational.encoding import (
    encode_features,
    encode_features_binned,
    to_binned_matrix,
    to_design_matrix,
)
from repro.relational.table import Table
from repro.selection.base import CLASSIFICATION, REGRESSION, holdout_score, infer_task
from repro.selection.rifs import RIFS

EXECUTORS = [("serial", None), ("thread", 2), ("process", 2)]


# -- BinnedMatrix ---------------------------------------------------------------


class TestBinnedMatrix:
    def test_bin_budget_respected(self, rng):
        X = rng.normal(size=(2000, 3))
        binned = BinnedMatrix.from_matrix(X, max_bins=16)
        assert binned.codes.dtype == np.uint8
        assert binned.n_bins.max() <= 16
        assert binned.shape == (2000, 3)

    def test_low_cardinality_bins_are_singletons(self):
        X = np.array([[0.0], [2.0], [2.0], [5.0]])
        binned = BinnedMatrix.from_matrix(X)
        assert binned.n_bins[0] == 3
        assert binned.bin_min[0].tolist() == [0.0, 2.0, 5.0]
        assert binned.bin_max[0].tolist() == [0.0, 2.0, 5.0]
        assert binned.codes[:, 0].tolist() == [0, 1, 1, 2]

    def test_quantile_bins_balanced(self, rng):
        X = rng.normal(size=(10_000, 1))
        binned = BinnedMatrix.from_matrix(X, max_bins=8)
        counts = np.bincount(binned.codes[:, 0], minlength=int(binned.n_bins[0]))
        assert counts.min() > 500  # roughly equal occupancy

    def test_hstack_and_take_rows(self, rng):
        a = BinnedMatrix.from_matrix(rng.normal(size=(50, 2)))
        b = BinnedMatrix.from_matrix(rng.integers(0, 3, size=(50, 1)).astype(float))
        both = a.hstack(b)
        assert both.shape == (50, 3)
        assert np.array_equal(both.codes[:, :2], a.codes)
        sub = both.take_rows(np.arange(0, 50, 5))
        assert sub.shape == (10, 3)
        assert np.array_equal(sub.codes, both.codes[::5])
        with pytest.raises(ValueError):
            a.hstack(BinnedMatrix.from_matrix(rng.normal(size=(49, 1))))

    def test_non_finite_values_map_like_the_encoder(self):
        X = np.array([[np.nan], [np.inf], [1.0], [-1.0]])
        binned = BinnedMatrix.from_matrix(X)
        cleaned = np.nan_to_num(X, nan=0.0, posinf=0.0, neginf=0.0)
        assert np.array_equal(binned.codes, BinnedMatrix.from_matrix(cleaned).codes)

    def test_zero_feature_matrix_grows_constant_leaf(self):
        # regression: the hist kernel must match the exact kernel's behaviour
        # on a zero-feature matrix (a single leaf predicting the mean)
        y = np.array([1.0, 2.0, 3.0, 4.0])
        X = np.empty((4, 0))
        for method in ("exact", "hist"):
            tree = DecisionTreeRegressor(tree_method=method).fit(X, y)
            assert tree.node_count == 1
            assert tree.predict(X).tolist() == [2.5] * 4

    def test_explicit_exact_rejects_binned_input(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        binned = BinnedMatrix.from_matrix(X)
        with pytest.raises(ValueError, match="exact"):
            DecisionTreeRegressor(tree_method="exact").fit(binned, y)
        with pytest.raises(ValueError, match="exact"):
            RandomForestRegressor(tree_method="exact").fit(binned, y)

    def test_config_kernel_reaches_ranker_selectors(self):
        # ARDAConfig.tree_method governs forest-backed selectors, not just RIFS
        from repro.core.arda import ARDA

        arda = ARDA(ARDAConfig(selector="random forest", tree_method="exact"))
        options = arda._selector_options()
        assert options["tree_method"] == "exact"

    def test_max_bins_validation(self):
        with pytest.raises(ValueError):
            check_max_bins(1)
        with pytest.raises(ValueError):
            check_max_bins(256)
        with pytest.raises(ValueError):
            ARDAConfig(max_bins=300)
        with pytest.raises(ValueError):
            ARDAConfig(tree_method="bogus")

    def test_resolve_tree_method_env(self, monkeypatch):
        monkeypatch.setenv("ARDA_TREE_METHOD", "exact")
        assert resolve_tree_method(None) == "exact"
        assert resolve_tree_method("hist") == "hist"
        monkeypatch.delenv("ARDA_TREE_METHOD")
        assert resolve_tree_method(None) == "hist"
        with pytest.raises(ValueError):
            resolve_tree_method("bogus")


# -- hist ≡ exact property tests ------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_hist_regression_tree_matches_exact_on_integer_features(data):
    """Property: on integer features binning is lossless, so the histogram tree

    reproduces the exact tree bit for bit — same predictions on training *and*
    unseen integer inputs, same importances, same structure.
    """
    n = data.draw(st.integers(min_value=6, max_value=60))
    d = data.draw(st.integers(min_value=1, max_value=5))
    seed = data.draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 9, size=(n, d)).astype(np.float64)
    y = rng.integers(-4, 5, size=n).astype(np.float64)
    exact = DecisionTreeRegressor(random_state=seed, tree_method="exact").fit(X, y)
    hist = DecisionTreeRegressor(random_state=seed, tree_method="hist").fit(X, y)
    X_unseen = rng.integers(0, 9, size=(64, d)).astype(np.float64)
    assert np.array_equal(exact.predict(X), hist.predict(X))
    assert np.array_equal(exact.predict(X_unseen), hist.predict(X_unseen))
    assert np.array_equal(exact.feature_importances_, hist.feature_importances_)
    assert exact.node_count == hist.node_count


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_hist_classification_tree_matches_exact_on_integer_features(data):
    n = data.draw(st.integers(min_value=6, max_value=60))
    d = data.draw(st.integers(min_value=1, max_value=5))
    n_classes = data.draw(st.integers(min_value=2, max_value=4))
    seed = data.draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 7, size=(n, d)).astype(np.float64)
    y = rng.integers(0, n_classes, size=n).astype(np.float64)
    exact = DecisionTreeClassifier(random_state=seed, tree_method="exact").fit(X, y)
    hist = DecisionTreeClassifier(random_state=seed, tree_method="hist").fit(X, y)
    X_unseen = rng.integers(0, 7, size=(64, d)).astype(np.float64)
    assert np.array_equal(exact.predict_proba(X_unseen), hist.predict_proba(X_unseen))
    assert np.array_equal(exact.feature_importances_, hist.feature_importances_)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**16))
def test_hist_forest_matches_exact_on_integer_features(seed):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 10, size=(80, 4)).astype(np.float64)
    y = (X[:, 0] + rng.integers(0, 3, size=80)).astype(np.float64)
    exact = RandomForestRegressor(n_estimators=5, random_state=seed, tree_method="exact").fit(X, y)
    hist = RandomForestRegressor(n_estimators=5, random_state=seed, tree_method="hist").fit(X, y)
    assert np.array_equal(exact.predict(X), hist.predict(X))
    assert np.array_equal(exact.feature_importances_, hist.feature_importances_)


def test_hist_forest_close_to_exact_on_continuous_data(rng):
    """On continuous data (real quantile bins) hist holdout quality stays close."""
    n = 1500
    X = rng.normal(size=(n, 8))
    y = 2 * X[:, 0] - X[:, 1] + 0.5 * X[:, 2] ** 2 + rng.normal(scale=0.3, size=n)
    scores = {}
    for method in ("exact", "hist"):
        from repro.selection.base import default_estimator

        estimator = default_estimator(REGRESSION, tree_method=method)
        scores[method] = holdout_score(X, y, REGRESSION, estimator=estimator)
    assert scores["hist"] == pytest.approx(scores["exact"], abs=0.05)


# -- encoding fast path ---------------------------------------------------------


def _random_table(rng, n):
    return Table(
        [
            Column.numeric("num", rng.normal(size=n)),
            Column.numeric("ints", rng.integers(0, 5, size=n).astype(float)),
            Column.categorical("cat", [f"c{int(v)}" for v in rng.integers(0, 4, size=n)]),
            Column.categorical("hi", [f"id{int(v)}" for v in rng.integers(0, max(2, n // 2), size=n)]),
            Column.numeric("miss", [float(v) if v > 0.3 else None for v in rng.random(n)]),
            Column.numeric("target", rng.normal(size=n)),
        ],
        name="t",
    )


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=5, max_value=120),
    st.integers(min_value=0, max_value=2**16),
    st.sampled_from([3, 16, 255]),
)
def test_binned_encoding_matches_float_matrix_binning(n, seed, max_bins):
    """Property: the dictionary-codes fast path produces exactly the bins of

    quantising the float design matrix — same layout, codes and boundaries.
    """
    rng = np.random.default_rng(seed)
    table = _random_table(rng, n)
    encoded = encode_features(table, exclude=["target"], max_categories=3, seed=0)
    reference = BinnedMatrix.from_matrix(encoded.matrix, max_bins=max_bins)
    fast = encode_features_binned(
        table, exclude=["target"], max_categories=3, seed=0, max_bins=max_bins
    )
    assert fast.feature_names == encoded.feature_names
    assert fast.source_columns == encoded.source_columns
    assert np.array_equal(reference.codes, fast.codes)
    for j in range(reference.n_features):
        assert np.array_equal(reference.bin_min[j], fast.bin_min[j], equal_nan=True)
        assert np.array_equal(reference.bin_max[j], fast.bin_max[j], equal_nan=True)


def test_to_binned_matrix_aligns_with_design_matrix(rng):
    table = _random_table(rng, 200)
    X, y, encoding = to_design_matrix(table, "target", max_categories=3, seed=0)
    binned, y_binned = to_binned_matrix(table, "target", max_categories=3, seed=0)
    assert binned.feature_names == encoding.feature_names
    assert binned.shape == X.shape
    assert np.array_equal(y, y_binned)
    assert np.array_equal(binned.codes, BinnedMatrix.from_matrix(X).codes)


# -- parallel determinism -------------------------------------------------------


class TestParallelDeterminism:
    def test_forest_identical_across_executors(self, rng):
        X = rng.normal(size=(200, 6))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        reference = RandomForestClassifier(n_estimators=6, random_state=3).fit(X, y)
        for executor, n_jobs in EXECUTORS[1:]:
            parallel = RandomForestClassifier(
                n_estimators=6, random_state=3, executor=executor, n_jobs=n_jobs
            ).fit(X, y)
            assert np.array_equal(reference.predict_proba(X), parallel.predict_proba(X))
            assert np.array_equal(
                reference.feature_importances_, parallel.feature_importances_
            )

    @pytest.mark.parametrize("method", ["hist", "exact"])
    def test_rifs_selections_identical_across_executors(self, method, rng):
        X = rng.normal(size=(120, 10))
        y = X[:, 0] * 3 + X[:, 1] - X[:, 2] + rng.normal(scale=0.2, size=120)
        results = {}
        for executor, n_jobs in EXECUTORS:
            selector = RIFS(
                n_rounds=3, random_state=0, tree_method=method,
                executor=executor, n_jobs=n_jobs,
            )
            results[executor] = selector.select(X, y, task=REGRESSION)
        for executor in ("thread", "process"):
            assert np.array_equal(
                results["serial"].selected, results[executor].selected
            )
            assert np.array_equal(results["serial"].scores, results[executor].scores)

    def test_rifs_prebinned_matches_internal_binning(self, rng):
        X = rng.normal(size=(100, 8))
        y = X[:, 0] - 2 * X[:, 3] + rng.normal(scale=0.1, size=100)
        plain = RIFS(n_rounds=2, random_state=1, tree_method="hist").select(
            X, y, task=REGRESSION
        )
        prebinned = RIFS(n_rounds=2, random_state=1, tree_method="hist").select(
            X, y, task=REGRESSION, binned=BinnedMatrix.from_matrix(X)
        )
        assert np.array_equal(plain.selected, prebinned.selected)
        assert np.array_equal(plain.scores, prebinned.scores)

    def test_pipeline_identical_with_parallel_selection(self, rng):
        from repro.datasets.synthetic import RelationalDatasetBuilder, SignalTableSpec

        builder = RelationalDatasetBuilder(
            name="par", task="regression", n_rows=160, n_entities=40,
            n_base_features=3, seed=5,
        )
        builder.add_signal_table(SignalTableSpec("sig", n_signal_columns=2, key="entity"))
        builder.add_noise_tables(2, prefix="noise", n_columns=3)
        dataset = builder.build()
        serial = ARDA(ARDAConfig(selector_options={"n_rounds": 2})).augment(dataset)
        threaded = ARDA(
            ARDAConfig(
                executor="thread", n_jobs=2, selection_n_jobs=2,
                selector_options={"n_rounds": 2},
            )
        ).augment(dataset)
        assert serial.kept_columns == threaded.kept_columns
        assert serial.augmented_score == threaded.augmented_score


# -- satellite regressions ------------------------------------------------------


class TestInferTask:
    def test_all_nan_target_raises(self):
        with pytest.raises(ValueError, match="no non-missing values"):
            infer_task(np.array([np.nan, np.nan, np.nan]))

    def test_empty_target_raises(self):
        with pytest.raises(ValueError):
            infer_task(np.array([]))

    def test_normal_targets_still_classified(self):
        assert infer_task(np.array([0.0, 1.0, np.nan])) == CLASSIFICATION
        assert infer_task(np.array([0.1, 2.7, 3.14, 1.1, 9.9, *np.arange(30)])) == REGRESSION


class TestStratifiedHoldout:
    def test_tiny_imbalanced_split_keeps_both_classes(self, rng):
        # 2 positives in 20 rows: an unstratified 25% draw frequently sees
        # no positive test row at all; the stratified split never does
        y = np.zeros(20)
        y[:2] = 1.0
        X = rng.normal(size=(20, 3))
        for seed in range(10):
            _, _, _, y_test = train_test_split(
                X, y, test_size=0.25, random_state=seed, stratify=y
            )
            assert len(np.unique(y_test)) == 2

    def test_holdout_score_stratify_flag(self, rng):
        y = np.r_[np.zeros(18), np.ones(2)]
        X = rng.normal(size=(20, 3)) + y[:, None]
        score = holdout_score(X, y, CLASSIFICATION, stratify=True, random_state=0)
        assert np.isfinite(score)
        # explicit opt-out falls back to the unstratified permutation split
        unstratified = holdout_score(X, y, CLASSIFICATION, stratify=False, random_state=0)
        assert np.isfinite(unstratified)
