"""Tests for the native binary table format and the disk-backed repository.

Covers the round-trip property (arbitrary generated tables reload
value-identical, including missing masks and dictionary order), the edge
cases of the format (empty tables, all-missing columns, unicode dictionary
entries, datetime columns, version-mismatch and truncated-file errors), the
lazy catalog (header-only opens, LRU keep-alive, write-through mutation,
memory-mapped tables surviving ``replace``) and the persistent profile cache
(sidecar save/load, fingerprint validation and invalidation).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.discovery.repository import (
    PROFILE_SIDECAR,
    DataRepository,
    ProfileCache,
)
from repro.relational import (
    Table,
    TableFormatError,
    read_table,
    read_table_header,
    table_fingerprint,
    write_table,
)
from repro.relational.persist import (
    CHUNKED_FORMAT_VERSION,
    MAGIC,
    bytes_read,
    reset_bytes_read,
)
from repro.relational.schema import BOOLEAN, CATEGORICAL, DATETIME, NUMERIC

# -- strategies -------------------------------------------------------------

cat_entries = st.one_of(
    st.none(), st.sampled_from(["a", "bb", "", "日本語", "naïve", "x y", "-1.5"])
)
num_entries = st.one_of(st.none(), st.sampled_from([0.0, -1.5, 2.0**40, 3.25]))
column_kinds = st.sampled_from(["numeric", "categorical", "datetime", "boolean"])


@st.composite
def tables(draw):
    n_rows = draw(st.integers(min_value=0, max_value=25))
    n_cols = draw(st.integers(min_value=0, max_value=4))
    data, types = {}, {}
    for i in range(n_cols):
        kind = draw(column_kinds)
        name = f"col{i}_{kind}"
        if kind == "categorical":
            data[name] = draw(
                st.lists(cat_entries, min_size=n_rows, max_size=n_rows)
            )
            types[name] = CATEGORICAL
        else:
            values = draw(st.lists(num_entries, min_size=n_rows, max_size=n_rows))
            if kind == "boolean":
                values = [None if v is None else float(bool(v)) for v in values]
            data[name] = values
            types[name] = {"numeric": NUMERIC, "datetime": DATETIME, "boolean": BOOLEAN}[kind]
    return Table.from_dict(data, types=types, name="generated")


def assert_identical(loaded: Table, original: Table):
    """Per-column value identity, including missing masks and dictionary order."""
    assert loaded.name == original.name
    assert loaded.column_names == original.column_names
    assert loaded.schema() == original.schema()
    assert loaded.num_rows == original.num_rows
    for name in original.column_names:
        got, want = loaded.column(name), original.column(name)
        assert np.array_equal(got.missing_mask(), want.missing_mask())
        if want.ctype is CATEGORICAL:
            assert np.array_equal(got.codes, want.codes)
            assert list(got.dictionary) == list(want.dictionary)
            assert got.dictionary_is_exact == want.dictionary_is_exact
        else:
            a, b = got.values, want.values
            assert np.array_equal(a[~np.isnan(a)], b[~np.isnan(b)])


# -- round trip -------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(table=tables(), mmap=st.booleans())
    def test_arbitrary_tables_roundtrip(self, tmp_path_factory, table, mmap):
        path = tmp_path_factory.mktemp("rt") / "t.tbl"
        header = write_table(table, path)
        loaded = read_table(path, mmap=mmap)
        assert_identical(loaded, table)
        assert loaded == table
        assert header.fingerprint == table_fingerprint(table)

    def test_fingerprint_distinguishes_content_and_dictionary_order(self):
        a = Table.from_dict({"k": ["x", "y"]}, name="t")
        b = Table.from_dict({"k": ["y", "x"]}, name="t")  # same values, other order
        same = Table.from_dict({"k": ["x", "y"]}, name="t")
        assert table_fingerprint(a) == table_fingerprint(same)
        assert table_fingerprint(a) != table_fingerprint(b)

    def test_empty_table_roundtrip(self, tmp_path):
        path = tmp_path / "empty.tbl"
        write_table(Table([], name="nothing"), path)
        loaded = read_table(path)
        assert loaded.num_rows == 0 and loaded.num_columns == 0
        assert loaded.name == "nothing"

    def test_zero_row_table_with_columns(self, tmp_path):
        table = Table.from_dict(
            {"k": [], "x": []}, types={"k": CATEGORICAL, "x": NUMERIC}, name="t"
        )
        write_table(table, tmp_path / "t.tbl")
        assert_identical(read_table(tmp_path / "t.tbl"), table)

    def test_all_missing_columns(self, tmp_path):
        table = Table.from_dict(
            {"k": [None, None], "x": [None, None]},
            types={"k": CATEGORICAL, "x": NUMERIC},
            name="t",
        )
        write_table(table, tmp_path / "t.tbl")
        loaded = read_table(tmp_path / "t.tbl")
        assert loaded["k"].null_count() == 2 and loaded["x"].null_count() == 2
        assert len(loaded["k"].dictionary) == 0

    def test_unicode_dictionary_entries(self, tmp_path):
        values = ["émeute", "日本語テキスト", "𝔘𝔫𝔦𝔠𝔬𝔡𝔢", "à", None]
        table = Table.from_dict({"k": values}, name="t")
        write_table(table, tmp_path / "t.tbl")
        assert read_table(tmp_path / "t.tbl")["k"].to_list() == values

    def test_datetime_column_roundtrip(self, tmp_path):
        table = Table.from_dict(
            {"t": [0.0, 86400.5, None]}, types={"t": DATETIME}, name="dt"
        )
        write_table(table, tmp_path / "dt.tbl")
        loaded = read_table(tmp_path / "dt.tbl")
        assert loaded["t"].ctype is DATETIME
        assert loaded["t"].values[1] == pytest.approx(86400.5)

    def test_failed_write_leaves_no_temp_file(self, tmp_path):
        from repro.relational.persist import atomic_replace

        def boom(handle):
            handle.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_replace(tmp_path / "t.tbl", boom)
        assert list(tmp_path.iterdir()) == []

    def test_header_meta_roundtrip(self, tmp_path):
        table = Table.from_dict({"x": [1.0]}, name="t")
        header = write_table(table, tmp_path / "t.tbl", meta={"source": "csv-ingest"})
        assert header.meta == {"source": "csv-ingest"}
        assert read_table_header(tmp_path / "t.tbl").meta == {"source": "csv-ingest"}
        # meta does not perturb the content fingerprint
        assert header.fingerprint == table_fingerprint(table)

    def test_views_resolve_on_save(self, tmp_path):
        table = Table.from_dict({"k": ["a", "b", "c"], "x": [1.0, 2.0, 3.0]}, name="t")
        view = table.take(np.array([2, 0]))
        write_table(view, tmp_path / "v.tbl")
        loaded = read_table(tmp_path / "v.tbl")
        assert loaded["k"].to_list() == ["c", "a"]
        assert loaded["x"].to_list() == [3.0, 1.0]


# -- format errors ----------------------------------------------------------


class TestFormatErrors:
    def _write_sample(self, tmp_path):
        path = tmp_path / "t.tbl"
        write_table(Table.from_dict({"k": ["a", "b"], "x": [1.0, 2.0]}, name="t"), path)
        return path

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.tbl"
        path.write_bytes(b"NOTATBL!" + b"\x00" * 32)
        with pytest.raises(TableFormatError, match="magic"):
            read_table_header(path)

    def test_version_mismatch(self, tmp_path):
        path = self._write_sample(tmp_path)
        raw = bytearray(path.read_bytes())
        # one past the chunked version: not a valid format under any layout
        raw[len(MAGIC) : len(MAGIC) + 4] = (CHUNKED_FORMAT_VERSION + 1).to_bytes(4, "little")
        path.write_bytes(bytes(raw))
        with pytest.raises(TableFormatError, match="version"):
            read_table_header(path)

    def test_truncated_pages(self, tmp_path):
        path = self._write_sample(tmp_path)
        raw = path.read_bytes()
        # cut into the page region proper (not just trailing alignment padding)
        path.write_bytes(raw[: read_table_header(path).pages_start + 8])
        with pytest.raises(TableFormatError, match="truncated"):
            read_table(path)
        with pytest.raises(TableFormatError, match="truncated"):
            read_table(path, mmap=False)

    def test_truncated_header(self, tmp_path):
        path = self._write_sample(tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(TableFormatError, match="truncated"):
            read_table_header(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "zero.tbl"
        path.write_bytes(b"")
        with pytest.raises(TableFormatError):
            read_table_header(path)


# -- disk-backed repository -------------------------------------------------


def make_repo_dir(tmp_path, n_tables=4, rows=40):
    rng = np.random.default_rng(0)
    for i in range(n_tables):
        Table.from_dict(
            {
                "entity_id": [f"e{j}" for j in range(rows)],
                "value": list(rng.normal(size=rows)),
            },
            name=f"t{i}",
        ).save(tmp_path / f"t{i}.tbl")
    return tmp_path


class TestDiskRepository:
    def test_open_reads_headers_only(self, tmp_path):
        make_repo_dir(tmp_path, rows=2000)
        total = sum(p.stat().st_size for p in tmp_path.glob("*.tbl"))
        reset_bytes_read()
        repo = DataRepository.open(tmp_path)
        assert repo.is_disk_backed and repo.directory == tmp_path
        assert repo.table_names == ["t0", "t1", "t2", "t3"]
        assert len(repo) == 4 and "t2" in repo
        assert repo.header("t1").num_rows == 2000
        assert repo.header("t1").schema().names == ["entity_id", "value"]
        # cataloguing read headers, not row data (the lazy-loading contract)
        assert bytes_read() < 0.05 * total
        assert repo.cached_tables == []

    def test_lazy_get_and_lru_eviction(self, tmp_path):
        make_repo_dir(tmp_path)
        repo = DataRepository.open(tmp_path, lru_tables=2)
        t0 = repo.get("t0")
        assert t0["value"].values.shape == (40,)
        repo.get("t1")
        repo.get("t2")
        assert repo.cached_tables == ["t1", "t2"]
        # a re-access refreshes recency; same object comes back while cached
        assert repo.get("t1") is repo.get("t1")
        repo.get("t3")
        assert repo.cached_tables == ["t1", "t3"]
        # evicted tables reload transparently
        assert repo.get("t0")["entity_id"].to_list()[0] == "e0"

    def test_iteration_materialises_every_table(self, tmp_path):
        make_repo_dir(tmp_path, n_tables=3)
        repo = DataRepository.open(tmp_path)
        assert [t.name for t in repo] == ["t0", "t1", "t2"]

    def test_get_unknown_name(self, tmp_path):
        make_repo_dir(tmp_path, n_tables=1)
        repo = DataRepository.open(tmp_path)
        with pytest.raises(KeyError, match="nope"):
            repo.get("nope")

    def test_add_and_remove_write_through(self, tmp_path):
        make_repo_dir(tmp_path, n_tables=1)
        repo = DataRepository.open(tmp_path)
        repo.add(Table.from_dict({"x": [1.0]}, name="added"))
        # staged under a content-addressed name and published in the manifest
        assert list(tmp_path.glob("added-*.tbl"))
        with pytest.raises(ValueError, match="already registered"):
            repo.add(Table.from_dict({"x": [2.0]}, name="added"))
        # a fresh open sees the new table
        assert "added" in DataRepository.open(tmp_path)
        repo.remove("added")
        assert not list(tmp_path.glob("added-*.tbl"))
        assert "added" not in DataRepository.open(tmp_path)

    def test_mmap_table_survives_replace(self, tmp_path):
        make_repo_dir(tmp_path, n_tables=1)
        repo = DataRepository.open(tmp_path)
        old = repo.get("t0")
        old_values = old["value"].values.copy()
        repo.replace(Table.from_dict({"x": [9.0]}, name="t0"))
        # the replaced file serves new readers...
        assert repo.get("t0").column_names == ["x"]
        assert DataRepository.open(tmp_path).get("t0").num_rows == 1
        # ...while the old memory-mapped table still reads the old bytes
        assert old.num_rows == 40
        assert np.array_equal(old["value"].values, old_values)
        assert old["entity_id"].to_list()[:2] == ["e0", "e1"]

    def test_replace_supersedes_catalogued_path(self, tmp_path):
        # a table adopted under an arbitrary file stem is republished under
        # its content-addressed name; the superseded file is reclaimed (no
        # snapshot pins it) so the directory never accumulates duplicates
        write_table(Table.from_dict({"x": [1.0]}, name="sales"), tmp_path / "x.tbl")
        repo = DataRepository.open(tmp_path)
        repo.replace(Table.from_dict({"x": [2.0]}, name="sales"))
        names = sorted(p.name for p in tmp_path.glob("*.tbl"))
        assert len(names) == 1 and names[0].startswith("sales-")
        reopened = DataRepository.open(tmp_path)
        assert reopened.get("sales")["x"].to_list() == [2.0]

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DataRepository.open(tmp_path / "absent")

    def test_open_rejects_bad_lru(self, tmp_path):
        make_repo_dir(tmp_path, n_tables=1)
        with pytest.raises(ValueError, match="lru_tables"):
            DataRepository.open(tmp_path, lru_tables=0)


class TestCsvIngestion:
    def test_ingest_converts_once_and_roundtrips(self, tmp_path):
        csv_dir = tmp_path / "csv"
        csv_dir.mkdir()
        (csv_dir / "a.csv").write_text("k,x\nfoo,1.5\nbar,\n")
        (csv_dir / "b.csv").write_text("y\n2\n3\n")
        bin_dir = tmp_path / "bin"
        repo = DataRepository.from_csv_directory(csv_dir, ingest=bin_dir)
        assert repo.is_disk_backed
        assert repo.table_names == ["a", "b"]
        a = repo.get("a")
        assert a["k"].to_list() == ["foo", "bar"]
        assert np.isnan(a["x"].values[1])
        # a second ingest of unchanged CSVs does not rewrite the binaries
        stamps = {p.name: p.stat().st_mtime_ns for p in bin_dir.glob("*.tbl")}
        DataRepository.from_csv_directory(csv_dir, ingest=bin_dir)
        assert {p.name: p.stat().st_mtime_ns for p in bin_dir.glob("*.tbl")} == stamps

    def test_ingest_prunes_tables_whose_csv_disappeared(self, tmp_path):
        csv_dir = tmp_path / "csv"
        csv_dir.mkdir()
        (csv_dir / "keep.csv").write_text("x\n1\n")
        (csv_dir / "gone.csv").write_text("x\n2\n")
        bin_dir = tmp_path / "bin"
        assert DataRepository.from_csv_directory(csv_dir, ingest=bin_dir).table_names == [
            "gone",
            "keep",
        ]
        (csv_dir / "gone.csv").unlink()
        repo = DataRepository.from_csv_directory(csv_dir, ingest=bin_dir)
        assert repo.table_names == ["keep"]
        assert not list(bin_dir.glob("gone*.tbl"))

    def test_ingest_never_prunes_tables_persisted_by_other_means(self, tmp_path):
        csv_dir = tmp_path / "csv"
        csv_dir.mkdir()
        (csv_dir / "a.csv").write_text("x\n1\n")
        bin_dir = tmp_path / "bin"
        repo = DataRepository.from_csv_directory(csv_dir, ingest=bin_dir)
        # a table added through the write-through API has no CSV and no
        # ingest provenance: a re-ingest must leave it alone
        repo.add(Table.from_dict({"y": [9.0]}, name="manual"))
        repo2 = DataRepository.from_csv_directory(csv_dir, ingest=bin_dir)
        assert sorted(repo2.table_names) == ["a", "manual"]
        assert repo2.get("manual")["y"].to_list() == [9.0]

    def test_without_ingest_stays_in_memory(self, tmp_path):
        (tmp_path / "a.csv").write_text("x\n1\n")
        repo = DataRepository.from_csv_directory(tmp_path)
        assert not repo.is_disk_backed
        assert repo.get("a").num_rows == 1


# -- persistent profile cache -----------------------------------------------


class TestProfilePersistence:
    def test_sidecar_roundtrip_serves_profiles_without_loading(self, tmp_path):
        make_repo_dir(tmp_path)
        repo = DataRepository.open(tmp_path)
        first = repo.profiles("t0")
        assert repo.profile_cache.stats()["misses"] == 1
        sidecar = repo.save_profiles()
        assert sidecar == tmp_path / PROFILE_SIDECAR

        fresh = DataRepository.open(tmp_path)
        reset_bytes_read()
        served = fresh.profiles("t0")
        stats = fresh.profile_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        # the table body was never read: a cache hit costs zero page bytes
        assert fresh.cached_tables == []
        assert bytes_read() == 0
        assert served["entity_id"].num_distinct == first["entity_id"].num_distinct
        assert served["value"].minhash.jaccard(first["value"].minhash) == 1.0

    def test_replaced_table_invalidates_persisted_profiles(self, tmp_path):
        make_repo_dir(tmp_path, n_tables=2)
        repo = DataRepository.open(tmp_path)
        repo.profiles("t0")
        repo.profiles("t1")
        repo.save_profiles()
        # rewrite t0 with different content out-of-band (another process)
        Table.from_dict({"z": [1.0, 2.0, 3.0]}, name="t0").save(tmp_path / "t0.tbl")
        fresh = DataRepository.open(tmp_path)
        # the stale entry was pruned on open; t0 re-profiles, t1 is served
        profiles = fresh.profiles("t0")
        assert set(profiles) == {"z"}
        fresh.profiles("t1")
        stats = fresh.profile_cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["invalidations"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            b"not a pickle",
            b"",  # crash between create and write
            # well-formed pickle, malformed record (missing fields)
            pickle.dumps(
                {
                    "format": "arda-profile-cache",
                    "version": 1,
                    "entries": [{"table": "t0"}],
                }
            ),
        ],
        ids=["garbage", "empty", "bad-record"],
    )
    def test_corrupt_sidecar_is_a_cold_cache(self, tmp_path, payload):
        make_repo_dir(tmp_path, n_tables=1)
        (tmp_path / PROFILE_SIDECAR).write_bytes(payload)
        repo = DataRepository.open(tmp_path)
        repo.profiles("t0")
        assert repo.profile_cache.stats()["misses"] == 1

    def test_sidecar_version_check(self, tmp_path):
        cache = ProfileCache()
        path = tmp_path / "profiles.cache"
        path.write_bytes(
            pickle.dumps({"format": "arda-profile-cache", "version": 999, "entries": []})
        )
        with pytest.raises(ValueError, match="version"):
            cache.load(path)
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="sidecar"):
            cache.load(path)

    def test_in_memory_cache_save_load_by_fingerprint(self, tmp_path):
        table = Table.from_dict({"k": ["a", "b", "a"], "x": [1.0, 2.0, None]}, name="t")
        cache = ProfileCache()
        cache.get_or_profile(table, num_hashes=16)
        path = tmp_path / "profiles.cache"
        assert cache.save(path) == 1

        restored = ProfileCache()
        assert restored.load(path) == 1
        # an equal-content table object hits via fingerprint validation...
        same = Table.from_dict({"k": ["a", "b", "a"], "x": [1.0, 2.0, None]}, name="t")
        profiles = restored.get_or_profile(same, num_hashes=16)
        assert restored.stats()["hits"] == 1
        assert profiles["k"].num_distinct == 2
        # ...and is re-bound to the identity fast path
        restored.get_or_profile(same, num_hashes=16)
        assert restored.stats()["hits"] == 2
        # different content misses
        other = Table.from_dict({"k": ["zzz"], "x": [0.0]}, name="t")
        restored.get_or_profile(other, num_hashes=16)
        assert restored.stats()["misses"] == 1

    def test_save_profiles_requires_path_for_in_memory_repo(self):
        repo = DataRepository([Table.from_dict({"x": [1.0]}, name="t")])
        with pytest.raises(ValueError, match="explicit path"):
            repo.save_profiles()


# -- end-to-end: pipeline over a disk-backed repository ----------------------


class TestPipelineOverDiskRepository:
    def test_arda_opens_configured_repository_and_persists_profiles(self, tmp_path):
        from repro import ARDA, ARDAConfig
        from repro.datasets import RelationalDatasetBuilder
        from repro.datasets.synthetic import SignalTableSpec

        builder = RelationalDatasetBuilder(
            "disk", n_rows=120, n_entities=40, n_base_features=2, seed=3
        )
        builder.add_signal_table(SignalTableSpec("alpha", n_signal_columns=2, weight=1.5))
        builder.add_noise_tables(2, prefix="junk", n_columns=3)
        dataset = builder.build()
        for table in dataset.repository:
            table.save(tmp_path / f"{table.name}.tbl")

        config = ARDAConfig(
            repository_dir=str(tmp_path),
            lru_tables=2,
            selector_options={"n_rounds": 2},
            random_state=0,
        )
        arda = ARDA(config)
        report = arda.augment_tables(dataset.base_table, None, target=dataset.target)
        assert report.tables_considered > 0
        # discovery persisted its profiles next to the tables
        assert (tmp_path / PROFILE_SIDECAR).exists()
        # a second call reuses the warm repository (catalog, LRU, profiles)
        first_repo = arda._opened_repository
        arda.augment_tables(dataset.base_table, None, target=dataset.target)
        assert arda._opened_repository is first_repo

        # a second process (fresh repository) serves discovery from the sidecar
        repo = DataRepository.open(tmp_path)
        for name in repo.table_names:
            repo.profiles(name)
        stats = repo.profile_cache.stats()
        assert stats["misses"] == 0 and stats["hits"] == len(repo)

    def test_missing_repository_configuration_raises(self):
        from repro import ARDA

        base = Table.from_dict({"x": [1.0, 2.0], "y": [0.0, 1.0]}, name="b")
        with pytest.raises(ValueError, match="repository_dir"):
            ARDA().augment_tables(base, None, target="y")
