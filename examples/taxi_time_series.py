"""Soft time-series joins: the taxi-demand scenario from the paper's introduction.

The base table records daily taxi demand; the repository contains an
hour-granularity weather table (plus many irrelevant tables).  Joining on the
timestamp requires a soft join: this example compares the four strategies the
paper evaluates in Figure 5 — plain hard join, hard join after time
resampling, nearest-neighbour soft join and two-way nearest-neighbour soft
join — and then runs the full ARDA pipeline with the best one.

Run with:  python examples/taxi_time_series.py
"""

import numpy as np

from repro import ARDA, ARDAConfig
from repro.core.join_execution import join_candidates
from repro.datasets import load_dataset
from repro.evaluation.evaluator import regression_error
from repro.relational.encoding import to_design_matrix
from repro.relational.imputation import impute_table

STRATEGIES = (
    ("hard join (no resampling)", "hard", False),
    ("hard join + time resampling", "hard", True),
    ("nearest-neighbour soft join", "nearest", True),
    ("two-way nearest soft join", "two_way_nearest", True),
)


def main() -> None:
    dataset = load_dataset("taxi", scale=0.5)
    print("Dataset:", dataset.summary())
    print("Soft keys:", dataset.soft_key_columns)

    # compare soft-join strategies on the fully materialised join
    print("\nHoldout MAE by join strategy (lower is better):")
    for label, strategy, resample in STRATEGIES:
        joined, _contributed = join_candidates(
            dataset.base_table,
            dataset.repository,
            dataset.candidates,
            soft_strategy=strategy,
            time_resample=resample,
            rng=np.random.default_rng(0),
        )
        X, y, _encoding = to_design_matrix(impute_table(joined), dataset.target)
        error = regression_error(X, y)
        print(f"  {label:32s} MAE = {error:.3f}")

    # run the full pipeline with the default (two-way nearest) strategy
    config = ARDAConfig(
        selector="RIFS",
        selector_options={"n_rounds": 3},
        soft_join="two_way_nearest",
        random_state=0,
    )
    report = ARDA(config).augment(dataset)
    print("\nARDA with RIFS on the taxi dataset:")
    print(f"  base R^2      = {report.base_score:.3f}")
    print(f"  augmented R^2 = {report.augmented_score:.3f}")
    print(f"  kept tables   = {report.kept_tables}")


if __name__ == "__main__":
    main()
