"""Compare RIFS against baseline feature selectors on a noise-heavy micro benchmark.

Recreates the spirit of the paper's micro benchmarks (section 7.2): take a
learnable classification dataset (Kraken-style machine-failure telemetry),
append many random noise columns, and see how well each feature selector
separates real features from noise — both in model accuracy and in the
fraction of selected features that are real.

Run with:  python examples/feature_selection_comparison.py
"""

import numpy as np

from repro.datasets import make_micro_benchmark
from repro.evaluation.evaluator import classification_accuracy
from repro.selection import make_selector

SELECTORS = ("RIFS", "random forest", "f-test", "mutual info", "relief")


def main() -> None:
    micro = make_micro_benchmark("kraken", noise_factor=5, seed=0)
    print(
        f"Kraken micro benchmark: {micro.X.shape[0]} samples, "
        f"{micro.n_real} real features, {micro.n_noise} injected noise features"
    )

    baseline = classification_accuracy(micro.X[:, micro.real_mask], micro.y)
    all_features = classification_accuracy(micro.X, micro.y)
    print(f"\nAccuracy with only the real features: {baseline:.3f}")
    print(f"Accuracy with every feature (real + noise): {all_features:.3f}")

    print(f"\n{'method':18s} {'accuracy':>9s} {'selected':>9s} {'real kept':>10s} {'time (s)':>9s}")
    for method in SELECTORS:
        options = {"n_rounds": 3} if method == "RIFS" else {}
        selector = make_selector(method, random_state=0, **options)
        result = selector.select(micro.X, micro.y, task="classification")
        selected = np.asarray(result.selected)
        accuracy = classification_accuracy(micro.X[:, selected], micro.y)
        n_real = int(micro.real_mask[selected].sum())
        print(
            f"{method:18s} {accuracy:9.3f} {len(selected):9d} "
            f"{n_real:10d} {result.elapsed:9.1f}"
        )

    print(
        "\nA good selector keeps most of the real sensors, few noise columns, "
        "and matches (or beats) the real-features-only accuracy."
    )


if __name__ == "__main__":
    main()
