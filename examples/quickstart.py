"""Quickstart: augment a small base table against a repository of candidate tables.

Builds a tiny synthetic regression dataset (a base table plus a handful of
joinable tables, only some of which carry signal), runs ARDA end to end with
RIFS feature selection, and prints what was kept and how much the model
improved.

Run with:  python examples/quickstart.py
"""

from repro import ARDA, ARDAConfig
from repro.datasets import RelationalDatasetBuilder
from repro.datasets.synthetic import SignalTableSpec


def main() -> None:
    # 1. Build a dataset: a base table keyed by entity_id, two signal tables
    #    and eight pure-noise tables in the repository.
    builder = RelationalDatasetBuilder(
        "quickstart",
        task="regression",
        n_rows=400,
        n_entities=100,
        n_base_features=3,
        seed=0,
    )
    builder.add_signal_table(SignalTableSpec("demographics", n_signal_columns=2, weight=1.5))
    builder.add_signal_table(SignalTableSpec("economics", n_signal_columns=2, weight=1.0))
    builder.add_noise_tables(8, prefix="irrelevant", n_columns=5)
    dataset = builder.build()

    print("Dataset:", dataset.summary())
    print("Candidate tables:", dataset.repository.table_names[:5], "...")

    # 2. Configure and run ARDA.  RIFS is the default feature selector; we use
    #    fewer injection rounds here so the example finishes in a few seconds.
    #    The thread executor runs each batch's joins concurrently (results are
    #    byte-identical to the serial path) and cache_profiles lets repeated
    #    runs over the same repository skip column re-profiling.
    config = ARDAConfig(
        selector="RIFS",
        selector_options={"n_rounds": 3},
        join_plan="budget",
        coreset_strategy="uniform",
        executor="thread",
        n_jobs=4,
        cache_profiles=True,
        random_state=0,
    )
    report = ARDA(config).augment(dataset)

    # 3. Inspect the result.
    print()
    print(f"Base-table score (R^2):      {report.base_score:.3f}")
    print(f"Augmented score (R^2):       {report.augmented_score:.3f}")
    print(f"Improvement:                 {report.improvement:+.3f}")
    print(f"Tables kept:                 {report.kept_tables}")
    print(f"Columns added:               {len(report.kept_columns)}")
    print(f"Total time:                  {report.total_time:.1f}s")
    print(f"Stage breakdown:             "
          f"{ {k: round(v, 2) for k, v in report.stage_breakdown().items()} }")
    print()
    print("Augmented table columns:")
    for name in report.augmented_table.column_names:
        print("  -", name)


if __name__ == "__main__":
    main()
