"""Deprecated shim: ``python -m repro.repo`` → ``python -m repro repo``.

Repository maintenance moved into the unified CLI (:mod:`repro.cli`); the
subcommands keep their exact argument surface under the ``repo`` group::

    python -m repro repo stat lake/
    python -m repro repo rechunk lake/ orders --chunk-rows 65536

This module stays importable and runnable so existing scripts keep working,
but emits a :class:`DeprecationWarning` and simply forwards.
"""

from __future__ import annotations

import sys
import warnings

from repro.cli import (
    _cmd_rechunk,
    _cmd_stat,
    _header_file_size,
    _table_row,
    _zone_coverage,
    main as _cli_main,
)

__all__ = ["main"]

# re-exported for callers that imported the helpers from here
_cmd_stat = _cmd_stat
_cmd_rechunk = _cmd_rechunk
_zone_coverage = _zone_coverage
_header_file_size = _header_file_size
_table_row = _table_row


def main(argv: list[str] | None = None) -> int:
    """Forward to ``python -m repro repo`` (same subcommand names)."""
    warnings.warn(
        "python -m repro.repo is deprecated; use python -m repro repo "
        "(same subcommands: stat, rechunk)",
        DeprecationWarning,
        stacklevel=2,
    )
    argv = list(argv) if argv is not None else sys.argv[1:]
    return _cli_main(["repo", *argv])


if __name__ == "__main__":
    raise SystemExit(main())
