"""Repository maintenance front end: ``python -m repro.repo``.

Two subcommands:

* ``stat`` — describe every table of a repository directory from file
  headers alone: row/column counts, format version, chunk count and target,
  zone-map coverage, and the header-derived file size.  No data page is
  read; the footer line reports the actual bytes read per kind
  (:func:`repro.relational.persist.bytes_read_detail`) as proof.
* ``rechunk`` — rewrite one table (or every table) to a new row-group
  layout via :meth:`~repro.discovery.repository.DataRepository.rechunk`.
  The rewrite streams chunk-to-chunk, is atomic (staged-publish, next
  manifest generation), and leaves the content fingerprint unchanged, so
  live snapshots and cached profiles are unaffected.

Examples::

    python -m repro.repo stat lake/
    python -m repro.repo rechunk lake/ orders --chunk-rows 65536
    python -m repro.repo rechunk lake/ --all --chunk-rows 0   # monolithic
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.discovery.repository import DataRepository
from repro.relational.persist import (
    TableFormatError,
    TableHeader,
    bytes_read_detail,
    reset_bytes_read,
)


def _zone_coverage(header: TableHeader) -> float | None:
    """Fraction of (chunk, column) zone-map slots carrying a (min, max) range.

    ``None`` for monolithic version-1 files, which have no zone map at all.
    A slot is empty when the chunk holds no valid value for that column, so
    coverage below 1.0 usually just reflects all-missing column stretches.
    """
    if not header.chunks:
        return None
    total = len(header.chunks) * len(header.columns)
    if total == 0:
        return None
    filled = sum(
        1 for chunk in header.chunks for zone in chunk.zones if zone is not None
    )
    return filled / total


def _header_file_size(header: TableHeader) -> int:
    """File size implied by the header alone: page zone start + page bytes."""
    return header.pages_start + header.pages_nbytes


def _table_row(name: str, entry) -> dict:
    header = entry.header
    coverage = _zone_coverage(header)
    return {
        "name": name,
        "rows": header.num_rows,
        "columns": len(header.columns),
        "version": 2 if header.chunks else 1,
        "chunks": header.num_chunks,
        "chunk_rows": header.chunk_rows,
        "zone_coverage": coverage,
        "file_bytes": _header_file_size(header),
        "fingerprint": header.fingerprint,
        "file": entry.path.name,
    }


def _cmd_stat(args) -> int:
    reset_bytes_read()
    repository = DataRepository.open(args.directory, load_profiles=False)
    rows = []
    for name in sorted(repository.table_names):
        entry = repository._catalog.get(name)
        if entry is None:
            continue  # in-memory only; nothing on disk to describe
        rows.append(_table_row(name, entry))
    detail = bytes_read_detail()
    if args.json:
        print(json.dumps({"tables": rows, "bytes_read": detail}, indent=2))
        return 0
    if not rows:
        print(f"{args.directory}: no tables")
        return 0
    fmt = "{:<20} {:>10} {:>5} {:>3} {:>7} {:>11} {:>9} {:>12}"
    print(fmt.format("table", "rows", "cols", "ver", "chunks", "chunk_rows", "zones", "bytes"))
    for row in rows:
        coverage = "-" if row["zone_coverage"] is None else f"{row['zone_coverage']:.0%}"
        target = "-" if row["chunk_rows"] is None else str(row["chunk_rows"])
        print(
            fmt.format(
                row["name"],
                row["rows"],
                row["columns"],
                f"v{row['version']}",
                row["chunks"],
                target,
                coverage,
                row["file_bytes"],
            )
        )
    total_bytes = sum(row["file_bytes"] for row in rows)
    total_chunks = sum(row["chunks"] for row in rows)
    print(
        f"{len(rows)} tables, {total_chunks} chunks, "
        f"{total_bytes / 1e6:.2f} MB (header-derived)"
    )
    read = ", ".join(f"{kind}={count}" for kind, count in sorted(detail.items()) if count)
    print(f"bytes read: {read or 'none'}  (headers and zone maps only)")
    return 0


def _cmd_rechunk(args) -> int:
    if args.all == (args.table is not None):
        print("error: name exactly one table, or pass --all", file=sys.stderr)
        return 2
    repository = DataRepository.open(args.directory, load_profiles=False)
    names = sorted(repository._catalog) if args.all else [args.table]
    for name in names:
        before = repository._catalog[name].header.num_chunks
        repository.rechunk(name, chunk_rows=args.chunk_rows)
        after = repository._catalog[name].header.num_chunks
        print(f"{name}: {before} -> {after} chunks ({repository._catalog[name].path.name})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.repo", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stat = sub.add_parser("stat", help="describe a repository from headers alone")
    stat.add_argument("directory", type=Path, help="repository directory of .tbl files")
    stat.add_argument("--json", action="store_true", help="machine-readable output")
    stat.set_defaults(func=_cmd_stat)

    rechunk = sub.add_parser("rechunk", help="rewrite tables to a new row-group layout")
    rechunk.add_argument("directory", type=Path, help="repository directory of .tbl files")
    rechunk.add_argument("table", nargs="?", default=None, help="table to rewrite")
    rechunk.add_argument("--all", action="store_true", help="rewrite every table")
    rechunk.add_argument(
        "--chunk-rows", type=int, default=None,
        help="row-group target (0 = monolithic v1 file; default: "
        "ARDA_CHUNK_ROWS or the streaming default)",
    )
    rechunk.set_defaults(func=_cmd_rechunk)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: unknown table {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 1
    except (TableFormatError, FileNotFoundError, NotADirectoryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
