"""Stratified row sampling.

For classification targets the strata are the class labels, so every class
keeps (approximately) its proportional share and no label is overlooked.  For
regression targets (or when no target is available) the strata are target
quantile bins, which keeps the target distribution balanced.
"""

from __future__ import annotations

import numpy as np

from repro.coreset.base import CoresetBuilder


class StratifiedSampler(CoresetBuilder):
    """Sample proportionally within target-derived strata."""

    name = "stratified"
    row_preserving = True

    def __init__(self, random_state: int = 0, n_bins: int = 10, max_classes: int = 20):
        self.random_state = random_state
        self.n_bins = n_bins
        self.max_classes = max_classes

    def _strata(self, y: np.ndarray) -> np.ndarray:
        """Assign each row to a stratum (class label or target quantile bin)."""
        y = np.asarray(y, dtype=np.float64).ravel()
        distinct = np.unique(y[~np.isnan(y)])
        if len(distinct) <= self.max_classes:
            return np.searchsorted(distinct, y)
        quantiles = np.quantile(y, np.linspace(0, 1, self.n_bins + 1)[1:-1])
        return np.searchsorted(quantiles, y, side="right")

    def sample_indices(self, n_rows: int, size: int, y=None) -> np.ndarray:
        """Pick ``size`` rows, allocating the budget proportionally per stratum."""
        rng = np.random.default_rng(self.random_state)
        if size >= n_rows:
            return np.arange(n_rows)
        if y is None:
            return np.sort(rng.choice(n_rows, size=size, replace=False))
        strata = self._strata(np.asarray(y))
        chosen: list[np.ndarray] = []
        labels, counts = np.unique(strata, return_counts=True)
        allocations = np.maximum(1, np.floor(counts / n_rows * size)).astype(int)
        # trim or grow allocations so they sum to the requested size
        while allocations.sum() > size:
            allocations[np.argmax(allocations)] -= 1
        while allocations.sum() < size:
            deficit = counts - allocations
            candidates = np.nonzero(deficit > 0)[0]
            if len(candidates) == 0:
                break
            allocations[candidates[np.argmax(deficit[candidates])]] += 1
        for label, allocation in zip(labels, allocations):
            members = np.nonzero(strata == label)[0]
            take = min(allocation, len(members))
            chosen.append(rng.choice(members, size=take, replace=False))
        return np.sort(np.concatenate(chosen))
