"""Coreset interfaces.

Coresets reduce the number of base-table rows before the (expensive) joining,
feature selection and model-training stages (paper section 3.1).  Row-sampling
strategies (uniform, stratified) can be applied to the base table *before*
joins because they keep real rows; sketching takes linear combinations of rows
so it is only applied to the encoded design matrix *after* joins.
"""

from __future__ import annotations

import numpy as np

from repro.relational.table import Table


def default_coreset_size(n_rows: int, cap: int = 2000, minimum: int = 200) -> int:
    """Heuristic coreset size: keep everything for small tables, cap large ones."""
    if n_rows <= minimum:
        return n_rows
    return int(min(n_rows, max(minimum, min(cap, int(np.sqrt(n_rows) * 20)))))


class CoresetBuilder:
    """Base class for coreset strategies."""

    name = "coreset"
    #: whether the strategy keeps real rows (and can therefore run before joins)
    row_preserving = True

    def sample_indices(
        self, n_rows: int, size: int, y: np.ndarray | None = None
    ) -> np.ndarray:
        """Row indices to keep (only meaningful for row-preserving strategies)."""
        raise NotImplementedError

    def reduce_table(self, table: Table, size: int, target: str | None = None) -> Table:
        """Apply the strategy to a table, using ``target`` for stratification."""
        if not self.row_preserving:
            raise RuntimeError(
                f"{self.name} does not preserve rows and cannot reduce a table before joins"
            )
        if size >= table.num_rows:
            return table
        y = table.column(target).values if target and target in table else None
        indices = self.sample_indices(table.num_rows, size, y=y)
        return table.take(indices)

    def reduce_matrix(
        self, X: np.ndarray, y: np.ndarray, size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply the strategy to an encoded design matrix and target."""
        if size >= X.shape[0]:
            return X, y
        indices = self.sample_indices(X.shape[0], size, y=y)
        return X[indices], y[indices]
