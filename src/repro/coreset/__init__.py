"""Coreset construction: uniform sampling, stratified sampling and sketching."""

from repro.coreset.base import CoresetBuilder, default_coreset_size
from repro.coreset.uniform import UniformSampler
from repro.coreset.stratified import StratifiedSampler
from repro.coreset.sketch import OSNAPSketch, sketch_matrix

__all__ = [
    "CoresetBuilder",
    "default_coreset_size",
    "UniformSampler",
    "StratifiedSampler",
    "OSNAPSketch",
    "sketch_matrix",
    "make_coreset_builder",
]


def make_coreset_builder(name: str, random_state: int = 0) -> CoresetBuilder:
    """Build a coreset strategy by name: 'uniform', 'stratified' or 'sketch'."""
    key = name.strip().lower()
    if key == "uniform":
        return UniformSampler(random_state=random_state)
    if key == "stratified":
        return StratifiedSampler(random_state=random_state)
    if key == "sketch":
        return OSNAPSketch(random_state=random_state)
    raise ValueError(f"unknown coreset strategy {name!r}")
