"""Matrix sketching (OSNAP / count-sketch subspace embedding).

Sketching compresses the rows of a numeric matrix by taking sparse random
linear combinations of them (Definition 2 in the paper): each original row is
assigned to one sketch row with a random +/-1 sign, repeated ``repetitions``
times and rescaled.  Because rows are mixed, sketching cannot run before joins
— ARDA applies it to the encoded design matrix after the join, per label group
for classification (analogous to stratified sampling).
"""

from __future__ import annotations

import numpy as np

from repro.coreset.base import CoresetBuilder


def sketch_matrix(
    X: np.ndarray,
    n_sketch_rows: int,
    rng: np.random.Generator,
    repetitions: int | None = None,
) -> np.ndarray:
    """Apply an OSNAP-style count sketch to the rows of ``X``.

    Each repetition hashes every input row to one of ``n_sketch_rows`` buckets
    with a random sign; repetitions are averaged with a 1/sqrt(s) scaling so
    column norms are approximately preserved.
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if n_sketch_rows >= n:
        return X.copy()
    if repetitions is None:
        repetitions = max(1, int(np.ceil(np.log(max(n, 2)))))
    sketch = np.zeros((n_sketch_rows, X.shape[1]), dtype=np.float64)
    scale = 1.0 / np.sqrt(repetitions)
    for _ in range(repetitions):
        buckets = rng.integers(0, n_sketch_rows, size=n)
        signs = rng.choice([-1.0, 1.0], size=n)
        signed = X * signs[:, None]
        np.add.at(sketch, buckets, signed * scale)
    return sketch


class OSNAPSketch(CoresetBuilder):
    """Sketching coreset: sparse random linear combinations of rows."""

    name = "sketch"
    row_preserving = False

    def __init__(self, random_state: int = 0, repetitions: int | None = None):
        self.random_state = random_state
        self.repetitions = repetitions

    def sample_indices(self, n_rows: int, size: int, y=None) -> np.ndarray:
        """Sketching has no notion of selected row indices."""
        raise RuntimeError("sketching does not select rows; use reduce_matrix")

    def reduce_matrix(self, X, y, size) -> tuple[np.ndarray, np.ndarray]:
        """Sketch the design matrix per label group (classification) or globally.

        For classification targets each class is sketched independently and the
        sketched rows keep that class's label (mirroring stratified sampling);
        for regression the target column is sketched together with the
        features, which preserves the least-squares objective up to the
        subspace-embedding distortion.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        n = X.shape[0]
        if size >= n:
            return X, y
        rng = np.random.default_rng(self.random_state)
        distinct = np.unique(y)
        is_classification = len(distinct) <= 20 and np.allclose(distinct, np.round(distinct))
        if is_classification:
            sketched_X: list[np.ndarray] = []
            sketched_y: list[np.ndarray] = []
            for cls in distinct:
                members = np.nonzero(y == cls)[0]
                share = max(2, int(round(size * len(members) / n)))
                block = sketch_matrix(X[members], share, rng, self.repetitions)
                sketched_X.append(block)
                sketched_y.append(np.full(block.shape[0], cls))
            return np.vstack(sketched_X), np.concatenate(sketched_y)
        joint = np.column_stack([X, y])
        sketched = sketch_matrix(joint, size, rng, self.repetitions)
        return sketched[:, :-1], sketched[:, -1]
