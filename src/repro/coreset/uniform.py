"""Uniform row sampling (the default coreset strategy)."""

from __future__ import annotations

import numpy as np

from repro.coreset.base import CoresetBuilder


class UniformSampler(CoresetBuilder):
    """Sample rows uniformly at random without replacement."""

    name = "uniform"
    row_preserving = True

    def __init__(self, random_state: int = 0):
        self.random_state = random_state

    def sample_indices(self, n_rows: int, size: int, y=None) -> np.ndarray:
        """Pick ``size`` distinct row indices uniformly at random."""
        if size >= n_rows:
            return np.arange(n_rows)
        rng = np.random.default_rng(self.random_state)
        return np.sort(rng.choice(n_rows, size=size, replace=False))
