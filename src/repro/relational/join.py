"""Hash LEFT joins on hard keys, in-memory and streaming.

Only LEFT joins are implemented because they are the only join type suitable
for data augmentation: every base-table row (training example) is preserved and
unmatched rows get NULLs, which are later imputed (paper section 4, "Joins").

Besides the whole-table :func:`left_join`, this module provides the
out-of-core path: :class:`StreamingHashJoin` prepares the (small) build side
once — pre-aggregation, output naming, per-key value ranges — and probes the
(large) base table one row group at a time through a
:class:`~repro.relational.persist.ChunkedTableReader`.  Chunks whose zone map
cannot intersect the build side's key range are **pruned**: their probe and
gather are skipped entirely and they contribute all-NULL augmented columns,
which is exactly what the full probe would have produced (a LEFT join keeps
every base row, so pruning a chunk removes work, never rows).  Because each
chunk is probed with the same kernels as the in-memory join and the outputs
are concatenated in chunk order, :func:`streaming_left_join` is equivalent to
``left_join`` row for row, while peak memory stays bounded by a chunk wave
(``memory_budget``) instead of the base table.  Independent chunks of one
join fan out across any :class:`~repro.core.executor.JoinExecutor` backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.relational.aggregate import group_by_aggregate, is_unique_on
from repro.relational.column import Column, remap_dictionary
from repro.relational.schema import CATEGORICAL, Schema
from repro.relational.table import Table, unique_name


def _key_tuple(columns: Sequence[Column], index: int) -> tuple:
    """Hashable key tuple for one row (missing values collapse to None)."""
    parts = []
    for col in columns:
        value = col.values[index]
        if col.ctype is CATEGORICAL:
            parts.append(value)
        else:
            parts.append(None if np.isnan(value) else float(value))
    return tuple(parts)


def _build_hash_index(columns: Sequence[Column]) -> dict[tuple, int]:
    """Map each key tuple to the first row index where it appears."""
    index: dict[tuple, int] = {}
    n = len(columns[0]) if columns else 0
    for i in range(n):
        key = _key_tuple(columns, i)
        if None in key:
            continue
        if key not in index:
            index[key] = i
    return index


def _factorize_pair(
    left_col: Column, right_col: Column
) -> tuple[np.ndarray, np.ndarray] | None:
    """Encode one key-column pair into shared integer codes (-1 = missing).

    Returns ``None`` when the pair can never match (categorical against
    numeric), mirroring how tuple equality across those types always fails.

    Categorical pairs never touch row-level strings: the two dictionaries are
    reconciled into one shared code space (a dictionary is tiny compared to the
    rows), and the stored code arrays are translated with one integer gather.
    """
    left_is_cat = left_col.ctype is CATEGORICAL
    if left_is_cat != (right_col.ctype is CATEGORICAL):
        return None
    if left_is_cat:
        shared: dict[str, int] = {
            text: code for code, text in enumerate(left_col.dictionary)
        }
        translate = remap_dictionary(right_col.dictionary, shared)
        left_code = left_col.codes.astype(np.int64)
        right_code = translate[right_col.codes].astype(np.int64)
        return left_code, right_code
    left_valid = ~left_col.missing_mask()
    right_valid = ~right_col.missing_mask()
    left_values = left_col.values[left_valid]
    right_values = right_col.values[right_valid]
    _, inverse = np.unique(
        np.concatenate([left_values, right_values]), return_inverse=True
    )
    left_code = np.full(len(left_col), -1, dtype=np.int64)
    right_code = np.full(len(right_col), -1, dtype=np.int64)
    left_code[left_valid] = inverse[: len(left_values)]
    right_code[right_valid] = inverse[len(left_values):]
    return left_code, right_code


def _match_first_occurrence(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> np.ndarray:
    """Vectorised hash-join probe: first matching right row per left row.

    Replicates ``_build_hash_index`` + per-row lookup (first right occurrence
    wins, rows with a missing key part never match) without the per-row Python
    loop: each key pair is factorised into shared integer codes, composite keys
    are packed mixed-radix into one int64, and the probe becomes a
    ``searchsorted`` against the first occurrence of each right key.  Falls
    back to the dict-based path if the packed codes would overflow int64
    (only possible for very wide composite keys over huge domains).
    """
    n_left = len(left_columns[0])
    n_right = len(right_columns[0])
    left_code = np.zeros(n_left, dtype=np.int64)
    right_code = np.zeros(n_right, dtype=np.int64)
    left_ok = np.ones(n_left, dtype=bool)
    right_ok = np.ones(n_right, dtype=bool)
    span = 1
    for left_col, right_col in zip(left_columns, right_columns):
        pair = _factorize_pair(left_col, right_col)
        if pair is None:
            return np.full(n_left, -1, dtype=np.int64)
        codes_left, codes_right = pair
        radix = int(max(codes_left.max(initial=-1), codes_right.max(initial=-1))) + 2
        span *= radix
        if span > 2**62:
            return _match_via_hash_index(left_columns, right_columns)
        left_ok &= codes_left >= 0
        right_ok &= codes_right >= 0
        left_code = left_code * radix + (codes_left + 1)
        right_code = right_code * radix + (codes_right + 1)

    match_index = np.full(n_left, -1, dtype=np.int64)
    right_rows = np.nonzero(right_ok)[0]
    if not len(right_rows):
        return match_index
    order = np.argsort(right_code[right_rows], kind="stable")
    sorted_keys = right_code[right_rows][order]
    sorted_rows = right_rows[order]
    is_first = np.ones(len(sorted_keys), dtype=bool)
    is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    unique_keys = sorted_keys[is_first]
    first_rows = sorted_rows[is_first]

    left_rows = np.nonzero(left_ok)[0]
    probe = left_code[left_rows]
    positions = np.searchsorted(unique_keys, probe)
    in_range = positions < len(unique_keys)
    clipped = np.clip(positions, 0, len(unique_keys) - 1)
    hit = in_range & (unique_keys[clipped] == probe)
    match_index[left_rows[hit]] = first_rows[clipped[hit]]
    return match_index


def _match_via_hash_index(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> np.ndarray:
    """Reference dict-based probe (kept as the overflow fallback)."""
    hash_index = _build_hash_index(right_columns)
    n = len(left_columns[0])
    match_index = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        key = _key_tuple(left_columns, i)
        if None in key:
            continue
        match_index[i] = hash_index.get(key, -1)
    return match_index


def left_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
) -> Table:
    """LEFT-join ``right`` onto ``left`` on the given key pairs.

    ``on`` is a sequence of ``(left_column, right_column)`` pairs (composite
    keys are supported by passing more than one pair).  If the right table is
    not unique on its key columns and ``aggregate_duplicates`` is True, it is
    first pre-aggregated so the join cannot duplicate base-table rows; if
    ``aggregate_duplicates`` is False the first matching right row wins.

    The right key columns themselves are not copied into the output (the left
    key already carries that information).  Other right columns that clash
    with left column names get ``suffix`` appended.
    """
    if not on:
        raise ValueError("left_join requires at least one key pair")
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    for key in left_keys:
        left.column(key)
    right = _prepare_right(
        right, right_keys, aggregate_duplicates, numeric_agg, categorical_agg
    )

    right_key_columns = [right.column(k) for k in right_keys]
    left_key_columns = [left.column(k) for k in left_keys]
    match_index = _match_first_occurrence(left_key_columns, right_key_columns)
    matched = match_index >= 0

    out_columns = list(left.columns())
    for right_name, out_name in _output_names(right, right_keys, left.column_names, suffix):
        out_columns.append(
            _gather_right_column(right.column(right_name), out_name, match_index, matched)
        )
    return Table(out_columns, name=left.name)


def _prepare_right(
    right: Table,
    right_keys: Sequence[str],
    aggregate_duplicates: bool,
    numeric_agg: str,
    categorical_agg: str,
) -> Table:
    """Validate and (if needed) pre-aggregate the build side of a LEFT join."""
    for key in right_keys:
        right.column(key)
    if aggregate_duplicates and right.num_rows and not is_unique_on(right, right_keys):
        right = group_by_aggregate(
            right, right_keys, numeric_agg=numeric_agg, categorical_agg=categorical_agg
        )
    return right


def _output_names(
    right: Table,
    right_keys: Sequence[str],
    left_names: Sequence[str],
    suffix: str,
) -> list[tuple[str, str]]:
    """``(right column, output name)`` pairs, exactly as ``left_join`` assigns
    them: right key columns are dropped, clashes get ``suffix`` appended."""
    existing = set(left_names)
    right_key_set = set(right_keys)
    out: list[tuple[str, str]] = []
    for col in right.columns():
        if col.name in right_key_set:
            continue
        name = unique_name(col.name, existing, suffix)
        existing.add(name)
        out.append((col.name, name))
    return out


def _gather_right_column(
    col: Column, name: str, match_index: np.ndarray, matched: np.ndarray
) -> Column:
    """Pull right-table values into left-row order, NULL where unmatched.

    Categorical columns are gathered as int32 codes sharing the right column's
    dictionary — no string is touched during join materialisation.
    """
    n = len(match_index)
    if col.ctype is CATEGORICAL:
        out = np.full(n, -1, dtype=np.int32)
        if matched.any():
            out[matched] = col.codes[match_index[matched]]
        return Column.from_codes(name, out, col.dictionary)
    out = np.full(n, np.nan, dtype=np.float64)
    if matched.any():
        out[matched] = col.values[match_index[matched]]
    return Column.from_array(name, out, col.ctype)


def join_match_fraction(
    left: Table, right: Table, on: Sequence[tuple[str, str]]
) -> float:
    """Fraction of left rows whose key tuple appears in the right table.

    Used by the join-discovery scorer as a cheap intersection score.
    """
    if not on or left.num_rows == 0:
        return 0.0
    match_index = _match_first_occurrence(
        [left.column(pair[0]) for pair in on],
        [right.column(pair[1]) for pair in on],
    )
    return float(np.mean(match_index >= 0))


# -- streaming, pruned, chunk-parallel join -----------------------------------


@dataclass
class StreamJoinStats:
    """Pruning and coverage accounting of one streaming join.

    ``chunks_probed`` counts row groups whose key pages were actually read and
    probed against the build side; the remaining ``chunks_pruned`` were
    skipped on zone-map evidence alone (header bytes, no page reads) and
    contributed all-NULL augmented columns without any probe or gather work.
    """

    chunks_total: int = 0
    chunks_probed: int = 0
    rows_total: int = 0
    rows_probed: int = 0
    rows_matched: int = 0

    @property
    def chunks_pruned(self) -> int:
        return self.chunks_total - self.chunks_probed

    @property
    def pruning_ratio(self) -> float:
        """Fraction of chunks skipped by zone-map pruning (0.0 when unknown)."""
        if not self.chunks_total:
            return 0.0
        return self.chunks_pruned / self.chunks_total

    def merge(self, other: "StreamJoinStats") -> "StreamJoinStats":
        """Elementwise sum — used to aggregate stats across several joins."""
        return StreamJoinStats(
            chunks_total=self.chunks_total + other.chunks_total,
            chunks_probed=self.chunks_probed + other.chunks_probed,
            rows_total=self.rows_total + other.rows_total,
            rows_probed=self.rows_probed + other.rows_probed,
            rows_matched=self.rows_matched + other.rows_matched,
        )

    def record_to(self, registry=None, prefix: str = "stream_join") -> None:
        """Add this join's accounting to a metrics registry's counters.

        Each field increments the ``{prefix}.{field}`` counter on the given
        registry (default: the process-wide
        :func:`repro.observability.get_registry`), so repeated joins
        accumulate process totals while this object keeps reporting its own
        run unchanged.
        """
        from repro.observability import get_registry

        registry = registry if registry is not None else get_registry()
        registry.counter(f"{prefix}.chunks_total").inc(self.chunks_total)
        registry.counter(f"{prefix}.chunks_probed").inc(self.chunks_probed)
        registry.counter(f"{prefix}.chunks_pruned").inc(self.chunks_pruned)
        registry.counter(f"{prefix}.rows_total").inc(self.rows_total)
        registry.counter(f"{prefix}.rows_probed").inc(self.rows_probed)
        registry.counter(f"{prefix}.rows_matched").inc(self.rows_matched)


class _TableChunkSource:
    """Adapt an in-memory :class:`Table` to the chunk-source protocol.

    Lets every streaming consumer treat "a table already in RAM" as a
    single-chunk (or, with ``chunk_rows``, evenly sliced) source with no zone
    maps — in-memory sources are never pruned, matching the semantics of a
    monolithic version-1 file.
    """

    def __init__(self, table: Table, chunk_rows: int | None = None):
        self._table = table
        n = table.num_rows
        if chunk_rows is None or chunk_rows <= 0 or chunk_rows >= n:
            self._bounds = [(0, n)]
        else:
            self._bounds = [
                (start, min(start + chunk_rows, n)) for start in range(0, n, chunk_rows)
            ]
        self.has_zones = False

    @property
    def name(self) -> str:
        return self._table.name

    @property
    def num_rows(self) -> int:
        return self._table.num_rows

    @property
    def num_chunks(self) -> int:
        return len(self._bounds)

    @property
    def column_names(self) -> list[str]:
        return self._table.column_names

    def __contains__(self, name: str) -> bool:
        return name in self._table.column_names

    def schema(self) -> Schema:
        return self._table.schema()

    def zones(self, index: int):
        return None

    def chunk_row_range(self, index: int) -> tuple[int, int]:
        return self._bounds[index]

    def chunk_nbytes(self, index: int) -> int:
        start, stop = self._bounds[index]
        return (stop - start) * 8 * max(1, len(self._table.column_names))

    def chunk(self, index: int, columns: Sequence[str] | None = None) -> Table:
        start, stop = self._bounds[index]
        part = self._table if (start, stop) == (0, self.num_rows) else self._table.take(
            np.arange(start, stop)
        )
        return part.select(list(columns)) if columns is not None else part

    def iter_chunks(self, columns: Sequence[str] | None = None) -> Iterator[Table]:
        for index in range(self.num_chunks):
            yield self.chunk(index, columns)

    def table(self) -> Table:
        return self._table

    def column(self, name: str) -> Column:
        return self._table.column(name)

    def take(self, indices) -> Table:
        return self._table.take(indices)

    def dictionary(self, name: str) -> np.ndarray:
        return self._table.column(name).dictionary


def as_chunk_source(source, chunk_rows: int | None = None):
    """Coerce a join/profiling source to the chunk protocol.

    Accepts a :class:`~repro.relational.persist.ChunkedTableReader` (returned
    unchanged), or an in-memory :class:`Table` (wrapped so it presents as an
    unpruned chunk sequence).
    """
    if isinstance(source, Table):
        return _TableChunkSource(source, chunk_rows)
    if hasattr(source, "iter_chunks"):
        return source
    raise TypeError(
        f"expected a Table or a chunked table reader, got {type(source).__name__}"
    )


@dataclass
class StreamingHashJoin:
    """Build-once probe-many LEFT join against one prepared right table.

    The constructor does all the per-join work that must happen exactly once:
    right-side validation and pre-aggregation, output-column naming against
    the left schema (identical to :func:`left_join`'s assignment), and the
    build side's per-key value ranges used for zone-map pruning.  Each
    :meth:`probe_chunk` / :meth:`join_chunk` call then handles one base chunk
    independently — the object is picklable, so chunks can fan out across
    process pools with the build side shipped once per worker.
    """

    right: Table
    on: Sequence[tuple[str, str]]
    left_schema: Schema
    suffix: str = "_r"
    aggregate_duplicates: bool = True
    numeric_agg: str = "mean"
    categorical_agg: str = "mode"
    output: list[tuple[str, str]] = field(init=False)

    def __post_init__(self):
        if not self.on:
            raise ValueError("StreamingHashJoin requires at least one key pair")
        self.on = [(left, right) for left, right in self.on]
        self.left_keys = [pair[0] for pair in self.on]
        self.right_keys = [pair[1] for pair in self.on]
        for key in self.left_keys:
            if key not in self.left_schema:
                raise KeyError(f"left source has no key column {key!r}")
        self.right = _prepare_right(
            self.right,
            self.right_keys,
            self.aggregate_duplicates,
            self.numeric_agg,
            self.categorical_agg,
        )
        self.right_key_columns = [self.right.column(k) for k in self.right_keys]
        self.output = _output_names(
            self.right, self.right_keys, self.left_schema.names, self.suffix
        )
        # build-side key ranges for zone pruning: numeric keys keep (min, max)
        # over valid values; categorical keys keep their distinct strings (a
        # chunk's code zone is translated through the base dictionary at prune
        # time).  An empty range means no base row can ever match.
        self._ranges: list[tuple] = []
        for rcol in self.right_key_columns:
            if rcol.ctype is CATEGORICAL:
                codes = rcol.codes
                present = np.unique(codes[codes >= 0])
                self._ranges.append(("cat", [rcol.dictionary[c] for c in present]))
            else:
                values = rcol.values
                valid = values[~np.isnan(values)]
                if len(valid):
                    self._ranges.append(("num", float(valid.min()), float(valid.max())))
                else:
                    self._ranges.append(("num-empty",))
        self._base_code_cache: dict[str, np.ndarray] = {}

    @property
    def output_names(self) -> list[str]:
        """Names of the augmented columns this join adds, in output order."""
        return [name for _right_name, name in self.output]

    # -- zone pruning ----------------------------------------------------------

    def chunk_may_match(self, zones, dictionaries) -> bool:
        """Whether any row of a chunk with these zones can match the build side.

        ``zones`` is the chunk's per-column ``(min, max)`` map (``None`` when
        the source carries no zone map — never prune then); ``dictionaries``
        maps categorical left-key names to the source's file-level dictionary.
        Conservative by construction: ``True`` on any uncertainty.
        """
        if zones is None:
            return True
        for (left_key, _right_key), rng in zip(self.on, self._ranges):
            zone = zones.get(left_key)
            if zone is None:
                # the chunk holds no valid value for this key: no row matches
                return False
            left_is_cat = self.left_schema.type_of(left_key) is CATEGORICAL
            if left_is_cat != (rng[0] == "cat"):
                return False  # categorical never equals numeric
            if rng[0] == "num-empty":
                return False
            lo, hi = zone
            if rng[0] == "num":
                if lo > rng[2] or hi < rng[1]:
                    return False
            else:
                base_codes = self._base_key_codes(left_key, dictionaries[left_key])
                if not len(base_codes):
                    return False
                pos = int(np.searchsorted(base_codes, lo))
                if pos >= len(base_codes) or base_codes[pos] > hi:
                    return False
        return True

    def _base_key_codes(self, left_key: str, dictionary: np.ndarray) -> np.ndarray:
        """Sorted base-dictionary codes of the build side's key values."""
        cached = self._base_code_cache.get(left_key)
        if cached is None:
            rng = self._ranges[self.left_keys.index(left_key)]
            index = {text: code for code, text in enumerate(dictionary)}
            codes = [index[text] for text in rng[1] if text in index]
            cached = np.sort(np.asarray(codes, dtype=np.int64))
            self._base_code_cache[left_key] = cached
        return cached

    # -- per-chunk kernels -----------------------------------------------------

    def probe_chunk(self, chunk: Table) -> np.ndarray:
        """First-match index into the prepared right table for each chunk row."""
        left_key_columns = [chunk.column(k) for k in self.left_keys]
        return _match_first_occurrence(left_key_columns, self.right_key_columns)

    def gather(self, match_index: np.ndarray) -> list[Column]:
        """The augmented columns for one probed chunk, in output order."""
        matched = match_index >= 0
        return [
            _gather_right_column(self.right.column(right_name), name, match_index, matched)
            for right_name, name in self.output
        ]

    def null_columns(self, num_rows: int) -> list[Column]:
        """The augmented columns of a pruned chunk: all NULL, same schema.

        Identical to what :meth:`gather` returns for a chunk with no matches
        (categoricals keep the right table's dictionary), so pruned and probed
        chunks concatenate into exactly the unpruned result.
        """
        match_index = np.full(num_rows, -1, dtype=np.int64)
        return self.gather(match_index)

    def join_chunk(self, chunk: Table, pruned: bool = False) -> Table:
        """One chunk's slice of the full LEFT-join output."""
        if pruned:
            gathered = self.null_columns(chunk.num_rows)
        else:
            gathered = self.gather(self.probe_chunk(chunk))
        return Table(list(chunk.columns()) + gathered, name=chunk.name)


# per-process reader cache for chunk-parallel probing on the process backend
# (thread/serial backends share the source directly and never touch this)
_WORKER_SOURCES: dict = {}


def _resolve_worker_source(source_ref):
    if not isinstance(source_ref, tuple) or source_ref[0] != "file":
        return source_ref
    _tag, path, mmap = source_ref
    key = (path, mmap)
    reader = _WORKER_SOURCES.get(key)
    if reader is None:
        from repro.relational.persist import open_chunks

        reader = open_chunks(path, mmap=mmap)
        _WORKER_SOURCES[key] = reader
    return reader


def _probe_chunk_task(shared, index: int):
    """Executor task: probe + gather one chunk, returning its augmented columns."""
    joiner, source_ref = shared
    source = _resolve_worker_source(source_ref)
    chunk = source.chunk(index, columns=joiner.left_keys)
    match_index = joiner.probe_chunk(chunk)
    return int((match_index >= 0).sum()), joiner.gather(match_index)


def _source_ref(source):
    """A picklable handle for executor workers (file-backed sources reopen)."""
    path = getattr(source, "path", None)
    if path is not None:
        return ("file", str(path), getattr(source, "_mmap", True))
    return source


def _chunk_waves(
    indices: Sequence[int], costs: Sequence[int], memory_budget: int | None
) -> list[list[int]]:
    """Group chunk indices into waves whose summed cost fits the budget.

    Order is preserved and every wave holds at least one chunk, so a budget
    smaller than a single chunk degrades to chunk-at-a-time streaming rather
    than failing.
    """
    if memory_budget is None or memory_budget <= 0:
        return [list(indices)] if indices else []
    waves: list[list[int]] = []
    current: list[int] = []
    current_cost = 0
    for index, cost in zip(indices, costs):
        if current and current_cost + cost > memory_budget:
            waves.append(current)
            current = []
            current_cost = 0
        current.append(index)
        current_cost += cost
    if current:
        waves.append(current)
    return waves


def iter_streaming_left_join(
    source,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    executor=None,
    memory_budget: int | None = None,
    prune: bool = True,
    stats: StreamJoinStats | None = None,
) -> Iterator[Table]:
    """Yield the LEFT join of ``source`` (chunked) against ``right``, one
    output chunk at a time in base order.

    ``source`` is a :class:`~repro.relational.persist.ChunkedTableReader` or a
    :class:`Table`.  The build side is prepared once; each base chunk is then
    probed independently — skipped entirely when its zone map cannot intersect
    the build side's key range (``prune``) — and chunks are dispatched in
    waves whose estimated working set fits ``memory_budget`` bytes, fanned out
    over ``executor`` (any :class:`~repro.core.executor.JoinExecutor`).
    Concatenating the yielded chunks reproduces ``left_join(source.table(),
    right, on)`` row for row; pass ``stats`` to collect pruning accounting.
    """
    source = as_chunk_source(source)
    joiner = StreamingHashJoin(
        right,
        on,
        source.schema(),
        suffix=suffix,
        aggregate_duplicates=aggregate_duplicates,
        numeric_agg=numeric_agg,
        categorical_agg=categorical_agg,
    )
    if stats is None:
        stats = StreamJoinStats()
    stats.chunks_total += source.num_chunks
    stats.rows_total += source.num_rows

    cat_keys = [
        key for key in joiner.left_keys
        if source.schema().type_of(key) is CATEGORICAL
    ]
    pruned: list[bool] = []
    for index in range(source.num_chunks):
        zones = source.zones(index) if prune else None
        dictionaries = {key: source.dictionary(key) for key in cat_keys}
        pruned.append(not joiner.chunk_may_match(zones, dictionaries))

    extra_row_bytes = 8 * (len(joiner.output) + 2 * len(joiner.on))
    costs = []
    for index in range(source.num_chunks):
        start, stop = source.chunk_row_range(index)
        rows = stop - start
        costs.append(source.chunk_nbytes(index) + rows * extra_row_bytes)
    waves = _chunk_waves(list(range(source.num_chunks)), costs, memory_budget)

    use_pool = executor is not None and getattr(executor, "n_jobs", 1) > 1
    shared = (joiner, _source_ref(source)) if use_pool else None
    for wave in waves:
        gathered: dict[int, list[Column]] = {}
        to_probe = [index for index in wave if not pruned[index]]
        if use_pool and len(to_probe) > 1:
            results = executor.map_with_shared(_probe_chunk_task, shared, to_probe)
            for index, (matched, columns) in zip(to_probe, results):
                stats.rows_matched += matched
                gathered[index] = columns
        for index in wave:
            start, stop = source.chunk_row_range(index)
            rows = stop - start
            chunk = source.chunk(index)
            if pruned[index]:
                columns = joiner.null_columns(rows)
            elif index in gathered:
                columns = gathered[index]
            else:
                match_index = joiner.probe_chunk(chunk)
                stats.rows_matched += int((match_index >= 0).sum())
                columns = joiner.gather(match_index)
            if not pruned[index]:
                stats.chunks_probed += 1
                stats.rows_probed += rows
            yield Table(list(chunk.columns()) + columns, name=source.name)


def streaming_left_join(
    source,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    executor=None,
    memory_budget: int | None = None,
    prune: bool = True,
) -> tuple[Table, StreamJoinStats]:
    """LEFT-join a chunked source against ``right``, materialising the result.

    Equivalent to ``left_join(source.table(), right, on)`` — the same probe
    and gather kernels run per chunk and concatenate in chunk order — but the
    build side is prepared once, chunks stream under ``memory_budget``, and
    zone-map pruning skips chunks that cannot match.  Returns the joined
    table plus the pruning stats.  (The output itself is in memory; use
    :func:`repro.relational.persist.write_table_stream` over
    :func:`iter_streaming_left_join` to keep the result out-of-core.)
    """
    stats = StreamJoinStats()
    parts = list(
        iter_streaming_left_join(
            source,
            right,
            on,
            suffix=suffix,
            aggregate_duplicates=aggregate_duplicates,
            numeric_agg=numeric_agg,
            categorical_agg=categorical_agg,
            executor=executor,
            memory_budget=memory_budget,
            prune=prune,
            stats=stats,
        )
    )
    if len(parts) == 1:
        return parts[0], stats
    from repro.relational.column import concat_columns

    columns = [
        concat_columns([part.column(name) for part in parts])
        for name in parts[0].column_names
    ]
    return Table(columns, name=parts[0].name), stats


def streaming_match_fraction(
    source, right: Table, on: Sequence[tuple[str, str]]
) -> tuple[float, StreamJoinStats]:
    """Out-of-core :func:`join_match_fraction` with full chunk skipping.

    Reads only the key columns of chunks that survive zone pruning; a pruned
    chunk contributes zero matches without touching a single page.
    """
    source = as_chunk_source(source)
    stats = StreamJoinStats(chunks_total=source.num_chunks, rows_total=source.num_rows)
    if not on or source.num_rows == 0:
        return 0.0, stats
    joiner = StreamingHashJoin(right, on, source.schema())
    cat_keys = [
        key for key in joiner.left_keys
        if source.schema().type_of(key) is CATEGORICAL
    ]
    matched = 0
    for index in range(source.num_chunks):
        zones = source.zones(index)
        dictionaries = {key: source.dictionary(key) for key in cat_keys}
        if not joiner.chunk_may_match(zones, dictionaries):
            continue
        chunk = source.chunk(index, columns=joiner.left_keys)
        match_index = joiner.probe_chunk(chunk)
        matched += int((match_index >= 0).sum())
        stats.chunks_probed += 1
        stats.rows_probed += chunk.num_rows
    stats.rows_matched = matched
    return matched / source.num_rows, stats
