"""Hash LEFT joins on hard keys.

Only LEFT joins are implemented because they are the only join type suitable
for data augmentation: every base-table row (training example) is preserved and
unmatched rows get NULLs, which are later imputed (paper section 4, "Joins").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.relational.aggregate import group_by_aggregate, is_unique_on
from repro.relational.column import Column, remap_dictionary
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table, unique_name


def _key_tuple(columns: Sequence[Column], index: int) -> tuple:
    """Hashable key tuple for one row (missing values collapse to None)."""
    parts = []
    for col in columns:
        value = col.values[index]
        if col.ctype is CATEGORICAL:
            parts.append(value)
        else:
            parts.append(None if np.isnan(value) else float(value))
    return tuple(parts)


def _build_hash_index(columns: Sequence[Column]) -> dict[tuple, int]:
    """Map each key tuple to the first row index where it appears."""
    index: dict[tuple, int] = {}
    n = len(columns[0]) if columns else 0
    for i in range(n):
        key = _key_tuple(columns, i)
        if None in key:
            continue
        if key not in index:
            index[key] = i
    return index


def _factorize_pair(
    left_col: Column, right_col: Column
) -> tuple[np.ndarray, np.ndarray] | None:
    """Encode one key-column pair into shared integer codes (-1 = missing).

    Returns ``None`` when the pair can never match (categorical against
    numeric), mirroring how tuple equality across those types always fails.

    Categorical pairs never touch row-level strings: the two dictionaries are
    reconciled into one shared code space (a dictionary is tiny compared to the
    rows), and the stored code arrays are translated with one integer gather.
    """
    left_is_cat = left_col.ctype is CATEGORICAL
    if left_is_cat != (right_col.ctype is CATEGORICAL):
        return None
    if left_is_cat:
        shared: dict[str, int] = {
            text: code for code, text in enumerate(left_col.dictionary)
        }
        translate = remap_dictionary(right_col.dictionary, shared)
        left_code = left_col.codes.astype(np.int64)
        right_code = translate[right_col.codes].astype(np.int64)
        return left_code, right_code
    left_valid = ~left_col.missing_mask()
    right_valid = ~right_col.missing_mask()
    left_values = left_col.values[left_valid]
    right_values = right_col.values[right_valid]
    _, inverse = np.unique(
        np.concatenate([left_values, right_values]), return_inverse=True
    )
    left_code = np.full(len(left_col), -1, dtype=np.int64)
    right_code = np.full(len(right_col), -1, dtype=np.int64)
    left_code[left_valid] = inverse[: len(left_values)]
    right_code[right_valid] = inverse[len(left_values):]
    return left_code, right_code


def _match_first_occurrence(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> np.ndarray:
    """Vectorised hash-join probe: first matching right row per left row.

    Replicates ``_build_hash_index`` + per-row lookup (first right occurrence
    wins, rows with a missing key part never match) without the per-row Python
    loop: each key pair is factorised into shared integer codes, composite keys
    are packed mixed-radix into one int64, and the probe becomes a
    ``searchsorted`` against the first occurrence of each right key.  Falls
    back to the dict-based path if the packed codes would overflow int64
    (only possible for very wide composite keys over huge domains).
    """
    n_left = len(left_columns[0])
    n_right = len(right_columns[0])
    left_code = np.zeros(n_left, dtype=np.int64)
    right_code = np.zeros(n_right, dtype=np.int64)
    left_ok = np.ones(n_left, dtype=bool)
    right_ok = np.ones(n_right, dtype=bool)
    span = 1
    for left_col, right_col in zip(left_columns, right_columns):
        pair = _factorize_pair(left_col, right_col)
        if pair is None:
            return np.full(n_left, -1, dtype=np.int64)
        codes_left, codes_right = pair
        radix = int(max(codes_left.max(initial=-1), codes_right.max(initial=-1))) + 2
        span *= radix
        if span > 2**62:
            return _match_via_hash_index(left_columns, right_columns)
        left_ok &= codes_left >= 0
        right_ok &= codes_right >= 0
        left_code = left_code * radix + (codes_left + 1)
        right_code = right_code * radix + (codes_right + 1)

    match_index = np.full(n_left, -1, dtype=np.int64)
    right_rows = np.nonzero(right_ok)[0]
    if not len(right_rows):
        return match_index
    order = np.argsort(right_code[right_rows], kind="stable")
    sorted_keys = right_code[right_rows][order]
    sorted_rows = right_rows[order]
    is_first = np.ones(len(sorted_keys), dtype=bool)
    is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    unique_keys = sorted_keys[is_first]
    first_rows = sorted_rows[is_first]

    left_rows = np.nonzero(left_ok)[0]
    probe = left_code[left_rows]
    positions = np.searchsorted(unique_keys, probe)
    in_range = positions < len(unique_keys)
    clipped = np.clip(positions, 0, len(unique_keys) - 1)
    hit = in_range & (unique_keys[clipped] == probe)
    match_index[left_rows[hit]] = first_rows[clipped[hit]]
    return match_index


def _match_via_hash_index(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> np.ndarray:
    """Reference dict-based probe (kept as the overflow fallback)."""
    hash_index = _build_hash_index(right_columns)
    n = len(left_columns[0])
    match_index = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        key = _key_tuple(left_columns, i)
        if None in key:
            continue
        match_index[i] = hash_index.get(key, -1)
    return match_index


def left_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
) -> Table:
    """LEFT-join ``right`` onto ``left`` on the given key pairs.

    ``on`` is a sequence of ``(left_column, right_column)`` pairs (composite
    keys are supported by passing more than one pair).  If the right table is
    not unique on its key columns and ``aggregate_duplicates`` is True, it is
    first pre-aggregated so the join cannot duplicate base-table rows; if
    ``aggregate_duplicates`` is False the first matching right row wins.

    The right key columns themselves are not copied into the output (the left
    key already carries that information).  Other right columns that clash
    with left column names get ``suffix`` appended.
    """
    if not on:
        raise ValueError("left_join requires at least one key pair")
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    for key in left_keys:
        left.column(key)
    for key in right_keys:
        right.column(key)

    if aggregate_duplicates and right.num_rows and not is_unique_on(right, right_keys):
        right = group_by_aggregate(
            right, right_keys, numeric_agg=numeric_agg, categorical_agg=categorical_agg
        )

    right_key_columns = [right.column(k) for k in right_keys]
    left_key_columns = [left.column(k) for k in left_keys]
    match_index = _match_first_occurrence(left_key_columns, right_key_columns)
    matched = match_index >= 0

    out_columns = list(left.columns())
    existing = set(left.column_names)
    right_key_set = set(right_keys)
    for col in right.columns():
        if col.name in right_key_set:
            continue
        name = unique_name(col.name, existing, suffix)
        existing.add(name)
        out_columns.append(_gather_right_column(col, name, match_index, matched))
    return Table(out_columns, name=left.name)


def _gather_right_column(
    col: Column, name: str, match_index: np.ndarray, matched: np.ndarray
) -> Column:
    """Pull right-table values into left-row order, NULL where unmatched.

    Categorical columns are gathered as int32 codes sharing the right column's
    dictionary — no string is touched during join materialisation.
    """
    n = len(match_index)
    if col.ctype is CATEGORICAL:
        out = np.full(n, -1, dtype=np.int32)
        if matched.any():
            out[matched] = col.codes[match_index[matched]]
        return Column.from_codes(name, out, col.dictionary)
    out = np.full(n, np.nan, dtype=np.float64)
    if matched.any():
        out[matched] = col.values[match_index[matched]]
    return Column.from_array(name, out, col.ctype)


def join_match_fraction(
    left: Table, right: Table, on: Sequence[tuple[str, str]]
) -> float:
    """Fraction of left rows whose key tuple appears in the right table.

    Used by the join-discovery scorer as a cheap intersection score.
    """
    if not on or left.num_rows == 0:
        return 0.0
    match_index = _match_first_occurrence(
        [left.column(pair[0]) for pair in on],
        [right.column(pair[1]) for pair in on],
    )
    return float(np.mean(match_index >= 0))
