"""Hash LEFT joins on hard keys.

Only LEFT joins are implemented because they are the only join type suitable
for data augmentation: every base-table row (training example) is preserved and
unmatched rows get NULLs, which are later imputed (paper section 4, "Joins").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.relational.aggregate import group_by_aggregate, is_unique_on
from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table


def _key_tuple(columns: Sequence[Column], index: int) -> tuple:
    """Hashable key tuple for one row (missing values collapse to None)."""
    parts = []
    for col in columns:
        value = col.values[index]
        if col.ctype is CATEGORICAL:
            parts.append(value)
        else:
            parts.append(None if np.isnan(value) else float(value))
    return tuple(parts)


def _build_hash_index(columns: Sequence[Column]) -> dict[tuple, int]:
    """Map each key tuple to the first row index where it appears."""
    index: dict[tuple, int] = {}
    n = len(columns[0]) if columns else 0
    for i in range(n):
        key = _key_tuple(columns, i)
        if None in key:
            continue
        if key not in index:
            index[key] = i
    return index


def left_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
) -> Table:
    """LEFT-join ``right`` onto ``left`` on the given key pairs.

    ``on`` is a sequence of ``(left_column, right_column)`` pairs (composite
    keys are supported by passing more than one pair).  If the right table is
    not unique on its key columns and ``aggregate_duplicates`` is True, it is
    first pre-aggregated so the join cannot duplicate base-table rows; if
    ``aggregate_duplicates`` is False the first matching right row wins.

    The right key columns themselves are not copied into the output (the left
    key already carries that information).  Other right columns that clash
    with left column names get ``suffix`` appended.
    """
    if not on:
        raise ValueError("left_join requires at least one key pair")
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    for key in left_keys:
        left.column(key)
    for key in right_keys:
        right.column(key)

    if aggregate_duplicates and right.num_rows and not is_unique_on(right, right_keys):
        right = group_by_aggregate(
            right, right_keys, numeric_agg=numeric_agg, categorical_agg=categorical_agg
        )

    right_key_columns = [right.column(k) for k in right_keys]
    hash_index = _build_hash_index(right_key_columns)

    left_key_columns = [left.column(k) for k in left_keys]
    n = left.num_rows
    match_index = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        key = _key_tuple(left_key_columns, i)
        if None in key:
            continue
        match_index[i] = hash_index.get(key, -1)
    matched = match_index >= 0

    out_columns = list(left.columns())
    existing = set(left.column_names)
    right_key_set = set(right_keys)
    for col in right.columns():
        if col.name in right_key_set:
            continue
        name = col.name
        while name in existing:
            name = name + suffix
        existing.add(name)
        out_columns.append(_gather_right_column(col, name, match_index, matched))
    return Table(out_columns, name=left.name)


def _gather_right_column(
    col: Column, name: str, match_index: np.ndarray, matched: np.ndarray
) -> Column:
    """Pull right-table values into left-row order, NULL where unmatched."""
    n = len(match_index)
    if col.ctype is CATEGORICAL:
        out = np.empty(n, dtype=object)
        out[:] = None
        if matched.any():
            out[matched] = col.values[match_index[matched]]
        return Column.from_array(name, out, col.ctype)
    out = np.full(n, np.nan, dtype=np.float64)
    if matched.any():
        out[matched] = col.values[match_index[matched]]
    return Column.from_array(name, out, col.ctype)


def join_match_fraction(
    left: Table, right: Table, on: Sequence[tuple[str, str]]
) -> float:
    """Fraction of left rows whose key tuple appears in the right table.

    Used by the join-discovery scorer as a cheap intersection score.
    """
    if not on or left.num_rows == 0:
        return 0.0
    right_key_columns = [right.column(pair[1]) for pair in on]
    keys = set(_build_hash_index(right_key_columns))
    left_key_columns = [left.column(pair[0]) for pair in on]
    hits = 0
    for i in range(left.num_rows):
        key = _key_tuple(left_key_columns, i)
        if None not in key and key in keys:
            hits += 1
    return hits / left.num_rows
