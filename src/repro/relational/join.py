"""Hash LEFT joins on hard keys, in-memory and streaming.

Only LEFT joins are implemented because they are the only join type suitable
for data augmentation: every base-table row (training example) is preserved and
unmatched rows get NULLs, which are later imputed (paper section 4, "Joins").

Besides the whole-table :func:`left_join`, this module provides the
out-of-core path: :class:`StreamingHashJoin` prepares the (small) build side
once — pre-aggregation, output naming, per-key value ranges — and probes the
(large) base table one row group at a time through a
:class:`~repro.relational.persist.ChunkedTableReader`.  Chunks whose zone map
cannot intersect the build side's key range are **pruned**: their probe and
gather are skipped entirely and they contribute all-NULL augmented columns,
which is exactly what the full probe would have produced (a LEFT join keeps
every base row, so pruning a chunk removes work, never rows).  Because each
chunk is probed with the same kernels as the in-memory join and the outputs
are concatenated in chunk order, :func:`streaming_left_join` is equivalent to
``left_join`` row for row, while peak memory stays bounded by a chunk wave
(``memory_budget``) instead of the base table.  Independent chunks of one
join fan out across any :class:`~repro.core.executor.JoinExecutor` backend.

When the *build* side itself exceeds the memory budget the join switches to
a Grace-style partitioned mode (:func:`grace_left_join`): both sides are
hash-partitioned on the key values into spill files
(:func:`~repro.relational.persist.write_table_stream`), each partition pair
is joined independently with the same kernels, and the per-partition outputs
are merged back into base-row order — peak heap stays bounded by one
partition plus one base chunk, and the output is byte-identical to
``left_join`` (same values, same dictionaries).  Sources whose file is
sort-ordered on a join key (``sort_by``) prune their candidate chunk range
with two binary searches over the zone bounds instead of scanning every zone
entry.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from queue import Queue
from typing import Iterator, Sequence

import numpy as np

from repro.relational.aggregate import group_by_aggregate, is_unique_on
from repro.relational.column import Column, remap_dictionary
from repro.relational.schema import CATEGORICAL, NUMERIC, Schema
from repro.relational.table import Table, unique_name


def _key_tuple(columns: Sequence[Column], index: int) -> tuple:
    """Hashable key tuple for one row (missing values collapse to None)."""
    parts = []
    for col in columns:
        value = col.values[index]
        if col.ctype is CATEGORICAL:
            parts.append(value)
        else:
            parts.append(None if np.isnan(value) else float(value))
    return tuple(parts)


def _build_hash_index(columns: Sequence[Column]) -> dict[tuple, int]:
    """Map each key tuple to the first row index where it appears."""
    index: dict[tuple, int] = {}
    n = len(columns[0]) if columns else 0
    for i in range(n):
        key = _key_tuple(columns, i)
        if None in key:
            continue
        if key not in index:
            index[key] = i
    return index


def _factorize_pair(
    left_col: Column, right_col: Column
) -> tuple[np.ndarray, np.ndarray] | None:
    """Encode one key-column pair into shared integer codes (-1 = missing).

    Returns ``None`` when the pair can never match (categorical against
    numeric), mirroring how tuple equality across those types always fails.

    Categorical pairs never touch row-level strings: the two dictionaries are
    reconciled into one shared code space (a dictionary is tiny compared to the
    rows), and the stored code arrays are translated with one integer gather.
    """
    left_is_cat = left_col.ctype is CATEGORICAL
    if left_is_cat != (right_col.ctype is CATEGORICAL):
        return None
    if left_is_cat:
        shared: dict[str, int] = {
            text: code for code, text in enumerate(left_col.dictionary)
        }
        translate = remap_dictionary(right_col.dictionary, shared)
        left_code = left_col.codes.astype(np.int64)
        right_code = translate[right_col.codes].astype(np.int64)
        return left_code, right_code
    left_valid = ~left_col.missing_mask()
    right_valid = ~right_col.missing_mask()
    left_values = left_col.values[left_valid]
    right_values = right_col.values[right_valid]
    _, inverse = np.unique(
        np.concatenate([left_values, right_values]), return_inverse=True
    )
    left_code = np.full(len(left_col), -1, dtype=np.int64)
    right_code = np.full(len(right_col), -1, dtype=np.int64)
    left_code[left_valid] = inverse[: len(left_values)]
    right_code[right_valid] = inverse[len(left_values):]
    return left_code, right_code


def _match_first_occurrence(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> np.ndarray:
    """Vectorised hash-join probe: first matching right row per left row.

    Replicates ``_build_hash_index`` + per-row lookup (first right occurrence
    wins, rows with a missing key part never match) without the per-row Python
    loop: each key pair is factorised into shared integer codes, composite keys
    are packed mixed-radix into one int64, and the probe becomes a
    ``searchsorted`` against the first occurrence of each right key.  Falls
    back to the dict-based path if the packed codes would overflow int64
    (only possible for very wide composite keys over huge domains).
    """
    n_left = len(left_columns[0])
    n_right = len(right_columns[0])
    left_code = np.zeros(n_left, dtype=np.int64)
    right_code = np.zeros(n_right, dtype=np.int64)
    left_ok = np.ones(n_left, dtype=bool)
    right_ok = np.ones(n_right, dtype=bool)
    span = 1
    for left_col, right_col in zip(left_columns, right_columns):
        pair = _factorize_pair(left_col, right_col)
        if pair is None:
            return np.full(n_left, -1, dtype=np.int64)
        codes_left, codes_right = pair
        radix = int(max(codes_left.max(initial=-1), codes_right.max(initial=-1))) + 2
        span *= radix
        if span > 2**62:
            return _match_via_hash_index(left_columns, right_columns)
        left_ok &= codes_left >= 0
        right_ok &= codes_right >= 0
        left_code = left_code * radix + (codes_left + 1)
        right_code = right_code * radix + (codes_right + 1)

    match_index = np.full(n_left, -1, dtype=np.int64)
    right_rows = np.nonzero(right_ok)[0]
    if not len(right_rows):
        return match_index
    order = np.argsort(right_code[right_rows], kind="stable")
    sorted_keys = right_code[right_rows][order]
    sorted_rows = right_rows[order]
    is_first = np.ones(len(sorted_keys), dtype=bool)
    is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    unique_keys = sorted_keys[is_first]
    first_rows = sorted_rows[is_first]

    left_rows = np.nonzero(left_ok)[0]
    probe = left_code[left_rows]
    positions = np.searchsorted(unique_keys, probe)
    in_range = positions < len(unique_keys)
    clipped = np.clip(positions, 0, len(unique_keys) - 1)
    hit = in_range & (unique_keys[clipped] == probe)
    match_index[left_rows[hit]] = first_rows[clipped[hit]]
    return match_index


def _match_via_hash_index(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> np.ndarray:
    """Reference dict-based probe (kept as the overflow fallback)."""
    hash_index = _build_hash_index(right_columns)
    n = len(left_columns[0])
    match_index = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        key = _key_tuple(left_columns, i)
        if None in key:
            continue
        match_index[i] = hash_index.get(key, -1)
    return match_index


def left_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
) -> Table:
    """LEFT-join ``right`` onto ``left`` on the given key pairs.

    ``on`` is a sequence of ``(left_column, right_column)`` pairs (composite
    keys are supported by passing more than one pair).  If the right table is
    not unique on its key columns and ``aggregate_duplicates`` is True, it is
    first pre-aggregated so the join cannot duplicate base-table rows; if
    ``aggregate_duplicates`` is False the first matching right row wins.

    The right key columns themselves are not copied into the output (the left
    key already carries that information).  Other right columns that clash
    with left column names get ``suffix`` appended.
    """
    if not on:
        raise ValueError("left_join requires at least one key pair")
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    for key in left_keys:
        left.column(key)
    right = _prepare_right(
        right, right_keys, aggregate_duplicates, numeric_agg, categorical_agg
    )

    right_key_columns = [right.column(k) for k in right_keys]
    left_key_columns = [left.column(k) for k in left_keys]
    match_index = _match_first_occurrence(left_key_columns, right_key_columns)
    matched = match_index >= 0

    out_columns = list(left.columns())
    for right_name, out_name in _output_names(right, right_keys, left.column_names, suffix):
        out_columns.append(
            _gather_right_column(right.column(right_name), out_name, match_index, matched)
        )
    return Table(out_columns, name=left.name)


def _prepare_right(
    right: Table,
    right_keys: Sequence[str],
    aggregate_duplicates: bool,
    numeric_agg: str,
    categorical_agg: str,
) -> Table:
    """Validate and (if needed) pre-aggregate the build side of a LEFT join."""
    for key in right_keys:
        right.column(key)
    if aggregate_duplicates and right.num_rows and not is_unique_on(right, right_keys):
        right = group_by_aggregate(
            right, right_keys, numeric_agg=numeric_agg, categorical_agg=categorical_agg
        )
    return right


def _output_names(
    right: Table,
    right_keys: Sequence[str],
    left_names: Sequence[str],
    suffix: str,
) -> list[tuple[str, str]]:
    """``(right column, output name)`` pairs, exactly as ``left_join`` assigns
    them: right key columns are dropped, clashes get ``suffix`` appended."""
    existing = set(left_names)
    right_key_set = set(right_keys)
    out: list[tuple[str, str]] = []
    for col in right.columns():
        if col.name in right_key_set:
            continue
        name = unique_name(col.name, existing, suffix)
        existing.add(name)
        out.append((col.name, name))
    return out


def _gather_right_column(
    col: Column, name: str, match_index: np.ndarray, matched: np.ndarray
) -> Column:
    """Pull right-table values into left-row order, NULL where unmatched.

    Categorical columns are gathered as int32 codes sharing the right column's
    dictionary — no string is touched during join materialisation.
    """
    n = len(match_index)
    if col.ctype is CATEGORICAL:
        out = np.full(n, -1, dtype=np.int32)
        if matched.any():
            out[matched] = col.codes[match_index[matched]]
        return Column.from_codes(name, out, col.dictionary)
    out = np.full(n, np.nan, dtype=np.float64)
    if matched.any():
        out[matched] = col.values[match_index[matched]]
    return Column.from_array(name, out, col.ctype)


def join_match_fraction(
    left: Table, right: Table, on: Sequence[tuple[str, str]]
) -> float:
    """Fraction of left rows whose key tuple appears in the right table.

    Used by the join-discovery scorer as a cheap intersection score.
    """
    if not on or left.num_rows == 0:
        return 0.0
    match_index = _match_first_occurrence(
        [left.column(pair[0]) for pair in on],
        [right.column(pair[1]) for pair in on],
    )
    return float(np.mean(match_index >= 0))


# -- streaming, pruned, chunk-parallel join -----------------------------------


@dataclass
class StreamJoinStats:
    """Pruning and coverage accounting of one streaming join.

    ``chunks_probed`` counts row groups whose key pages were actually read and
    probed against the build side; the remaining ``chunks_pruned`` were
    skipped on zone-map evidence alone (header bytes, no page reads) and
    contributed all-NULL augmented columns without any probe or gather work.
    """

    chunks_total: int = 0
    chunks_probed: int = 0
    rows_total: int = 0
    rows_probed: int = 0
    rows_matched: int = 0
    # Grace spill accounting (zero for joins that never partitioned):
    # partitions used, and payload bytes written to / read back from spill
    # files across both sides and the per-partition outputs.
    spill_partitions: int = 0
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0

    @property
    def chunks_pruned(self) -> int:
        return self.chunks_total - self.chunks_probed

    @property
    def pruning_ratio(self) -> float:
        """Fraction of chunks skipped by zone-map pruning (0.0 when unknown)."""
        if not self.chunks_total:
            return 0.0
        return self.chunks_pruned / self.chunks_total

    def merge(self, other: "StreamJoinStats") -> "StreamJoinStats":
        """Elementwise sum — used to aggregate stats across several joins."""
        return StreamJoinStats(
            chunks_total=self.chunks_total + other.chunks_total,
            chunks_probed=self.chunks_probed + other.chunks_probed,
            rows_total=self.rows_total + other.rows_total,
            rows_probed=self.rows_probed + other.rows_probed,
            rows_matched=self.rows_matched + other.rows_matched,
            spill_partitions=self.spill_partitions + other.spill_partitions,
            spill_bytes_written=self.spill_bytes_written + other.spill_bytes_written,
            spill_bytes_read=self.spill_bytes_read + other.spill_bytes_read,
        )

    def record_to(self, registry=None, prefix: str = "stream_join") -> None:
        """Add this join's accounting to a metrics registry's counters.

        Each field increments the ``{prefix}.{field}`` counter on the given
        registry (default: the process-wide
        :func:`repro.observability.get_registry`), so repeated joins
        accumulate process totals while this object keeps reporting its own
        run unchanged.
        """
        from repro.observability import get_registry

        registry = registry if registry is not None else get_registry()
        registry.counter(f"{prefix}.chunks_total").inc(self.chunks_total)
        registry.counter(f"{prefix}.chunks_probed").inc(self.chunks_probed)
        registry.counter(f"{prefix}.chunks_pruned").inc(self.chunks_pruned)
        registry.counter(f"{prefix}.rows_total").inc(self.rows_total)
        registry.counter(f"{prefix}.rows_probed").inc(self.rows_probed)
        registry.counter(f"{prefix}.rows_matched").inc(self.rows_matched)
        # spill accounting lives under a fixed namespace so `/metrics` readers
        # find one `join.spill.*` family no matter which prefix the caller used
        if self.spill_partitions or self.spill_bytes_written or self.spill_bytes_read:
            registry.counter("join.spill.partitions").inc(self.spill_partitions)
            registry.counter("join.spill.bytes_written").inc(self.spill_bytes_written)
            registry.counter("join.spill.bytes_read").inc(self.spill_bytes_read)


class _TableChunkSource:
    """Adapt an in-memory :class:`Table` to the chunk-source protocol.

    Lets every streaming consumer treat "a table already in RAM" as a
    single-chunk (or, with ``chunk_rows``, evenly sliced) source with no zone
    maps — in-memory sources are never pruned, matching the semantics of a
    monolithic version-1 file.
    """

    def __init__(self, table: Table, chunk_rows: int | None = None):
        self._table = table
        n = table.num_rows
        if chunk_rows is None or chunk_rows <= 0 or chunk_rows >= n:
            self._bounds = [(0, n)]
        else:
            self._bounds = [
                (start, min(start + chunk_rows, n)) for start in range(0, n, chunk_rows)
            ]
        self.has_zones = False

    @property
    def name(self) -> str:
        return self._table.name

    @property
    def num_rows(self) -> int:
        return self._table.num_rows

    @property
    def num_chunks(self) -> int:
        return len(self._bounds)

    @property
    def column_names(self) -> list[str]:
        return self._table.column_names

    def __contains__(self, name: str) -> bool:
        return name in self._table.column_names

    def schema(self) -> Schema:
        return self._table.schema()

    def zones(self, index: int):
        return None

    def chunk_row_range(self, index: int) -> tuple[int, int]:
        return self._bounds[index]

    def chunk_nbytes(self, index: int) -> int:
        start, stop = self._bounds[index]
        return (stop - start) * 8 * max(1, len(self._table.column_names))

    def chunk(self, index: int, columns: Sequence[str] | None = None) -> Table:
        start, stop = self._bounds[index]
        part = self._table if (start, stop) == (0, self.num_rows) else self._table.take(
            np.arange(start, stop)
        )
        return part.select(list(columns)) if columns is not None else part

    def iter_chunks(self, columns: Sequence[str] | None = None) -> Iterator[Table]:
        for index in range(self.num_chunks):
            yield self.chunk(index, columns)

    def table(self) -> Table:
        return self._table

    def column(self, name: str) -> Column:
        return self._table.column(name)

    def take(self, indices) -> Table:
        return self._table.take(indices)

    def dictionary(self, name: str) -> np.ndarray:
        return self._table.column(name).dictionary


def as_chunk_source(source, chunk_rows: int | None = None):
    """Coerce a join/profiling source to the chunk protocol.

    Accepts a :class:`~repro.relational.persist.ChunkedTableReader` (returned
    unchanged), or an in-memory :class:`Table` (wrapped so it presents as an
    unpruned chunk sequence).
    """
    if isinstance(source, Table):
        return _TableChunkSource(source, chunk_rows)
    if hasattr(source, "iter_chunks"):
        return source
    raise TypeError(
        f"expected a Table or a chunked table reader, got {type(source).__name__}"
    )


class KeyRangePruner:
    """Zone-map pruning against a build side known only by its key ranges.

    Decouples "can any row of this chunk match?" from holding the build table
    itself: :class:`StreamingHashJoin` instantiates one from the prepared
    right table, and the Grace spill join instantiates one from ranges
    gathered while streaming the right side — without ever materialising it.

    ``ranges`` holds one entry per key pair: ``("num", lo, hi)`` for numeric
    keys with at least one valid value, ``("num-empty",)`` when the build key
    has no valid value, and ``("cat", values)`` with the build side's distinct
    strings for categorical keys.
    """

    def __init__(self, on, left_schema: Schema, ranges: Sequence[tuple]):
        self.on = [(left, right) for left, right in on]
        self.left_keys = [pair[0] for pair in self.on]
        self.left_schema = left_schema
        self.ranges = list(ranges)
        self._base_code_cache: dict[str, np.ndarray] = {}

    @property
    def cat_keys(self) -> list[str]:
        """Left key columns that need a source dictionary at prune time."""
        return [
            key
            for key in self.left_keys
            if self.left_schema.type_of(key) is CATEGORICAL
        ]

    def chunk_may_match(self, zones, dictionaries) -> bool:
        """Whether any row of a chunk with these zones can match the build side.

        ``zones`` is the chunk's per-column ``(min, max)`` map (``None`` when
        the source carries no zone map — never prune then); ``dictionaries``
        maps categorical left-key names to the source's file-level dictionary.
        Conservative by construction: ``True`` on any uncertainty.
        """
        if zones is None:
            return True
        for (left_key, _right_key), rng in zip(self.on, self.ranges):
            zone = zones.get(left_key)
            if zone is None:
                # the chunk holds no valid value for this key: no row matches
                return False
            left_is_cat = self.left_schema.type_of(left_key) is CATEGORICAL
            if left_is_cat != (rng[0] == "cat"):
                return False  # categorical never equals numeric
            if rng[0] == "num-empty":
                return False
            lo, hi = zone
            if rng[0] == "num":
                if lo > rng[2] or hi < rng[1]:
                    return False
            else:
                base_codes = self._base_key_codes(left_key, dictionaries[left_key])
                if not len(base_codes):
                    return False
                pos = int(np.searchsorted(base_codes, lo))
                if pos >= len(base_codes) or base_codes[pos] > hi:
                    return False
        return True

    def _base_key_codes(self, left_key: str, dictionary: np.ndarray) -> np.ndarray:
        """Sorted base-dictionary codes of the build side's key values."""
        cached = self._base_code_cache.get(left_key)
        if cached is None:
            rng = self.ranges[self.left_keys.index(left_key)]
            index = {text: code for code, text in enumerate(dictionary)}
            codes = [index[text] for text in rng[1] if text in index]
            cached = np.sort(np.asarray(codes, dtype=np.int64))
            self._base_code_cache[left_key] = cached
        return cached

    def sorted_window(self, source) -> tuple[int, int] | None:
        """Half-open candidate chunk range of a sort-ordered source, or ``None``.

        When the source file is ordered by a numeric left key
        (``source.sort_by``), two binary searches over the per-chunk zone
        bounds replace the linear zone scan: every chunk outside the returned
        window provably cannot match (chunks inside still go through
        :meth:`chunk_may_match` for the remaining keys).  ``None`` means the
        fast path does not apply — prune chunk-by-chunk as before.
        """
        sort_key = getattr(source, "sort_by", None)
        if sort_key is None or sort_key not in self.left_keys:
            return None
        bounds_of = getattr(source, "zone_bounds", None)
        if bounds_of is None:
            return None
        if self.left_schema.type_of(sort_key) is CATEGORICAL:
            return None
        rng = self.ranges[self.left_keys.index(sort_key)]
        if rng[0] != "num":
            # empty or type-mismatched build key: nothing can ever match
            return (0, 0)
        bounds = bounds_of(sort_key)
        if bounds is None:
            return None
        mins, maxes = bounds
        # maxes non-decreasing: chunks whose max >= lo form a suffix;
        # mins non-decreasing: chunks whose min <= hi form a prefix
        first = int(np.searchsorted(maxes, rng[1], side="left"))
        last = int(np.searchsorted(mins, rng[2], side="right"))
        return (first, max(first, last))


def build_key_ranges(key_columns: Sequence[Column]) -> list[tuple]:
    """The :class:`KeyRangePruner` ranges of one prepared build side."""
    ranges: list[tuple] = []
    for rcol in key_columns:
        if rcol.ctype is CATEGORICAL:
            codes = rcol.codes
            present = np.unique(codes[codes >= 0])
            ranges.append(("cat", [rcol.dictionary[c] for c in present]))
        else:
            values = rcol.values
            valid = values[~np.isnan(values)]
            if len(valid):
                ranges.append(("num", float(valid.min()), float(valid.max())))
            else:
                ranges.append(("num-empty",))
    return ranges


def _pruned_flags(source, pruner: KeyRangePruner, prune: bool) -> list[bool]:
    """Per-chunk "provably cannot match" flags for one source.

    Combines the sorted binary-search window (when the source is
    sort-ordered on a numeric key) with the per-chunk zone checks; without a
    window this is exactly the previous linear zone scan.
    """
    n = source.num_chunks
    if not prune:
        return [False] * n
    window = pruner.sorted_window(source)
    dictionaries = {key: source.dictionary(key) for key in pruner.cat_keys}
    flags: list[bool] = []
    for index in range(n):
        if window is not None and not (window[0] <= index < window[1]):
            flags.append(True)
            continue
        flags.append(not pruner.chunk_may_match(source.zones(index), dictionaries))
    return flags


@dataclass
class StreamingHashJoin:
    """Build-once probe-many LEFT join against one prepared right table.

    The constructor does all the per-join work that must happen exactly once:
    right-side validation and pre-aggregation, output-column naming against
    the left schema (identical to :func:`left_join`'s assignment), and the
    build side's per-key value ranges used for zone-map pruning.  Each
    :meth:`probe_chunk` / :meth:`join_chunk` call then handles one base chunk
    independently — the object is picklable, so chunks can fan out across
    process pools with the build side shipped once per worker.
    """

    right: Table
    on: Sequence[tuple[str, str]]
    left_schema: Schema
    suffix: str = "_r"
    aggregate_duplicates: bool = True
    numeric_agg: str = "mean"
    categorical_agg: str = "mode"
    output: list[tuple[str, str]] = field(init=False)

    def __post_init__(self):
        if not self.on:
            raise ValueError("StreamingHashJoin requires at least one key pair")
        self.on = [(left, right) for left, right in self.on]
        self.left_keys = [pair[0] for pair in self.on]
        self.right_keys = [pair[1] for pair in self.on]
        for key in self.left_keys:
            if key not in self.left_schema:
                raise KeyError(f"left source has no key column {key!r}")
        self.right = _prepare_right(
            self.right,
            self.right_keys,
            self.aggregate_duplicates,
            self.numeric_agg,
            self.categorical_agg,
        )
        self.right_key_columns = [self.right.column(k) for k in self.right_keys]
        self.output = _output_names(
            self.right, self.right_keys, self.left_schema.names, self.suffix
        )
        # build-side key ranges for zone pruning: numeric keys keep (min, max)
        # over valid values; categorical keys keep their distinct strings (a
        # chunk's code zone is translated through the base dictionary at prune
        # time).  An empty range means no base row can ever match.
        self.pruner = KeyRangePruner(
            self.on, self.left_schema, build_key_ranges(self.right_key_columns)
        )

    @property
    def output_names(self) -> list[str]:
        """Names of the augmented columns this join adds, in output order."""
        return [name for _right_name, name in self.output]

    # -- zone pruning ----------------------------------------------------------

    def chunk_may_match(self, zones, dictionaries) -> bool:
        """See :meth:`KeyRangePruner.chunk_may_match` (delegated)."""
        return self.pruner.chunk_may_match(zones, dictionaries)

    # -- per-chunk kernels -----------------------------------------------------

    def probe_chunk(self, chunk: Table) -> np.ndarray:
        """First-match index into the prepared right table for each chunk row."""
        left_key_columns = [chunk.column(k) for k in self.left_keys]
        return _match_first_occurrence(left_key_columns, self.right_key_columns)

    def gather(self, match_index: np.ndarray) -> list[Column]:
        """The augmented columns for one probed chunk, in output order."""
        matched = match_index >= 0
        return [
            _gather_right_column(self.right.column(right_name), name, match_index, matched)
            for right_name, name in self.output
        ]

    def null_columns(self, num_rows: int) -> list[Column]:
        """The augmented columns of a pruned chunk: all NULL, same schema.

        Identical to what :meth:`gather` returns for a chunk with no matches
        (categoricals keep the right table's dictionary), so pruned and probed
        chunks concatenate into exactly the unpruned result.
        """
        match_index = np.full(num_rows, -1, dtype=np.int64)
        return self.gather(match_index)

    def join_chunk(self, chunk: Table, pruned: bool = False) -> Table:
        """One chunk's slice of the full LEFT-join output."""
        if pruned:
            gathered = self.null_columns(chunk.num_rows)
        else:
            gathered = self.gather(self.probe_chunk(chunk))
        return Table(list(chunk.columns()) + gathered, name=chunk.name)


# per-process reader cache for chunk-parallel probing on the process backend
# (thread/serial backends share the source directly and never touch this)
_WORKER_SOURCES: dict = {}


def _resolve_worker_source(source_ref):
    if not isinstance(source_ref, tuple) or source_ref[0] != "file":
        return source_ref
    _tag, path, mmap = source_ref
    key = (path, mmap)
    reader = _WORKER_SOURCES.get(key)
    if reader is None:
        from repro.relational.persist import open_chunks

        reader = open_chunks(path, mmap=mmap)
        _WORKER_SOURCES[key] = reader
    return reader


def _probe_chunk_task(shared, index: int):
    """Executor task: probe + gather one chunk, returning its augmented columns."""
    joiner, source_ref = shared
    source = _resolve_worker_source(source_ref)
    chunk = source.chunk(index, columns=joiner.left_keys)
    match_index = joiner.probe_chunk(chunk)
    return int((match_index >= 0).sum()), joiner.gather(match_index)


def _source_ref(source):
    """A picklable handle for executor workers (file-backed sources reopen)."""
    path = getattr(source, "path", None)
    if path is not None:
        return ("file", str(path), getattr(source, "_mmap", True))
    return source


def _chunk_waves(
    indices: Sequence[int], costs: Sequence[int], memory_budget: int | None
) -> list[list[int]]:
    """Group chunk indices into waves whose summed cost fits the budget.

    Order is preserved and every wave holds at least one chunk, so a budget
    smaller than a single chunk degrades to chunk-at-a-time streaming rather
    than failing.
    """
    if memory_budget is None or memory_budget <= 0:
        return [list(indices)] if indices else []
    waves: list[list[int]] = []
    current: list[int] = []
    current_cost = 0
    for index, cost in zip(indices, costs):
        if current and current_cost + cost > memory_budget:
            waves.append(current)
            current = []
            current_cost = 0
        current.append(index)
        current_cost += cost
    if current:
        waves.append(current)
    return waves


def estimate_source_nbytes(source) -> int:
    """Approximate payload bytes of a chunk source (page bytes when file-backed,
    an 8-bytes-per-cell estimate for in-memory tables) — the spill trigger."""
    source = as_chunk_source(source)
    return sum(source.chunk_nbytes(index) for index in range(source.num_chunks))


def iter_streaming_left_join(
    source,
    right,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    executor=None,
    memory_budget: int | None = None,
    prune: bool = True,
    stats: StreamJoinStats | None = None,
    spill_partitions: int | None = None,
    spill_dir: str | Path | None = None,
) -> Iterator[Table]:
    """Yield the LEFT join of ``source`` (chunked) against ``right``, one
    output chunk at a time in base order.

    ``source`` is a :class:`~repro.relational.persist.ChunkedTableReader` or a
    :class:`Table`; ``right`` may be either as well.  The build side is
    prepared once; each base chunk is then probed independently — skipped
    entirely when its zone map cannot intersect the build side's key range
    (``prune``; sort-ordered sources binary-search their candidate chunk
    range) — and chunks are dispatched in waves whose estimated working set
    fits ``memory_budget`` bytes, fanned out over ``executor`` (any
    :class:`~repro.core.executor.JoinExecutor`).  A build side whose
    estimated bytes exceed ``memory_budget`` (or an explicit
    ``spill_partitions``) is never materialised: the join runs in the
    Grace-partitioned spill mode (:func:`iter_grace_left_join`) instead.
    Concatenating the yielded chunks reproduces ``left_join(source.table(),
    right, on)`` row for row; pass ``stats`` to collect pruning accounting.
    """
    source = as_chunk_source(source)
    spill = spill_partitions is not None and spill_partitions > 1
    if not spill and memory_budget is not None:
        spill = estimate_source_nbytes(right) > memory_budget
    if spill:
        yield from iter_grace_left_join(
            source,
            right,
            on,
            suffix=suffix,
            aggregate_duplicates=aggregate_duplicates,
            numeric_agg=numeric_agg,
            categorical_agg=categorical_agg,
            num_partitions=spill_partitions,
            memory_budget=memory_budget,
            spill_dir=spill_dir,
            prune=prune,
            stats=stats,
        )
        return
    if not isinstance(right, Table):
        right = as_chunk_source(right).table()
    joiner = StreamingHashJoin(
        right,
        on,
        source.schema(),
        suffix=suffix,
        aggregate_duplicates=aggregate_duplicates,
        numeric_agg=numeric_agg,
        categorical_agg=categorical_agg,
    )
    if stats is None:
        stats = StreamJoinStats()
    stats.chunks_total += source.num_chunks
    stats.rows_total += source.num_rows

    pruned = _pruned_flags(source, joiner.pruner, prune)

    extra_row_bytes = 8 * (len(joiner.output) + 2 * len(joiner.on))
    costs = []
    for index in range(source.num_chunks):
        start, stop = source.chunk_row_range(index)
        rows = stop - start
        costs.append(source.chunk_nbytes(index) + rows * extra_row_bytes)
    waves = _chunk_waves(list(range(source.num_chunks)), costs, memory_budget)

    use_pool = executor is not None and getattr(executor, "n_jobs", 1) > 1
    shared = (joiner, _source_ref(source)) if use_pool else None
    for wave in waves:
        gathered: dict[int, list[Column]] = {}
        to_probe = [index for index in wave if not pruned[index]]
        if use_pool and len(to_probe) > 1:
            results = executor.map_with_shared(_probe_chunk_task, shared, to_probe)
            for index, (matched, columns) in zip(to_probe, results):
                stats.rows_matched += matched
                gathered[index] = columns
        for index in wave:
            start, stop = source.chunk_row_range(index)
            rows = stop - start
            chunk = source.chunk(index)
            if pruned[index]:
                columns = joiner.null_columns(rows)
            elif index in gathered:
                columns = gathered[index]
            else:
                match_index = joiner.probe_chunk(chunk)
                stats.rows_matched += int((match_index >= 0).sum())
                columns = joiner.gather(match_index)
            if not pruned[index]:
                stats.chunks_probed += 1
                stats.rows_probed += rows
            yield Table(list(chunk.columns()) + columns, name=source.name)


def streaming_left_join(
    source,
    right,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    executor=None,
    memory_budget: int | None = None,
    prune: bool = True,
    spill_partitions: int | None = None,
    spill_dir: str | Path | None = None,
) -> tuple[Table, StreamJoinStats]:
    """LEFT-join a chunked source against ``right``, materialising the result.

    Equivalent to ``left_join(source.table(), right, on)`` — the same probe
    and gather kernels run per chunk and concatenate in chunk order — but the
    build side is prepared once, chunks stream under ``memory_budget``, and
    zone-map pruning skips chunks that cannot match.  A build side larger
    than the budget runs in Grace spill mode (identical output; see
    :func:`grace_left_join`).  Returns the joined table plus the pruning
    stats.  (The output itself is in memory; use
    :func:`repro.relational.persist.write_table_stream` over
    :func:`iter_streaming_left_join` to keep the result out-of-core.)
    """
    stats = StreamJoinStats()
    parts = list(
        iter_streaming_left_join(
            source,
            right,
            on,
            suffix=suffix,
            aggregate_duplicates=aggregate_duplicates,
            numeric_agg=numeric_agg,
            categorical_agg=categorical_agg,
            executor=executor,
            memory_budget=memory_budget,
            prune=prune,
            stats=stats,
            spill_partitions=spill_partitions,
            spill_dir=spill_dir,
        )
    )
    if len(parts) == 1:
        return parts[0], stats
    from repro.relational.column import concat_columns

    columns = [
        concat_columns([part.column(name) for part in parts])
        for name in parts[0].column_names
    ]
    return Table(columns, name=parts[0].name), stats


# -- Grace-partitioned spill join ---------------------------------------------


_HASH_MISSING = np.uint64(0x9E3779B97F4A7C15)
_SPILL_DONE = object()


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser over a uint64 array (vectorised, wrapping)."""
    with np.errstate(over="ignore"):
        x = x ^ (x >> np.uint64(33))
        x = x * np.uint64(0xFF51AFD7ED558CCD)
        x = x ^ (x >> np.uint64(33))
        x = x * np.uint64(0xC4CEB9FE1A85EC53)
        x = x ^ (x >> np.uint64(33))
    return x


def _key_hash_tokens(column: Column) -> np.ndarray:
    """Deterministic per-row uint64 tokens over one key column's *values*.

    Hashes values, never codes: categorical entries hash their UTF-8 text
    (both join sides agree no matter how their dictionaries assign codes),
    numerics hash their float64 bits with ``-0.0`` normalised to ``+0.0``
    (the probe kernels treat them equal, so they must co-partition).  Missing
    values map to a fixed sentinel — they never match anything, but left rows
    must still land in exactly one partition.
    """
    if column.ctype is CATEGORICAL:
        entry_hash = np.array(
            [
                int.from_bytes(
                    blake2b(str(text).encode("utf-8"), digest_size=8).digest(),
                    "little",
                )
                for text in column.dictionary
            ],
            dtype=np.uint64,
        )
        codes = column.codes
        tokens = np.full(len(codes), _HASH_MISSING, dtype=np.uint64)
        valid = codes >= 0
        if valid.any():
            tokens[valid] = entry_hash[codes[valid]]
        return tokens
    values = np.asarray(column.values, dtype=np.float64) + 0.0  # -0.0 -> +0.0
    tokens = values.view(np.uint64).copy()
    tokens[np.isnan(values)] = _HASH_MISSING
    return tokens


def _partition_ids(
    key_columns: Sequence[Column], num_partitions: int
) -> np.ndarray:
    """Partition id per row, identical for equal composite key values on both
    sides of a join (position-salted so symmetric keys don't cancel)."""
    acc = np.zeros(len(key_columns[0]), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for position, column in enumerate(key_columns):
            salt = np.uint64(0x9E3779B97F4A7C15) * np.uint64(position + 1)
            acc = _mix64(acc ^ _mix64(_key_hash_tokens(column) ^ salt))
    return (acc % np.uint64(num_partitions)).astype(np.int64)


class _PartitionSpiller:
    """Fan one pass of row slices out to per-partition spill files.

    Each partition lazily starts a writer thread running
    :func:`~repro.relational.persist.write_table_stream` over a bounded queue
    the moment its first rows arrive — a partition that never receives a row
    never creates a file (``write_table_stream`` rejects empty streams).
    Writer errors are surfaced by :meth:`finish`; a failed writer keeps
    draining its queue so the producer never deadlocks.
    """

    def __init__(self, directory: Path, stem: str, num_partitions: int, chunk_rows: int):
        self._dir = Path(directory)
        self._stem = stem
        self._chunk_rows = chunk_rows
        self._queues: list[Queue | None] = [None] * num_partitions
        self._threads: list[threading.Thread | None] = [None] * num_partitions
        self._errors: list[BaseException | None] = [None] * num_partitions
        self.headers: list = [None] * num_partitions
        self._finished = False

    def path(self, partition: int) -> Path:
        return self._dir / f"{self._stem}-{partition:05d}.tbl"

    def push(self, partition: int, part: Table) -> None:
        queue = self._queues[partition]
        if queue is None:
            queue = Queue(maxsize=2)
            self._queues[partition] = queue
            thread = threading.Thread(
                target=self._writer, args=(partition,), daemon=True
            )
            self._threads[partition] = thread
            thread.start()
        queue.put(part)

    def _writer(self, partition: int) -> None:
        from repro.relational.persist import write_table_stream

        queue = self._queues[partition]
        try:
            self.headers[partition] = write_table_stream(
                self.path(partition),
                iter(queue.get, _SPILL_DONE),
                chunk_rows=self._chunk_rows,
            )
        except BaseException as exc:  # surfaced by finish()
            self._errors[partition] = exc
            while queue.get() is not _SPILL_DONE:
                pass

    def finish(self, check: bool = True) -> list[Path | None]:
        """Close all writers; return per-partition paths (``None`` = empty)."""
        if not self._finished:
            self._finished = True
            for queue in self._queues:
                if queue is not None:
                    queue.put(_SPILL_DONE)
            for thread in self._threads:
                if thread is not None:
                    thread.join()
        if check:
            for error in self._errors:
                if error is not None:
                    raise error
        return [
            self.path(p) if self._queues[p] is not None else None
            for p in range(len(self._queues))
        ]

    @property
    def bytes_written(self) -> int:
        return sum(h.pages_nbytes for h in self.headers if h is not None)


def _align_to_dictionaries(
    table: Table,
    dictionaries: dict[str, np.ndarray],
    indexes: dict[str, dict[str, int]],
) -> Table:
    """Re-express a spill partition's categorical codes in the global
    dictionaries of the right source, so per-partition joins gather columns
    carrying exactly the codes and dictionaries ``left_join`` would."""
    columns = []
    for col in table.columns():
        target = dictionaries.get(col.name)
        if col.ctype is CATEGORICAL and target is not None:
            translate = remap_dictionary(col.dictionary, indexes[col.name])
            columns.append(Column.from_codes(col.name, translate[col.codes], target))
        else:
            columns.append(col)
    return Table(columns, name=table.name)


class _SpillOutputCursor:
    """Sequential reader over one partition's ``(rowid, outputs)`` spill file.

    Row ids are globally ascending within each file (the left pass preserves
    base order), so the merge phase pulls each partition's rows for one base
    chunk with a single ``searchsorted`` and never rewinds.
    """

    def __init__(self, path: Path, rowid: str):
        from repro.relational.persist import open_chunks

        self._reader = open_chunks(path, mmap=False)
        self._rowid = rowid
        self._iter = self._reader.iter_chunks()
        self._current: Table | None = None
        self._offset = 0
        self._translate: dict[str, np.ndarray] = {}

    @property
    def bytes_total(self) -> int:
        return self._reader.header.pages_nbytes

    def translate(self, name: str, index: dict[str, int]) -> np.ndarray:
        """Cached code translation from this file's dictionary to the global
        one (the extra trailing slot maps -1 to -1)."""
        cached = self._translate.get(name)
        if cached is None:
            cached = remap_dictionary(self._reader.dictionary(name), index)
            self._translate[name] = cached
        return cached

    def pull(self, stop: float) -> Iterator[Table]:
        """Yield maximal slices with ``rowid < stop``, advancing the cursor."""
        while True:
            if self._current is None:
                self._current = next(self._iter, None)
                self._offset = 0
                if self._current is None:
                    return
            rowids = self._current.column(self._rowid).values
            end = int(np.searchsorted(rowids, stop, side="left"))
            if end > self._offset:
                yield self._current.take(np.arange(self._offset, end))
                self._offset = end
            if end < len(rowids):
                return
            self._current = None


def iter_grace_left_join(
    source,
    right,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    num_partitions: int | None = None,
    memory_budget: int | None = None,
    spill_dir: str | Path | None = None,
    prune: bool = True,
    stats: StreamJoinStats | None = None,
) -> Iterator[Table]:
    """Grace-partitioned LEFT join: build side never materialised in full.

    Both sides are hash-partitioned on their key *values* into spill files
    (one streaming pass each; the left side spills only its key columns plus
    a row id, and only for rows that survive zone pruning and have no missing
    key part).  Each partition pair is then joined independently with the
    standard :class:`StreamingHashJoin` kernels — a key's rows land in the
    same partition on both sides, so per-partition pre-aggregation and
    first-match semantics equal the global ones — and the per-partition
    outputs are merged back into base order by scattering on the row id.
    Peak heap is bounded by one partition plus one base chunk; the yielded
    chunks concatenate to exactly ``left_join(source.table(),
    right.table(), on)`` — same values, same dictionaries.

    ``num_partitions`` defaults to ``ceil(right bytes / memory_budget)``.
    Spill files live in a fresh temporary directory under ``spill_dir``
    (default: the system temp dir) and are removed before the iterator is
    exhausted.
    """
    from repro.relational.persist import (
        DEFAULT_STREAM_CHUNK_ROWS,
        open_chunks,
        read_table,
        write_table_stream,
    )

    if not on:
        raise ValueError("grace join requires at least one key pair")
    source = as_chunk_source(source)
    right_source = as_chunk_source(right)
    on = [(left, right_key) for left, right_key in on]
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    left_schema = source.schema()
    right_schema = right_source.schema()
    for key in left_keys:
        if key not in left_schema:
            raise KeyError(f"left source has no key column {key!r}")
    for key in right_keys:
        if key not in right_schema:
            raise KeyError(f"right source has no key column {key!r}")

    right_nbytes = estimate_source_nbytes(right_source)
    if num_partitions is None:
        budget = memory_budget if memory_budget and memory_budget > 0 else None
        num_partitions = -(-right_nbytes // budget) if budget else 1
    num_partitions = int(max(1, min(num_partitions, 512)))
    if stats is None:
        stats = StreamJoinStats()
    stats.chunks_total += source.num_chunks
    stats.rows_total += source.num_rows
    stats.spill_partitions += num_partitions

    # spill row groups sized so all partition writers' re-batch buffers stay
    # well under the budget together
    row_nbytes = 8 * max(1, len(right_schema.names))
    if memory_budget and memory_budget > 0:
        spill_chunk_rows = int(memory_budget // (2 * num_partitions * row_nbytes))
        spill_chunk_rows = max(256, min(DEFAULT_STREAM_CHUNK_ROWS, spill_chunk_rows))
    else:
        spill_chunk_rows = DEFAULT_STREAM_CHUNK_ROWS

    base_dir = Path(spill_dir) if spill_dir is not None else None
    if base_dir is not None:
        base_dir.mkdir(parents=True, exist_ok=True)
    tmp_dir = Path(tempfile.mkdtemp(prefix="arda-spill-", dir=base_dir))
    spillers: list[_PartitionSpiller] = []
    try:
        # -- phase 1: partition the right side, gathering its key ranges ------
        right_spiller = _PartitionSpiller(
            tmp_dir, "right", num_partitions, spill_chunk_rows
        )
        spillers.append(right_spiller)
        num_lo = [np.inf] * len(on)
        num_hi = [-np.inf] * len(on)
        num_any = [False] * len(on)
        for chunk in right_source.iter_chunks():
            key_cols = [chunk.column(k) for k in right_keys]
            valid = np.ones(chunk.num_rows, dtype=bool)
            for pos, col in enumerate(key_cols):
                valid &= ~col.missing_mask()
                if col.ctype is not CATEGORICAL:
                    values = col.values[~np.isnan(col.values)]
                    if len(values):
                        num_any[pos] = True
                        num_lo[pos] = min(num_lo[pos], float(values.min()))
                        num_hi[pos] = max(num_hi[pos], float(values.max()))
            if not valid.any():
                continue  # rows with a missing key part can never match
            ids = _partition_ids(key_cols, num_partitions)
            for p in np.unique(ids[valid]):
                rows = np.nonzero(valid & (ids == p))[0]
                right_spiller.push(int(p), chunk.take(rows))
        right_paths = right_spiller.finish()
        stats.spill_bytes_written += right_spiller.bytes_written

        # build-side key ranges for pruning, without the build side: numeric
        # ranges ran along the pass; categorical keys use the right source's
        # file-level dictionary (a conservative superset of present values)
        ranges: list[tuple] = []
        for pos, right_key in enumerate(right_keys):
            if right_schema.type_of(right_key) is CATEGORICAL:
                ranges.append(
                    ("cat", [str(t) for t in right_source.dictionary(right_key)])
                )
            elif num_any[pos]:
                ranges.append(("num", num_lo[pos], num_hi[pos]))
            else:
                ranges.append(("num-empty",))
        pruner = KeyRangePruner(on, left_schema, ranges)
        pruned = _pruned_flags(source, pruner, prune)

        # -- phase 2: partition the left side's keys + row ids ----------------
        left_key_names = list(dict.fromkeys(left_keys))
        rowid_name = unique_name(
            "__grace_rowid__", set(left_schema.names) | set(right_schema.names), "_"
        )
        left_spiller = _PartitionSpiller(
            tmp_dir, "left", num_partitions, spill_chunk_rows
        )
        spillers.append(left_spiller)
        for index in range(source.num_chunks):
            if pruned[index]:
                continue
            start, stop = source.chunk_row_range(index)
            chunk = source.chunk(index, columns=left_key_names)
            stats.chunks_probed += 1
            stats.rows_probed += chunk.num_rows
            key_cols = [chunk.column(k) for k in left_keys]
            valid = np.ones(chunk.num_rows, dtype=bool)
            for col in key_cols:
                valid &= ~col.missing_mask()
            if not valid.any():
                continue
            ids = _partition_ids(key_cols, num_partitions)
            rowid_all = np.arange(start, stop, dtype=np.float64)
            for p in np.unique(ids[valid]):
                rows = np.nonzero(valid & (ids == p))[0]
                part = chunk.take(rows)
                columns = [
                    Column.from_array(rowid_name, rowid_all[rows], NUMERIC)
                ] + list(part.columns())
                left_spiller.push(int(p), Table(columns, name="left-keys"))
        left_paths = left_spiller.finish()
        stats.spill_bytes_written += left_spiller.bytes_written

        # -- output naming and dictionaries, from an empty reference build ----
        right_dicts = {
            name: right_source.dictionary(name)
            for name in right_schema.names
            if right_schema.type_of(name) is CATEGORICAL
        }
        right_indexes = {
            name: {str(text): code for code, text in enumerate(dictionary)}
            for name, dictionary in right_dicts.items()
        }

        def empty_right_table() -> Table:
            columns = []
            for name in right_schema.names:
                if right_schema.type_of(name) is CATEGORICAL:
                    columns.append(
                        Column.from_codes(
                            name, np.empty(0, dtype=np.int32), right_dicts[name]
                        )
                    )
                else:
                    columns.append(
                        Column.from_array(
                            name,
                            np.empty(0, dtype=np.float64),
                            right_schema.type_of(name),
                        )
                    )
            return Table(columns, name=right_source.name)

        reference = StreamingHashJoin(
            empty_right_table(),
            on,
            left_schema,
            suffix=suffix,
            aggregate_duplicates=aggregate_duplicates,
            numeric_agg=numeric_agg,
            categorical_agg=categorical_agg,
        )
        out_pairs = reference.output
        output_ctypes = {
            out_name: right_schema.type_of(right_name)
            for right_name, out_name in out_pairs
        }
        output_dicts = {
            out_name: right_dicts[right_name]
            for right_name, out_name in out_pairs
            if output_ctypes[out_name] is CATEGORICAL
        }
        output_indexes = {
            out_name: right_indexes[right_name]
            for right_name, out_name in out_pairs
            if output_ctypes[out_name] is CATEGORICAL
        }

        # -- phase 3: join each partition pair, spilling (rowid, outputs) -----
        def join_partition(partition: int) -> Path | None:
            right_path, left_path = right_paths[partition], left_paths[partition]
            if right_path is None or left_path is None:
                # nothing to match: those left rows stay all-NULL in the merge
                return None
            right_part = _align_to_dictionaries(
                read_table(right_path, mmap=False), right_dicts, right_indexes
            )
            stats.spill_bytes_read += right_spiller.headers[partition].pages_nbytes
            stats.spill_bytes_read += left_spiller.headers[partition].pages_nbytes
            joiner = StreamingHashJoin(
                right_part,
                on,
                left_schema,
                suffix=suffix,
                aggregate_duplicates=aggregate_duplicates,
                numeric_agg=numeric_agg,
                categorical_agg=categorical_agg,
            )
            reader = open_chunks(left_path, mmap=False)

            def parts() -> Iterator[Table]:
                for chunk in reader.iter_chunks():
                    match_index = joiner.probe_chunk(chunk)
                    stats.rows_matched += int((match_index >= 0).sum())
                    gathered = joiner.gather(match_index)
                    yield Table(
                        [chunk.column(rowid_name)] + gathered, name="grace-out"
                    )

            out_path = tmp_dir / f"out-{partition:05d}.tbl"
            header = write_table_stream(
                out_path, parts(), chunk_rows=spill_chunk_rows
            )
            stats.spill_bytes_written += header.pages_nbytes
            stats.spill_bytes_read += header.pages_nbytes  # merged back below
            return out_path

        cursors = []
        for partition in range(num_partitions):
            out_path = join_partition(partition)
            if out_path is not None:
                cursors.append(_SpillOutputCursor(out_path, rowid_name))

        # -- phase 4: merge per-partition outputs back into base order --------
        for index in range(source.num_chunks):
            start, stop = source.chunk_row_range(index)
            rows = stop - start
            chunk = source.chunk(index)
            arrays: dict[str, np.ndarray] = {}
            for _right_name, out_name in out_pairs:
                if output_ctypes[out_name] is CATEGORICAL:
                    arrays[out_name] = np.full(rows, -1, dtype=np.int32)
                else:
                    arrays[out_name] = np.full(rows, np.nan, dtype=np.float64)
            for cursor in cursors:
                for part in cursor.pull(stop):
                    ids = (part.column(rowid_name).values - start).astype(np.int64)
                    for _right_name, out_name in out_pairs:
                        col = part.column(out_name)
                        if output_ctypes[out_name] is CATEGORICAL:
                            translate = cursor.translate(
                                out_name, output_indexes[out_name]
                            )
                            arrays[out_name][ids] = translate[col.codes]
                        else:
                            arrays[out_name][ids] = col.values
            out_columns = []
            for _right_name, out_name in out_pairs:
                ctype = output_ctypes[out_name]
                if ctype is CATEGORICAL:
                    out_columns.append(
                        Column.from_codes(
                            out_name, arrays[out_name], output_dicts[out_name]
                        )
                    )
                else:
                    out_columns.append(
                        Column.from_array(out_name, arrays[out_name], ctype)
                    )
            yield Table(list(chunk.columns()) + out_columns, name=source.name)
    finally:
        for spiller in spillers:
            spiller.finish(check=False)
        shutil.rmtree(tmp_dir, ignore_errors=True)


def grace_left_join(
    source,
    right,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
    aggregate_duplicates: bool = True,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    num_partitions: int | None = None,
    memory_budget: int | None = None,
    spill_dir: str | Path | None = None,
    prune: bool = True,
) -> tuple[Table, StreamJoinStats]:
    """Materialised :func:`iter_grace_left_join`; returns (table, stats).

    Byte-identical to ``left_join(source.table(), right.table(), on)`` for
    every partition count, including 1.
    """
    stats = StreamJoinStats()
    parts = list(
        iter_grace_left_join(
            source,
            right,
            on,
            suffix=suffix,
            aggregate_duplicates=aggregate_duplicates,
            numeric_agg=numeric_agg,
            categorical_agg=categorical_agg,
            num_partitions=num_partitions,
            memory_budget=memory_budget,
            spill_dir=spill_dir,
            prune=prune,
            stats=stats,
        )
    )
    if len(parts) == 1:
        return parts[0], stats
    from repro.relational.column import concat_columns

    columns = [
        concat_columns([part.column(name) for part in parts])
        for name in parts[0].column_names
    ]
    return Table(columns, name=parts[0].name), stats


def streaming_match_fraction(
    source, right: Table, on: Sequence[tuple[str, str]]
) -> tuple[float, StreamJoinStats]:
    """Out-of-core :func:`join_match_fraction` with full chunk skipping.

    Reads only the key columns of chunks that survive zone pruning; a pruned
    chunk contributes zero matches without touching a single page.
    """
    source = as_chunk_source(source)
    stats = StreamJoinStats(chunks_total=source.num_chunks, rows_total=source.num_rows)
    if not on or source.num_rows == 0:
        return 0.0, stats
    # only key membership matters here: project the build side to its key
    # columns before hashing, so wide right tables cost keys-only memory
    right_keys = list(dict.fromkeys(pair[1] for pair in on))
    right = right.select(right_keys)
    joiner = StreamingHashJoin(right, on, source.schema(), aggregate_duplicates=False)
    pruned = _pruned_flags(source, joiner.pruner, prune=True)
    matched = 0
    for index in range(source.num_chunks):
        if pruned[index]:
            continue
        chunk = source.chunk(index, columns=joiner.left_keys)
        match_index = joiner.probe_chunk(chunk)
        matched += int((match_index >= 0).sum())
        stats.chunks_probed += 1
        stats.rows_probed += chunk.num_rows
    stats.rows_matched = matched
    return matched / source.num_rows, stats
