"""Typed, nullable columns backed by numpy arrays."""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, Sequence

import numpy as np

from repro.relational.schema import (
    BOOLEAN,
    CATEGORICAL,
    DATETIME,
    NUMERIC,
    ColumnType,
)

_EPOCH = _dt.datetime(1970, 1, 1)


def _to_epoch_seconds(value) -> float:
    """Convert a datetime-like value to float epoch seconds."""
    if value is None:
        return float("nan")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, _dt.datetime):
        return (value - _EPOCH).total_seconds()
    if isinstance(value, _dt.date):
        return (_dt.datetime(value.year, value.month, value.day) - _EPOCH).total_seconds()
    if isinstance(value, str):
        return (_dt.datetime.fromisoformat(value) - _EPOCH).total_seconds()
    raise TypeError(f"cannot interpret {value!r} as a datetime")


class Column:
    """A single named, typed, nullable column of values.

    Numeric, datetime and boolean columns store values in a ``float64`` array
    with ``NaN`` marking missing entries.  Categorical columns store values in
    an object array of strings with ``None`` marking missing entries.
    """

    def __init__(self, name: str, values, ctype: ColumnType | None = None):
        self.name = name
        if ctype is None:
            ctype = infer_type(values)
        self.ctype = ctype
        self._data = _coerce(values, ctype)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def numeric(cls, name: str, values) -> "Column":
        """Build a numeric column."""
        return cls(name, values, NUMERIC)

    @classmethod
    def categorical(cls, name: str, values) -> "Column":
        """Build a categorical (string) column."""
        return cls(name, values, CATEGORICAL)

    @classmethod
    def datetime(cls, name: str, values) -> "Column":
        """Build a datetime column (stored as epoch seconds)."""
        return cls(name, values, DATETIME)

    @classmethod
    def boolean(cls, name: str, values) -> "Column":
        """Build a boolean column (stored as 0.0/1.0)."""
        return cls(name, values, BOOLEAN)

    @classmethod
    def from_array(cls, name: str, data: np.ndarray, ctype: ColumnType) -> "Column":
        """Wrap an already-coerced array without copying or re-validating."""
        col = cls.__new__(cls)
        col.name = name
        col.ctype = ctype
        col._data = data
        return col

    # -- basic protocol -------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The backing array (float64 or object depending on type)."""
        return self._data

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.ctype != other.ctype:
            return False
        if len(self) != len(other):
            return False
        if self.ctype is CATEGORICAL:
            return bool(np.array_equal(self._data, other._data))
        a, b = self._data, other._data
        both_nan = np.isnan(a) & np.isnan(b)
        return bool(np.all(both_nan | (a == b)))

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.value}, n={len(self)})"

    # -- missing values -------------------------------------------------------

    def missing_mask(self) -> np.ndarray:
        """Boolean mask that is True where the value is missing."""
        if self.ctype is CATEGORICAL:
            return np.array([v is None for v in self._data], dtype=bool)
        return np.isnan(self._data)

    def null_count(self) -> int:
        """Number of missing entries."""
        return int(self.missing_mask().sum())

    # -- transforms ------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Select rows by integer position (supports repeats)."""
        return Column.from_array(self.name, self._data[indices], self.ctype)

    def filter(self, mask: np.ndarray) -> "Column":
        """Select rows where ``mask`` is True."""
        return Column.from_array(self.name, self._data[mask], self.ctype)

    def rename(self, new_name: str) -> "Column":
        """Return a copy of this column with a new name."""
        return Column.from_array(new_name, self._data, self.ctype)

    def copy(self) -> "Column":
        """Deep copy of the column."""
        return Column.from_array(self.name, self._data.copy(), self.ctype)

    def unique(self) -> list:
        """Distinct non-missing values (unsorted for categorical)."""
        if self.ctype is CATEGORICAL:
            seen: dict = {}
            for value in self._data:
                if value is not None and value not in seen:
                    seen[value] = True
            return list(seen)
        data = self._data[~np.isnan(self._data)]
        return list(np.unique(data))

    def to_list(self) -> list:
        """Values as a plain Python list (missing numeric values stay NaN)."""
        return list(self._data)

    def cast(self, ctype: ColumnType) -> "Column":
        """Return a copy coerced to a different logical type."""
        return Column(self.name, list(self._data), ctype)


def infer_type(values) -> ColumnType:
    """Infer the logical type of a sequence of raw Python values."""
    if isinstance(values, np.ndarray) and values.dtype.kind in "fiu":
        return NUMERIC
    if isinstance(values, np.ndarray) and values.dtype.kind == "b":
        return BOOLEAN
    saw_bool = saw_number = saw_datetime = saw_string = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool) or isinstance(value, np.bool_):
            saw_bool = True
        elif isinstance(value, (int, float, np.integer, np.floating)):
            if isinstance(value, float) and np.isnan(value):
                continue
            saw_number = True
        elif isinstance(value, (_dt.date, _dt.datetime)):
            saw_datetime = True
        else:
            saw_string = True
    if saw_string:
        return CATEGORICAL
    if saw_datetime:
        return DATETIME
    if saw_bool and not saw_number:
        return BOOLEAN
    return NUMERIC


def _coerce(values, ctype: ColumnType) -> np.ndarray:
    """Coerce raw values into the backing array for ``ctype``."""
    if ctype is CATEGORICAL:
        out = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            if value is None:
                out[i] = None
            elif isinstance(value, float) and np.isnan(value):
                out[i] = None
            else:
                out[i] = str(value)
        return out
    if ctype is DATETIME:
        if isinstance(values, np.ndarray) and values.dtype.kind == "f":
            return values.astype(np.float64)
        return np.array([_to_epoch_seconds(v) for v in values], dtype=np.float64)
    # numeric / boolean
    if isinstance(values, np.ndarray) and values.dtype.kind in "fiub":
        return values.astype(np.float64)
    out = np.empty(len(values), dtype=np.float64)
    for i, value in enumerate(values):
        if value is None:
            out[i] = np.nan
        elif isinstance(value, str):
            out[i] = float(value) if value.strip() else np.nan
        else:
            out[i] = float(value)
    return out


def concat_columns(columns: Sequence[Column]) -> Column:
    """Vertically concatenate columns that share a name and type."""
    if not columns:
        raise ValueError("cannot concatenate an empty sequence of columns")
    first = columns[0]
    for col in columns[1:]:
        if col.ctype is not first.ctype:
            raise ValueError("cannot concatenate columns of different types")
    data = np.concatenate([col.values for col in columns])
    return Column.from_array(first.name, data, first.ctype)
