"""Typed, nullable columns backed by numpy arrays.

Storage layout (the columnar core of the engine):

* Numeric, datetime and boolean columns store values in a ``float64`` array
  with ``NaN`` marking missing entries.
* Categorical columns are **dictionary encoded**: values live in an ``int32``
  code array (``-1`` marking missing entries) plus a shared object array of
  distinct strings (the dictionary, in first-appearance order).  The decoded
  object array of the old representation is only materialised on demand (and
  cached) when a consumer asks for :attr:`Column.values`; code-aware consumers
  (joins, group-by, encoding, profiling) never pay for it.
* ``take``/``filter`` return **lazy views**: the new column records the backing
  array and the row indices and defers the gather until the data is actually
  accessed.  Chained views compose their index arrays, so a coreset sample of
  a sorted selection still resolves with a single gather per touched column.
"""

from __future__ import annotations

import datetime as _dt
from typing import Sequence

import numpy as np

from repro.relational.schema import (
    BOOLEAN,
    CATEGORICAL,
    DATETIME,
    NUMERIC,
    ColumnType,
)

_EPOCH = _dt.datetime(1970, 1, 1)


def _to_epoch_seconds(value) -> float:
    """Convert a datetime-like value to float epoch seconds."""
    if value is None:
        return float("nan")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, _dt.datetime):
        return (value - _EPOCH).total_seconds()
    if isinstance(value, _dt.date):
        return (_dt.datetime(value.year, value.month, value.day) - _EPOCH).total_seconds()
    if isinstance(value, str):
        return (_dt.datetime.fromisoformat(value) - _EPOCH).total_seconds()
    raise TypeError(f"cannot interpret {value!r} as a datetime")


def encode_categorical_values(values) -> tuple[np.ndarray, np.ndarray]:
    """Dictionary-encode raw values into ``(int32 codes, object dictionary)``.

    Missing entries (``None`` / ``NaN``) become code ``-1``; everything else is
    coerced to ``str``.  The dictionary lists distinct values in first-appearance
    order, matching the order the old object-array representation reported from
    :meth:`Column.unique`.
    """
    codes = np.empty(len(values), dtype=np.int32)
    index: dict[str, int] = {}
    dictionary: list[str] = []
    for i, value in enumerate(values):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            codes[i] = -1
            continue
        text = str(value)
        code = index.get(text)
        if code is None:
            code = len(dictionary)
            index[text] = code
            dictionary.append(text)
        codes[i] = code
    return codes, np.array(dictionary, dtype=object)


class Column:
    """A single named, typed, nullable column of values.

    See the module docstring for the storage layout.  All reading accessors
    (:attr:`values`, :attr:`codes`, :meth:`unique`, ...) behave exactly as they
    did under the eager object-array representation; the dictionary encoding
    and view laziness are implementation details that only show up as speed.
    """

    __slots__ = ("name", "ctype", "_data", "_codes", "_dictionary", "_dict_exact", "_pending")

    def __init__(self, name: str, values, ctype: ColumnType | None = None):
        self.name = name
        if ctype is None:
            ctype = infer_type(values)
        self.ctype = ctype
        self._pending: tuple[np.ndarray, np.ndarray] | None = None
        self._data: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._dictionary: np.ndarray | None = None
        self._dict_exact = False
        if ctype is CATEGORICAL:
            self._codes, self._dictionary = encode_categorical_values(values)
            self._dict_exact = True
        else:
            self._data = _coerce_float(values, ctype)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def numeric(cls, name: str, values) -> "Column":
        """Build a numeric column."""
        return cls(name, values, NUMERIC)

    @classmethod
    def categorical(cls, name: str, values) -> "Column":
        """Build a categorical (string) column."""
        return cls(name, values, CATEGORICAL)

    @classmethod
    def datetime(cls, name: str, values) -> "Column":
        """Build a datetime column (stored as epoch seconds)."""
        return cls(name, values, DATETIME)

    @classmethod
    def boolean(cls, name: str, values) -> "Column":
        """Build a boolean column (stored as 0.0/1.0)."""
        return cls(name, values, BOOLEAN)

    @classmethod
    def from_array(cls, name: str, data: np.ndarray, ctype: ColumnType) -> "Column":
        """Wrap an already-coerced array without copying or re-validating.

        Float-backed arrays are adopted as-is.  A categorical object array is
        dictionary-encoded on the way in (the object array itself is dropped).
        """
        if ctype is CATEGORICAL:
            codes, dictionary = encode_categorical_values(data)
            return cls.from_codes(name, codes, dictionary, dict_exact=True)
        col = cls.__new__(cls)
        col.name = name
        col.ctype = ctype
        col._pending = None
        col._data = data
        col._codes = None
        col._dictionary = None
        col._dict_exact = False
        return col

    @classmethod
    def from_codes(
        cls,
        name: str,
        codes: np.ndarray,
        dictionary: np.ndarray,
        dict_exact: bool = False,
    ) -> "Column":
        """Wrap an ``int32`` code array plus dictionary as a categorical column.

        ``dict_exact`` asserts that every dictionary entry occurs at least once
        in ``codes`` *and* the dictionary is in first-appearance order, enabling
        the O(1) :meth:`unique` fast path.
        """
        col = cls.__new__(cls)
        col.name = name
        col.ctype = CATEGORICAL
        col._pending = None
        col._data = None
        col._codes = np.asarray(codes, dtype=np.int32)
        col._dictionary = np.asarray(dictionary, dtype=object)
        col._dict_exact = bool(dict_exact)
        return col

    # -- basic protocol -------------------------------------------------------

    def _resolve(self) -> None:
        """Materialise a lazy view into a concrete backing array.

        Thread-safety: the resolved array is published *before* ``_pending``
        is cleared, so a concurrent reader that observes ``_pending is None``
        always finds the data in place (thread-pool join workers share the
        base view's columns).  Two racing threads may both gather; the results
        are identical and the last store wins.
        """
        pending = self._pending
        if pending is None:
            return
        base, indices = pending
        if self.ctype is CATEGORICAL:
            self._codes = base[indices]
        else:
            self._data = base[indices]
        self._pending = None

    @property
    def is_view(self) -> bool:
        """Whether this column is an unresolved lazy view (no data copied yet)."""
        return self._pending is not None

    @property
    def values(self) -> np.ndarray:
        """The backing array (float64), or the decoded object array for categoricals.

        For categorical columns the decode is performed lazily on first access
        and cached; code-aware consumers should prefer :attr:`codes`.
        """
        if self.ctype is CATEGORICAL:
            if self._data is None:
                codes = self.codes
                out = np.empty(len(codes), dtype=object)
                valid = codes >= 0
                if valid.any():
                    out[valid] = self._dictionary[codes[valid]]
                self._data = out
            return self._data
        self._resolve()
        return self._data

    @property
    def codes(self) -> np.ndarray:
        """The ``int32`` dictionary codes of a categorical column (-1 = missing)."""
        if self.ctype is not CATEGORICAL:
            raise TypeError(f"column {self.name!r} is {self.ctype.value}, not categorical")
        self._resolve()
        return self._codes

    @property
    def dictionary(self) -> np.ndarray:
        """The shared dictionary (object array of distinct strings)."""
        if self.ctype is not CATEGORICAL:
            raise TypeError(f"column {self.name!r} is {self.ctype.value}, not categorical")
        return self._dictionary

    @property
    def dictionary_is_exact(self) -> bool:
        """Whether the dictionary is first-appearance-ordered with no unused entries.

        Persisted so that a reloaded column keeps the O(1) :meth:`unique` fast
        path exactly when the original column had it.
        """
        if self.ctype is not CATEGORICAL:
            raise TypeError(f"column {self.name!r} is {self.ctype.value}, not categorical")
        return self._dict_exact

    def value_at(self, index: int):
        """One value by row position without decoding the whole column."""
        if self.ctype is CATEGORICAL:
            self._resolve()
            code = self._codes[index]
            return None if code < 0 else self._dictionary[code]
        self._resolve()
        return self._data[index]

    def __len__(self) -> int:
        pending = self._pending  # local snapshot: a concurrent _resolve may clear it
        if pending is not None:
            return len(pending[1])
        if self.ctype is CATEGORICAL:
            return len(self._codes)
        return len(self._data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.ctype != other.ctype:
            return False
        if len(self) != len(other):
            return False
        if self.ctype is CATEGORICAL:
            if self._dictionary is other._dictionary or np.array_equal(
                self._dictionary, other._dictionary
            ):
                return bool(np.array_equal(self.codes, other.codes))
            return bool(np.array_equal(self.values, other.values))
        a, b = self.values, other.values
        both_nan = np.isnan(a) & np.isnan(b)
        return bool(np.all(both_nan | (a == b)))

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.value}, n={len(self)})"

    # -- pickling -------------------------------------------------------------
    # A view resolves before pickling (only the selected rows travel) and a
    # categorical column ships its code array + dictionary, never the decoded
    # object array — this is what keeps the process-pool join backend cheap.
    # When the dictionary outnumbers the rows (a narrow view of a
    # high-cardinality column), it is compacted to the referenced entries so a
    # coreset projection of an ID column doesn't drag the full-table
    # dictionary through the pipe.

    def __getstate__(self):
        if self.ctype is not CATEGORICAL:
            return (self.name, self.ctype, self.values, None, None, False)
        codes = self.codes
        dictionary = self._dictionary
        if len(dictionary) > len(codes):
            present = np.unique(codes)
            present = present[present >= 0]
            translate = np.full(len(dictionary) + 1, -1, dtype=np.int32)
            translate[present] = np.arange(len(present), dtype=np.int32)
            codes = translate[codes]
            dictionary = dictionary[present]
            return (self.name, self.ctype, None, codes, dictionary, False)
        return (self.name, self.ctype, None, codes, dictionary, self._dict_exact)

    def __setstate__(self, state):
        self.name, self.ctype, self._data, self._codes, self._dictionary, self._dict_exact = state
        self._pending = None

    # -- missing values -------------------------------------------------------

    def missing_mask(self) -> np.ndarray:
        """Boolean mask that is True where the value is missing."""
        if self.ctype is CATEGORICAL:
            return self.codes < 0
        return np.isnan(self.values)

    def null_count(self) -> int:
        """Number of missing entries."""
        return int(self.missing_mask().sum())

    # -- transforms ------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Select rows by integer position (supports repeats).

        Returns a lazy view: no column data is copied until the result is read.
        """
        indices = np.asarray(indices)
        if indices.dtype.kind not in "iu":
            raise TypeError("take() requires integer indices")
        if len(indices):
            # validate eagerly (the gather is deferred, numpy's own bounds
            # error would otherwise surface far from the faulty call site)
            n = len(self)
            if int(indices.min()) < -n or int(indices.max()) >= n:
                raise IndexError(f"take() index out of bounds for column of length {n}")
        pending = self._pending  # local snapshot: a concurrent _resolve may clear it
        if pending is not None:
            base, base_indices = pending
            indices = base_indices[indices]
        else:
            base = self._codes if self.ctype is CATEGORICAL else self._data
        col = Column.__new__(Column)
        col.name = self.name
        col.ctype = self.ctype
        col._pending = (base, indices)
        col._data = None
        col._codes = None
        col._dictionary = self._dictionary
        col._dict_exact = False
        return col

    def filter(self, mask: np.ndarray) -> "Column":
        """Select rows where ``mask`` is True (lazy, like :meth:`take`)."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise ValueError("mask length does not match column length")
        return self.take(np.nonzero(mask)[0])

    def rename(self, new_name: str) -> "Column":
        """Return this column under a new name, sharing all backing data."""
        col = Column.__new__(Column)
        col.name = new_name
        col.ctype = self.ctype
        col._pending = self._pending
        col._data = self._data
        col._codes = self._codes
        col._dictionary = self._dictionary
        col._dict_exact = self._dict_exact
        return col

    def copy(self) -> "Column":
        """Deep copy of the column."""
        self._resolve()
        if self.ctype is CATEGORICAL:
            return Column.from_codes(
                self.name, self._codes.copy(), self._dictionary.copy(), self._dict_exact
            )
        return Column.from_array(self.name, self._data.copy(), self.ctype)

    def unique(self) -> list:
        """Distinct non-missing values (first-appearance order for categorical)."""
        if self.ctype is CATEGORICAL:
            if self._dict_exact:
                return list(self._dictionary)
            codes = self.codes
            present = codes[codes >= 0]
            if not len(present):
                return []
            distinct, first_seen = np.unique(present, return_index=True)
            order = np.argsort(first_seen, kind="stable")
            return [self._dictionary[code] for code in distinct[order]]
        data = self.values
        data = data[~np.isnan(data)]
        return list(np.unique(data))

    def to_list(self) -> list:
        """Values as a plain Python list (missing numeric values stay NaN)."""
        return list(self.values)

    def cast(self, ctype: ColumnType) -> "Column":
        """Return a copy coerced to a different logical type."""
        return Column(self.name, self.to_list(), ctype)


def infer_type(values) -> ColumnType:
    """Infer the logical type of a sequence of raw Python values."""
    if isinstance(values, np.ndarray) and values.dtype.kind in "fiu":
        return NUMERIC
    if isinstance(values, np.ndarray) and values.dtype.kind == "b":
        return BOOLEAN
    saw_bool = saw_number = saw_datetime = saw_string = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool) or isinstance(value, np.bool_):
            saw_bool = True
        elif isinstance(value, (int, float, np.integer, np.floating)):
            if isinstance(value, float) and np.isnan(value):
                continue
            saw_number = True
        elif isinstance(value, (_dt.date, _dt.datetime)):
            saw_datetime = True
        else:
            saw_string = True
    if saw_string:
        return CATEGORICAL
    if saw_datetime:
        return DATETIME
    if saw_bool and not saw_number:
        return BOOLEAN
    return NUMERIC


def _coerce_float(values, ctype: ColumnType) -> np.ndarray:
    """Coerce raw values into the float64 backing array for ``ctype``."""
    if ctype is DATETIME:
        if isinstance(values, np.ndarray) and values.dtype.kind == "f":
            return values.astype(np.float64)
        return np.array([_to_epoch_seconds(v) for v in values], dtype=np.float64)
    # numeric / boolean
    if isinstance(values, np.ndarray) and values.dtype.kind in "fiub":
        return values.astype(np.float64)
    out = np.empty(len(values), dtype=np.float64)
    for i, value in enumerate(values):
        if value is None:
            out[i] = np.nan
        elif isinstance(value, str):
            out[i] = float(value) if value.strip() else np.nan
        else:
            out[i] = float(value)
    return out


def remap_dictionary(dictionary: np.ndarray, index: dict[str, int], grow: bool = True) -> np.ndarray:
    """Translation table from one dictionary's codes into a shared code space.

    ``index`` maps already-assigned strings to their shared codes and is
    extended in place for unseen entries when ``grow`` is True (unseen entries
    map to ``-1`` otherwise).  The returned ``int32`` array has one extra slot
    so that indexing it with code ``-1`` yields ``-1`` (missing stays missing).
    """
    remap = np.empty(len(dictionary) + 1, dtype=np.int32)
    remap[len(dictionary)] = -1
    for j, text in enumerate(dictionary):
        code = index.get(text)
        if code is None:
            if grow:
                code = len(index)
                index[text] = code
            else:
                code = -1
        remap[j] = code
    return remap


def concat_columns(columns: Sequence[Column]) -> Column:
    """Vertically concatenate columns that share a name and type."""
    if not columns:
        raise ValueError("cannot concatenate an empty sequence of columns")
    first = columns[0]
    for col in columns[1:]:
        if col.ctype is not first.ctype:
            raise ValueError("cannot concatenate columns of different types")
    if first.ctype is CATEGORICAL:
        index: dict[str, int] = {}
        parts = [remap_dictionary(col.dictionary, index)[col.codes] for col in columns]
        merged = np.empty(len(index), dtype=object)
        for text, code in index.items():
            merged[code] = text
        exact = all(col._dict_exact for col in columns)
        return Column.from_codes(first.name, np.concatenate(parts), merged, dict_exact=exact)
    data = np.concatenate([col.values for col in columns])
    return Column.from_array(first.name, data, first.ctype)
