"""CSV input/output for tables, with simple type inference."""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path

import numpy as np

from repro.relational.schema import CATEGORICAL, DATETIME, ColumnType
from repro.relational.table import Table

_MISSING_TOKENS = {"", "na", "n/a", "nan", "null", "none"}


def _parse_cell(raw: str):
    """Parse one CSV cell into None, float, datetime or string."""
    stripped = raw.strip()
    if stripped.lower() in _MISSING_TOKENS:
        return None
    try:
        return float(stripped)
    except ValueError:
        pass
    try:
        return _dt.datetime.fromisoformat(stripped)
    except ValueError:
        pass
    return stripped


def read_csv(path: str | Path, name: str = "") -> Table:
    """Read a CSV file with a header row into a Table.

    Cell values are parsed as floats, ISO datetimes or strings; empty cells and
    common NA tokens become missing values.  Column types are inferred from the
    parsed values.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        return Table([], name=name or path.stem)
    header = rows[0]
    data: dict[str, list] = {col: [] for col in header}
    for row_number, raw_row in enumerate(rows[1:], start=2):
        if len(raw_row) > len(header):
            # silently zip-truncating extra cells would drop data; refuse loudly
            raise ValueError(
                f"{path}: row {row_number} has {len(raw_row)} cells but the "
                f"header declares {len(header)} columns"
            )
        for col, raw in zip(header, raw_row):
            data[col].append(_parse_cell(raw))
        for col in header[len(raw_row):]:
            data[col].append(None)
    return Table.from_dict(data, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV (datetimes as ISO strings, missing values empty)."""
    path = Path(path)
    columns = table.columns()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([col.name for col in columns])
        # decode each column once up front (views resolve, categoricals decode)
        arrays = [col.values for col in columns]
        for i in range(table.num_rows):
            row = [
                _format_cell(array[i], col.ctype)
                for col, array in zip(columns, arrays)
            ]
            writer.writerow(row)


def _format_cell(value, ctype: ColumnType) -> str:
    """Format one value for CSV output."""
    if ctype is CATEGORICAL:
        return "" if value is None else str(value)
    if isinstance(value, float) and np.isnan(value):
        return ""
    if ctype is DATETIME:
        return (_dt.datetime(1970, 1, 1) + _dt.timedelta(seconds=float(value))).isoformat()
    return repr(float(value))
