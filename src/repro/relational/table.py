"""The Table class: an ordered collection of equal-length typed columns."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.relational.column import Column, concat_columns
from repro.relational.schema import (
    CATEGORICAL,
    ColumnSpec,
    ColumnType,
    Schema,
)


def unique_name(name: str, existing: set[str], suffix: str = "_r") -> str:
    """Append ``suffix`` to ``name`` until it no longer clashes with ``existing``.

    The single source of truth for column-name collision handling, shared by
    joins, ``hstack`` and the batch-merge in the join layer so all of them
    assign the same final names.
    """
    while name in existing:
        name = name + suffix
    return name


class Table:
    """An immutable-by-convention columnar table.

    Tables are the unit of data exchanged between ARDA components: the user's
    base table, every candidate table in the repository, and the augmented
    output are all :class:`Table` instances.  Mutating operations return new
    tables; the underlying column arrays may be shared.
    """

    def __init__(self, columns: Sequence[Column], name: str = ""):
        lengths = {len(col) for col in columns}
        if len(lengths) > 1:
            raise ValueError(f"columns have inconsistent lengths: {sorted(lengths)}")
        names = [col.name for col in columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names in table")
        self._columns: dict[str, Column] = {col.name: col for col in columns}
        self.name = name

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, object],
        types: Mapping[str, ColumnType] | None = None,
        name: str = "",
    ) -> "Table":
        """Build a table from a mapping of column name to values.

        ``types`` optionally pins the logical type of specific columns; other
        columns get their type inferred from their values.
        """
        types = dict(types or {})
        columns = [
            Column(col_name, values, types.get(col_name))
            for col_name, values in data.items()
        ]
        return cls(columns, name=name)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, object]],
        types: Mapping[str, ColumnType] | None = None,
        name: str = "",
    ) -> "Table":
        """Build a table from a list of row dictionaries."""
        if not rows:
            return cls([], name=name)
        col_names: list[str] = []
        for row in rows:
            for key in row:
                if key not in col_names:
                    col_names.append(key)
        data = {key: [row.get(key) for row in rows] for key in col_names}
        return cls.from_dict(data, types=types, name=name)

    @classmethod
    def empty_like(cls, other: "Table", name: str = "") -> "Table":
        """An empty table with the same schema as ``other``."""
        columns = [
            Column(col.name, [], col.ctype) for col in other.columns()
        ]
        return cls(columns, name=name or other.name)

    # -- basic protocol ---------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> list[str]:
        """Column names in order."""
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns)."""
        return (self.num_rows, self.num_columns)

    def schema(self) -> Schema:
        """The table schema."""
        return Schema([ColumnSpec(c.name, c.ctype) for c in self._columns.values()])

    def columns(self) -> list[Column]:
        """The columns in order."""
        return list(self._columns.values())

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r} in table {self.name!r}; "
                f"available: {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self.column(n) == other.column(n) for n in self.column_names)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.num_columns})"

    # -- row access -------------------------------------------------------------

    def row(self, index: int) -> dict:
        """Return a single row as a dictionary."""
        return {name: col.value_at(index) for name, col in self._columns.items()}

    def iter_rows(self) -> Iterable[dict]:
        """Iterate over rows as dictionaries."""
        for i in range(self.num_rows):
            yield self.row(i)

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self.num_rows)))

    # -- column-level operations --------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto a subset of columns, in the given order."""
        return Table([self.column(n) for n in names], name=self.name)

    def drop(self, names: Sequence[str] | str) -> "Table":
        """Remove the given columns."""
        if isinstance(names, str):
            names = [names]
        drop_set = set(names)
        missing = drop_set - set(self.column_names)
        if missing:
            raise KeyError(f"cannot drop missing columns: {sorted(missing)}")
        keep = [c for c in self.columns() if c.name not in drop_set]
        return Table(keep, name=self.name)

    def with_column(self, column: Column) -> "Table":
        """Add or replace a column."""
        if self._columns and len(column) != self.num_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, table has {self.num_rows}"
            )
        columns = [c for c in self.columns() if c.name != column.name]
        columns.append(column)
        return Table(columns, name=self.name)

    def rename_columns(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``mapping`` (old name -> new name)."""
        columns = [
            col.rename(mapping.get(col.name, col.name)) for col in self.columns()
        ]
        return Table(columns, name=self.name)

    def prefix_columns(self, prefix: str, exclude: Sequence[str] = ()) -> "Table":
        """Prefix every column name except the excluded ones."""
        exclude_set = set(exclude)
        mapping = {
            name: f"{prefix}{name}"
            for name in self.column_names
            if name not in exclude_set
        }
        return self.rename_columns(mapping)

    def rename(self, name: str) -> "Table":
        """Return the same table under a different table name."""
        table = Table(self.columns(), name=name)
        return table

    # -- row-level operations ------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Select rows by integer position (supports repeats and reordering).

        Returns an index-backed view: every column defers its gather until the
        data is read, so coreset sampling and batch-join probing never copy
        feature columns they do not touch.
        """
        indices = np.asarray(indices)
        return Table([col.take(indices) for col in self.columns()], name=self.name)

    def filter(self, mask: np.ndarray) -> "Table":
        """Select rows where ``mask`` is True (lazy, like :meth:`take`)."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.num_rows:
            raise ValueError("mask length does not match row count")
        indices = np.nonzero(mask)[0]
        return Table([col.take(indices) for col in self.columns()], name=self.name)

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        """Sort rows by one column (missing values last)."""
        col = self.column(name)
        if col.ctype is CATEGORICAL:
            # rank the dictionary entries once (plus a max-codepoint sentinel
            # that keeps missing values sorting last, as the object-array
            # representation did) and argsort the per-row ranks
            dictionary = col.dictionary
            extended = np.empty(len(dictionary) + 1, dtype=object)
            extended[: len(dictionary)] = dictionary
            extended[len(dictionary)] = "￿"
            _, ranks = np.unique(extended, return_inverse=True)
            keys = ranks[col.codes]
            order = np.argsort(keys, kind="stable")
        else:
            order = np.argsort(col.values, kind="stable")
            nan_mask = np.isnan(col.values[order])
            order = np.concatenate([order[~nan_mask], order[nan_mask]])
        if descending:
            order = order[::-1]
        return self.take(order)

    def concat_rows(self, other: "Table") -> "Table":
        """Vertically stack another table with the same schema."""
        if self.column_names != other.column_names:
            raise ValueError("cannot concat tables with different columns")
        columns = [
            concat_columns([self.column(n), other.column(n)])
            for n in self.column_names
        ]
        return Table(columns, name=self.name)

    def hstack(self, other: "Table", suffix: str = "_r") -> "Table":
        """Horizontally stack another table with the same number of rows.

        Clashing column names from ``other`` get ``suffix`` appended.
        """
        if other.num_rows != self.num_rows:
            raise ValueError("cannot hstack tables with different row counts")
        columns = self.columns()
        existing = set(self.column_names)
        for col in other.columns():
            name = unique_name(col.name, existing, suffix)
            existing.add(name)
            columns.append(col.rename(name))
        return Table(columns, name=self.name)

    # -- persistence -----------------------------------------------------------------

    def save(self, path):
        """Write this table to ``path`` in the native binary columnar format.

        The write is atomic (temp file + ``os.replace``).  Returns the written
        :class:`~repro.relational.persist.TableHeader`, whose ``fingerprint``
        keys persisted column profiles.  See :mod:`repro.relational.persist`
        for the file layout.
        """
        from repro.relational.persist import write_table

        return write_table(self, path)

    @classmethod
    def load(cls, path, mmap: bool = True) -> "Table":
        """Load a table written by :meth:`save`.

        With ``mmap=True`` (default) numeric and dictionary-code buffers come
        back as copy-on-write memory maps: only the header and string
        dictionaries are read eagerly, row data is paged in on first access.
        """
        from repro.relational.persist import read_table

        return read_table(path, mmap=mmap)

    # -- conversion ------------------------------------------------------------------

    def to_dict(self) -> dict[str, list]:
        """Convert to a plain dict of lists."""
        return {name: col.to_list() for name, col in self._columns.items()}

    def numeric_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack float-backed columns into an ``(n_rows, n_cols)`` matrix."""
        if names is None:
            names = [c.name for c in self.columns() if c.ctype.is_float_backed]
        arrays = []
        for name in names:
            col = self.column(name)
            if not col.ctype.is_float_backed:
                raise ValueError(f"column {name!r} is categorical, not numeric")
            arrays.append(col.values)
        if not arrays:
            return np.empty((self.num_rows, 0), dtype=np.float64)
        return np.column_stack(arrays)

    def copy(self) -> "Table":
        """Deep copy of the table."""
        return Table([col.copy() for col in self.columns()], name=self.name)
