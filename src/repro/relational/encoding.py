"""Feature encoding: turn a relational table into a numeric design matrix.

ARDA binarises categorical features into one-hot indicator columns (so the
result is amenable to sketching and to the linear models in the ranking
ensemble) and leaves numeric / datetime / boolean columns as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.relational.column import Column
from repro.relational.imputation import impute_table
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table


@dataclass
class EncodedMatrix:
    """A numeric design matrix plus bookkeeping back to table columns.

    ``feature_names`` names each matrix column; ``source_columns`` maps each
    matrix column back to the table column it was derived from (one-hot
    expansion produces several matrix columns per categorical table column).
    """

    matrix: np.ndarray
    feature_names: list[str]
    source_columns: list[str]

    @property
    def num_features(self) -> int:
        """Number of encoded feature columns."""
        return self.matrix.shape[1]

    def columns_for_source(self, source: str) -> list[int]:
        """Indices of matrix columns derived from one table column."""
        return [i for i, s in enumerate(self.source_columns) if s == source]


def encode_features(
    table: Table,
    exclude: Sequence[str] = (),
    max_categories: int = 20,
    impute: bool = True,
    seed: int = 0,
) -> EncodedMatrix:
    """Encode every column except ``exclude`` into a float matrix.

    Categorical columns with at most ``max_categories`` distinct values are
    one-hot encoded; higher-cardinality categorical columns are frequency
    encoded (each value replaced by its relative frequency) to avoid blowing up
    the feature count.  Missing values are imputed first when ``impute`` is
    True, otherwise NaNs are replaced by 0 after encoding.
    """
    exclude_set = set(exclude)
    work = table.drop([c for c in exclude if c in table.column_names]) if exclude_set else table
    if impute:
        work = impute_table(work, seed=seed)

    blocks: list[np.ndarray] = []
    feature_names: list[str] = []
    source_columns: list[str] = []
    n = work.num_rows
    for col in work.columns():
        if col.ctype is CATEGORICAL:
            block, names = _encode_categorical(col, max_categories)
        else:
            block = np.asarray(col.values, dtype=np.float64).reshape(n, -1)
            names = [col.name]
        blocks.append(block)
        feature_names.extend(names)
        source_columns.extend([col.name] * block.shape[1])
    if blocks:
        matrix = np.column_stack(blocks)
    else:
        matrix = np.empty((n, 0), dtype=np.float64)
    matrix = np.nan_to_num(matrix, nan=0.0, posinf=0.0, neginf=0.0)
    return EncodedMatrix(matrix=matrix, feature_names=feature_names, source_columns=source_columns)


def _encode_categorical(col: Column, max_categories: int) -> tuple[np.ndarray, list[str]]:
    """One-hot or frequency encode a categorical column.

    Both encodings run on the dictionary codes: per-category work touches only
    the (small) dictionary and the per-row work is integer gathers — the row
    strings are never materialised.
    """
    codes = col.codes
    n = len(codes)
    categories = col.unique()
    if 0 < len(categories) <= max_categories:
        # translate dictionary codes into one-hot column positions
        position = {cat: j for j, cat in enumerate(categories)}
        code_to_column = np.full(len(col.dictionary) + 1, -1, dtype=np.int64)
        for code, cat in enumerate(col.dictionary):
            code_to_column[code] = position.get(cat, -1)
        columns = code_to_column[codes]
        block = np.zeros((n, len(categories)), dtype=np.float64)
        rows = np.nonzero(columns >= 0)[0]
        block[rows, columns[rows]] = 1.0
        names = [f"{col.name}={cat}" for cat in categories]
        return block, names
    # frequency encoding for high-cardinality (or all-missing) columns; the
    # count table has one spare slot so that code -1 reads a count of zero
    counts = np.bincount(codes[codes >= 0], minlength=len(col.dictionary) + 1)
    frequency = counts[codes] / max(n, 1)
    return frequency.reshape(n, 1).astype(np.float64), [f"{col.name}__freq"]


def to_design_matrix(
    table: Table,
    target: str,
    exclude: Sequence[str] = (),
    max_categories: int = 20,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, EncodedMatrix]:
    """Split a table into ``(X, y, encoding)`` for model training.

    The target column is returned as a float vector for regression targets and
    as integer class codes for categorical targets.
    """
    target_col = table.column(target)
    y = encode_target(target_col)
    features = encode_features(
        table, exclude=list(exclude) + [target], max_categories=max_categories, seed=seed
    )
    return features.matrix, y, features


def encode_target(column: Column) -> np.ndarray:
    """Encode a target column: floats for numeric, class codes for categorical.

    Categorical targets map through the dictionary (sorted distinct values get
    class codes 0..K-1, missing values -1) with one integer gather per row.
    """
    if column.ctype is CATEGORICAL:
        categories = sorted(column.unique())
        index = {cat: i for i, cat in enumerate(categories)}
        code_to_class = np.full(len(column.dictionary) + 1, -1.0, dtype=np.float64)
        for code, cat in enumerate(column.dictionary):
            code_to_class[code] = index.get(cat, -1)
        return code_to_class[column.codes]
    return column.values.astype(np.float64)
