"""Feature encoding: turn a relational table into a numeric design matrix.

ARDA binarises categorical features into one-hot indicator columns (so the
result is amenable to sketching and to the linear models in the ranking
ensemble) and leaves numeric / datetime / boolean columns as-is.

Three sibling entry points share the same per-column kernels:

* :func:`encode_features` / :func:`to_design_matrix` — the float design
  matrix used by selection search loops and exact-kernel estimators.
* :func:`encode_features_binned` / :func:`to_binned_matrix` — the quantised
  :class:`~repro.ml.binning.BinnedMatrix` consumed by histogram-kernel
  estimators (``selector.select(..., binned=...)``); byte-identical feature
  layout and bins to quantising the float matrix, computed straight from
  dictionary codes.
* :class:`FittedEncoder` — the serving path: :meth:`FittedEncoder.fit`
  records each column's encoding decision (one-hot category list, per-value
  frequency table) and :meth:`FittedEncoder.transform` replays it on unseen
  rows through the *same* one-hot / frequency kernels, so transform of the
  training table reproduces the training matrix byte-for-byte while unseen
  categories encode as all-zero indicators / zero frequency.

Determinism contract: encoding consumes no RNG draws itself (the ``seed``
parameters only feed the optional imputation pass); every function leaves its
input table untouched and returns fresh arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.binning import (
    DEFAULT_MAX_BINS,
    BinnedMatrix,
    bin_column,
    bin_value_ranges,
    check_max_bins,
)
from repro.relational.column import Column
from repro.relational.imputation import impute_table
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table


@dataclass
class EncodedMatrix:
    """A numeric design matrix plus bookkeeping back to table columns.

    ``feature_names`` names each matrix column; ``source_columns`` maps each
    matrix column back to the table column it was derived from (one-hot
    expansion produces several matrix columns per categorical table column).
    """

    matrix: np.ndarray
    feature_names: list[str]
    source_columns: list[str]

    @property
    def num_features(self) -> int:
        """Number of encoded feature columns."""
        return self.matrix.shape[1]

    def columns_for_source(self, source: str) -> list[int]:
        """Indices of matrix columns derived from one table column."""
        return [i for i, s in enumerate(self.source_columns) if s == source]


def encode_features(
    table: Table,
    exclude: Sequence[str] = (),
    max_categories: int = 20,
    impute: bool = True,
    seed: int = 0,
) -> EncodedMatrix:
    """Encode every column except ``exclude`` into a float matrix.

    Categorical columns with at most ``max_categories`` distinct values are
    one-hot encoded; higher-cardinality categorical columns are frequency
    encoded (each value replaced by its relative frequency) to avoid blowing up
    the feature count.  Missing values are imputed first when ``impute`` is
    True, otherwise NaNs are replaced by 0 after encoding.
    """
    exclude_set = set(exclude)
    work = table.drop([c for c in exclude if c in table.column_names]) if exclude_set else table
    if impute:
        work = impute_table(work, seed=seed)

    blocks: list[np.ndarray] = []
    feature_names: list[str] = []
    source_columns: list[str] = []
    n = work.num_rows
    for col in work.columns():
        if col.ctype is CATEGORICAL:
            block, names = _encode_categorical(col, max_categories)
        else:
            block = _numeric_block(col)
            names = [col.name]
        blocks.append(block)
        feature_names.extend(names)
        source_columns.extend([col.name] * block.shape[1])
    matrix = _assemble_matrix(blocks, n)
    return EncodedMatrix(matrix=matrix, feature_names=feature_names, source_columns=source_columns)


def _numeric_block(col: Column) -> np.ndarray:
    """A float-backed column as an ``(n, 1)`` matrix block (0-row safe)."""
    return np.asarray(col.values, dtype=np.float64).reshape(len(col), 1)


def _assemble_matrix(blocks: list[np.ndarray], n: int) -> np.ndarray:
    """Stack per-column blocks and sanitise non-finite values to zero.

    Shared by the training and fitted paths so both produce the exact same
    float stream for the same blocks.
    """
    if blocks:
        matrix = np.column_stack(blocks)
    else:
        matrix = np.empty((n, 0), dtype=np.float64)
    return np.nan_to_num(matrix, nan=0.0, posinf=0.0, neginf=0.0)


def _one_hot_positions(col: Column, categories: list) -> np.ndarray:
    """Per-row one-hot column index (-1 for missing / unlisted categories).

    Runs on the dictionary codes: per-category work touches only the (small)
    dictionary and the per-row work is one integer gather — the row strings
    are never materialised.
    """
    position = {cat: j for j, cat in enumerate(categories)}
    code_to_column = np.full(len(col.dictionary) + 1, -1, dtype=np.int64)
    for code, cat in enumerate(col.dictionary):
        code_to_column[code] = position.get(cat, -1)
    return code_to_column[col.codes]


def _frequency_per_code(col: Column) -> np.ndarray:
    """Relative frequency per dictionary code, with a trailing 0.0 slot.

    The spare slot means indexing with code ``-1`` reads a frequency of zero,
    so missing rows encode as 0.0.
    """
    codes = col.codes
    counts = np.bincount(codes[codes >= 0], minlength=len(col.dictionary) + 1)
    return counts / max(len(codes), 1)


def _one_hot_block(col: Column, categories: list) -> np.ndarray:
    """The one-hot indicator block for an explicit category list.

    Shared by the training and fitted paths: values outside ``categories``
    (including fit-time-unseen dictionary entries) produce all-zero rows.
    """
    columns = _one_hot_positions(col, categories)
    block = np.zeros((len(columns), len(categories)), dtype=np.float64)
    rows = np.nonzero(columns >= 0)[0]
    block[rows, columns[rows]] = 1.0
    return block


def _frequency_block(col: Column, frequency_per_code: np.ndarray) -> np.ndarray:
    """The frequency column for a per-code frequency array (one row gather).

    ``frequency_per_code`` must carry a trailing 0.0 slot so code ``-1``
    (missing) reads zero.  Shared by the training path (frequencies of the
    column itself) and the fitted path (fit-time frequencies remapped onto
    the input's dictionary).
    """
    n = len(col.codes)
    return frequency_per_code[col.codes].reshape(n, 1).astype(np.float64)


def _encode_categorical(col: Column, max_categories: int) -> tuple[np.ndarray, list[str]]:
    """One-hot or frequency encode a categorical column (codes end to end)."""
    categories = col.unique()
    if 0 < len(categories) <= max_categories:
        block = _one_hot_block(col, categories)
        names = [f"{col.name}={cat}" for cat in categories]
        return block, names
    # frequency encoding for high-cardinality (or all-missing) columns
    return _frequency_block(col, _frequency_per_code(col)), [f"{col.name}__freq"]


def to_design_matrix(
    table: Table,
    target: str,
    exclude: Sequence[str] = (),
    max_categories: int = 20,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, EncodedMatrix]:
    """Split a table into ``(X, y, encoding)`` for model training.

    The target column is returned as a float vector for regression targets and
    as integer class codes for categorical targets.
    """
    target_col = table.column(target)
    y = encode_target(target_col)
    features = encode_features(
        table, exclude=list(exclude) + [target], max_categories=max_categories, seed=seed
    )
    return features.matrix, y, features


def encode_features_binned(
    table: Table,
    exclude: Sequence[str] = (),
    max_categories: int = 20,
    impute: bool = True,
    seed: int = 0,
    max_bins: int = DEFAULT_MAX_BINS,
) -> BinnedMatrix:
    """Encode a table straight into a :class:`~repro.ml.binning.BinnedMatrix`.

    Produces exactly the bins :meth:`BinnedMatrix.from_matrix` would produce
    for :func:`encode_features`'s float matrix — same feature layout, same bin
    codes, same bin boundaries — but categorical columns map their dictionary
    codes directly to bin codes: the decoded row strings are never
    materialised and (for the one-hot/frequency fast paths) neither is the
    per-row float block.
    """
    max_bins = check_max_bins(max_bins)
    exclude_set = set(exclude)
    work = table.drop([c for c in exclude if c in table.column_names]) if exclude_set else table
    if impute:
        work = impute_table(work, seed=seed)

    n = work.num_rows
    blocks: list[np.ndarray] = []  # per-block uint8 code columns, shape (n, k)
    bin_min: list[np.ndarray] = []
    bin_max: list[np.ndarray] = []
    feature_names: list[str] = []
    source_columns: list[str] = []
    for col in work.columns():
        if col.ctype is CATEGORICAL:
            block, mins, maxs, names = _bin_categorical(col, max_categories, max_bins)
        else:
            values = np.asarray(col.values, dtype=np.float64)
            codes, col_min, col_max = bin_column(values, max_bins)
            block, mins, maxs, names = codes.reshape(n, 1), [col_min], [col_max], [col.name]
        blocks.append(block)
        bin_min.extend(mins)
        bin_max.extend(maxs)
        feature_names.extend(names)
        source_columns.extend([col.name] * block.shape[1])

    d = len(feature_names)
    codes = np.empty((n, d), dtype=np.uint8, order="F")
    offset = 0
    for block in blocks:
        codes[:, offset : offset + block.shape[1]] = block
        offset += block.shape[1]
    return BinnedMatrix(codes, bin_min, bin_max, max_bins, feature_names, source_columns)


def _bin_categorical(col: Column, max_categories: int, max_bins: int):
    """Bin a categorical column's one-hot / frequency features from its codes."""
    codes = col.codes
    n = len(codes)
    categories = col.unique()
    if 0 < len(categories) <= max_categories:
        columns = _one_hot_positions(col, categories)
        block = np.empty((n, len(categories)), dtype=np.uint8)
        mins: list[np.ndarray] = []
        maxs: list[np.ndarray] = []
        for j in range(len(categories)):
            indicator = columns == j
            ones = int(indicator.sum())
            if 0 < ones < n:
                # both 0.0 and 1.0 occur: two singleton bins cut at 0.5
                block[:, j] = indicator
                edges = np.array([0.0, 1.0])
            else:
                # constant column: a single bin holding its only value
                block[:, j] = 0
                edges = np.array([1.0 if ones else 0.0])
            mins.append(edges)
            maxs.append(edges)
        names = [f"{col.name}={cat}" for cat in categories]
        return block, mins, maxs, names
    frequency = _frequency_per_code(col)
    present = np.unique(codes)  # sorted; may include -1, which reads the 0.0 slot
    distinct = np.unique(frequency[present])
    if len(distinct) <= max_bins:
        # map each dictionary code to its frequency's bin, then gather per row
        cuts = (distinct[:-1] + distinct[1:]) / 2.0
        bin_of_code = np.searchsorted(cuts, frequency, side="left").astype(np.uint8)
        block = bin_of_code[codes].reshape(n, 1)
        col_min, col_max = bin_value_ranges(distinct, cuts)
    else:
        # >max_bins distinct frequencies: quantile-bin the (numeric) row values
        row_codes, col_min, col_max = bin_column(frequency[codes], max_bins)
        block = row_codes.reshape(n, 1)
    return block, [col_min], [col_max], [f"{col.name}__freq"]


def to_binned_matrix(
    table: Table,
    target: str,
    exclude: Sequence[str] = (),
    max_categories: int = 20,
    seed: int = 0,
    max_bins: int = DEFAULT_MAX_BINS,
) -> tuple[BinnedMatrix, np.ndarray]:
    """Split a table into ``(binned_X, y)`` for histogram-kernel training.

    The binned sibling of :func:`to_design_matrix`: identical feature layout
    (``feature_names`` / ``source_columns`` ride on the returned matrix) and
    bit-identical bins to quantising the float design matrix, without decoding
    categorical strings.
    """
    y = encode_target(table.column(target))
    binned = encode_features_binned(
        table,
        exclude=list(exclude) + [target],
        max_categories=max_categories,
        seed=seed,
        max_bins=max_bins,
    )
    return binned, y


# -- fitted replay -------------------------------------------------------------


@dataclass
class ColumnEncoderState:
    """The fitted encoding decision of one table column.

    ``kind`` is ``"numeric"`` (pass-through), ``"onehot"`` (indicator per
    fit-time category, in fit-time order) or ``"frequency"`` (each value
    replaced by its fit-time relative frequency; unseen values read 0.0).
    """

    name: str
    kind: str
    feature_names: list[str]
    categories: list[str] | None = None
    frequency_values: list[str] | None = None
    frequencies: np.ndarray | None = None


class FittedEncoder:
    """Per-column encoding decisions captured from one training table.

    Built by :meth:`fit` over the (already imputed) training table;
    :meth:`transform` replays the decisions on any table carrying the fitted
    feature columns, producing a matrix with the training feature layout.
    Unseen categorical values one-hot to all-zero rows and frequency-encode
    to 0.0 — the same treatment the training kernels give unlisted values.
    """

    def __init__(self, columns: list[ColumnEncoderState], max_categories: int = 20):
        self.columns = columns
        self.max_categories = max_categories

    @property
    def feature_names(self) -> list[str]:
        """Matrix column names, in order."""
        return [name for state in self.columns for name in state.feature_names]

    @property
    def source_columns(self) -> list[str]:
        """The table column each matrix column derives from, in order."""
        return [
            state.name for state in self.columns for _ in state.feature_names
        ]

    @classmethod
    def fit(
        cls,
        table: Table,
        exclude: Sequence[str] = (),
        max_categories: int = 20,
    ) -> tuple["FittedEncoder", EncodedMatrix]:
        """Record every column's encoding decision and return the encoded matrix.

        ``table`` must already be imputed (see :class:`FittedImputer` in
        :mod:`repro.relational.imputation`); the returned matrix is
        byte-identical to ``encode_features(table, exclude, max_categories,
        impute=False)``, produced by running :meth:`transform` on the
        recorded state.
        """
        exclude_set = set(exclude)
        states: list[ColumnEncoderState] = []
        for col in table.columns():
            if col.name in exclude_set:
                continue
            if col.ctype is CATEGORICAL:
                categories = col.unique()
                if 0 < len(categories) <= max_categories:
                    states.append(
                        ColumnEncoderState(
                            name=col.name,
                            kind="onehot",
                            feature_names=[f"{col.name}={cat}" for cat in categories],
                            categories=list(categories),
                        )
                    )
                else:
                    frequency = _frequency_per_code(col)
                    states.append(
                        ColumnEncoderState(
                            name=col.name,
                            kind="frequency",
                            feature_names=[f"{col.name}__freq"],
                            frequency_values=list(col.dictionary),
                            frequencies=frequency[: len(col.dictionary)].astype(
                                np.float64
                            ),
                        )
                    )
            else:
                states.append(
                    ColumnEncoderState(
                        name=col.name, kind="numeric", feature_names=[col.name]
                    )
                )
        encoder = cls(states, max_categories=max_categories)
        matrix = encoder.transform(table)
        return encoder, EncodedMatrix(
            matrix=matrix,
            feature_names=encoder.feature_names,
            source_columns=encoder.source_columns,
        )

    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` with the fitted decisions (training feature layout).

        Every fitted column must be present in the input (``KeyError``
        otherwise); extra input columns — e.g. the training target riding
        along — are ignored.  The input is expected to be imputed already;
        stray NaNs are sanitised to 0.0 exactly as the training path does.
        """
        missing = [state.name for state in self.columns if state.name not in table]
        if missing:
            raise KeyError(f"input is missing fitted feature columns: {missing}")
        blocks: list[np.ndarray] = []
        n = table.num_rows
        for state in self.columns:
            col = table.column(state.name)
            if state.kind == "numeric":
                if col.ctype is CATEGORICAL:
                    raise TypeError(
                        f"column {state.name!r} was numeric at fit time, got categorical"
                    )
                blocks.append(_numeric_block(col))
                continue
            if col.ctype is not CATEGORICAL:
                raise TypeError(
                    f"column {state.name!r} was categorical at fit time, "
                    f"got {col.ctype.value}"
                )
            if state.kind == "onehot":
                blocks.append(_one_hot_block(col, state.categories))
            else:
                blocks.append(_frequency_block(col, self._remap_frequencies(col, state)))
        return _assemble_matrix(blocks, n)

    @staticmethod
    def _remap_frequencies(col: Column, state: ColumnEncoderState) -> np.ndarray:
        """Fit-time per-value frequencies remapped onto the input's dictionary.

        The result has the trailing 0.0 slot :func:`_frequency_block` expects;
        values the fit never saw read 0.0.
        """
        mapping = dict(zip(state.frequency_values, state.frequencies))
        out = np.zeros(len(col.dictionary) + 1, dtype=np.float64)
        for code, value in enumerate(col.dictionary):
            out[code] = mapping.get(value, 0.0)
        return out


def encode_target(column: Column) -> np.ndarray:
    """Encode a target column: floats for numeric, class codes for categorical.

    Categorical targets map through the dictionary (sorted distinct values get
    class codes 0..K-1, missing values -1) with one integer gather per row.
    """
    if column.ctype is CATEGORICAL:
        categories = sorted(column.unique())
        index = {cat: i for i, cat in enumerate(categories)}
        code_to_class = np.full(len(column.dictionary) + 1, -1.0, dtype=np.float64)
        for code, cat in enumerate(column.dictionary):
            code_to_class[code] = index.get(cat, -1)
        return code_to_class[column.codes]
    return column.values.astype(np.float64)
