"""Time resampling for joins between tables of different time granularity.

The paper's example: the base table carries day-level timestamps while the
foreign weather table carries minute-level timestamps.  ARDA identifies the
coarser granularity, truncates the finer table's key to it and aggregates all
rows that fall into the same bucket before joining (section 4,
"Time-Resampling").
"""

from __future__ import annotations

import numpy as np

from repro.relational.aggregate import group_by_aggregate
from repro.relational.column import Column
from repro.relational.table import Table

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

_GRANULARITIES: tuple[tuple[str, float], ...] = (
    ("second", SECOND),
    ("minute", MINUTE),
    ("hour", HOUR),
    ("day", DAY),
    ("week", WEEK),
)


def granularity_seconds(name_or_seconds: str | float) -> float:
    """Resolve a granularity given by name ('hour') or in seconds."""
    if isinstance(name_or_seconds, (int, float)):
        if name_or_seconds <= 0:
            raise ValueError("granularity must be positive")
        return float(name_or_seconds)
    for name, seconds in _GRANULARITIES:
        if name == name_or_seconds:
            return seconds
    raise ValueError(
        f"unknown granularity {name_or_seconds!r}; "
        f"expected one of {[n for n, _ in _GRANULARITIES]} or seconds"
    )


def infer_granularity(values: np.ndarray) -> float:
    """Infer the time granularity (in seconds) of a timestamp column.

    The granularity is the coarsest named bucket such that every non-missing
    timestamp is a multiple of it.  Falls back to one second.
    """
    valid = values[~np.isnan(values)]
    if len(valid) == 0:
        return SECOND
    for name, seconds in reversed(_GRANULARITIES):
        if np.allclose(np.mod(valid, seconds), 0.0, atol=1e-6):
            return seconds
    return SECOND


def truncate_to_granularity(values: np.ndarray, granularity: float) -> np.ndarray:
    """Floor timestamps to multiples of ``granularity`` (NaNs pass through)."""
    out = np.floor(values / granularity) * granularity
    return out


def resample_to_granularity(
    table: Table,
    time_key: str,
    granularity: str | float,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
) -> Table:
    """Aggregate a table so its time key is unique at the given granularity.

    The time key is truncated (floored) to the granularity and every group of
    rows sharing a truncated timestamp is aggregated into one row.
    """
    seconds = granularity_seconds(granularity)
    col = table.column(time_key)
    truncated = truncate_to_granularity(col.values.astype(np.float64), seconds)
    resampled = table.with_column(Column.from_array(time_key, truncated, col.ctype))
    return group_by_aggregate(
        resampled, [time_key], numeric_agg=numeric_agg, categorical_agg=categorical_agg
    )


def align_time_granularity(
    base: Table,
    foreign: Table,
    base_key: str,
    foreign_key: str,
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
) -> Table:
    """Resample the foreign table to match the base table's time granularity.

    If the foreign key is already at the base granularity or coarser, the
    foreign table is returned unchanged (a copy is not made).
    """
    base_gran = infer_granularity(base.column(base_key).values)
    foreign_gran = infer_granularity(foreign.column(foreign_key).values)
    if foreign_gran >= base_gran:
        return foreign
    return resample_to_granularity(
        foreign,
        foreign_key,
        base_gran,
        numeric_agg=numeric_agg,
        categorical_agg=categorical_agg,
    )
