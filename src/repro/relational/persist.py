"""Native binary columnar table format with memory-mapped lazy loading.

A ``.tbl`` file is a versioned header followed by 64-byte-aligned per-column
pages:

* numeric / datetime / boolean columns store their ``float64`` backing array
  verbatim in one **data page**,
* categorical columns store their ``int32`` dictionary codes in a **codes
  page** plus a compact **dictionary page** (an ``int64`` offsets array and the
  concatenated UTF-8 bytes of the distinct strings, in dictionary order).

The header is a small JSON document (schema, row count, page extents and a
content fingerprint) so catalogs can be built from headers alone.  Reading a
table back with ``mmap=True`` (the default) maps the file copy-on-write and
wraps the numeric and code buffers as views into the mapping: loading touches
only the header and the (small) dictionary pages, and row data is paged in by
the OS on first access.  Writes go to a temporary file in the same directory
and are published with ``os.replace``, so an already-mapped reader keeps
seeing the old bytes (the old inode survives until its last mapping is
dropped) while new readers see the new table.

Every byte explicitly read by this module is counted in a process-wide
counter (:func:`bytes_read` / :func:`reset_bytes_read`); memory-mapped pages
count as zero until the benchmark or caller actually faults them in, which is
what lets ``bench_persistence.py`` verify that opening a repository reads only
headers.

Besides single tables, the module defines the **repository manifest**: a
small versioned catalog file (:class:`RepositoryManifest`, published with
:func:`write_manifest` / read with :func:`read_manifest`) mapping table names
to ``{file, content fingerprint}`` under a monotonically increasing
generation number.  The manifest is what gives
:class:`~repro.discovery.repository.DataRepository` snapshot-isolated
concurrent reads and writes — see that module for the protocol.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path

import numpy as np

from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL, ColumnSpec, ColumnType, Schema
from repro.relational.table import Table

MAGIC = b"RPROTBLF"
FORMAT_VERSION = 1
_ALIGN = 64
_PREFIX_LEN = len(MAGIC) + 8  # magic + uint32 version + uint32 header length

_bytes_read = 0


def bytes_read() -> int:
    """Total bytes explicitly read from table files since the last reset."""
    return _bytes_read


def reset_bytes_read() -> None:
    """Zero the explicit-read byte counter (see module docstring)."""
    global _bytes_read
    _bytes_read = 0


def _count(n: int) -> None:
    global _bytes_read
    _bytes_read += n


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def atomic_replace(path: Path, write_to) -> None:
    """Write a file atomically: unique temp sibling, then ``os.replace``.

    ``write_to`` receives the open binary handle.  A unique temp name (via
    ``tempfile.mkstemp`` in the target directory) means two concurrent writers
    never interleave — each assembles its own file and the last replace wins —
    and the temp file is removed if writing fails.
    """
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write_to(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class TableFormatError(ValueError):
    """A table file is not readable: bad magic, wrong version or truncated."""


class ManifestFormatError(TableFormatError):
    """A repository manifest is not readable: bad magic, version or payload."""


@dataclass
class PageRef:
    """Extent of one page, relative to the start of the file's page region."""

    offset: int
    nbytes: int


@dataclass
class ColumnMeta:
    """Header entry for one column: its type and where its pages live."""

    name: str
    ctype: ColumnType
    data: PageRef | None = None  # float64 page (non-categorical)
    codes: PageRef | None = None  # int32 page (categorical)
    dictionary: PageRef | None = None  # offsets + utf-8 page (categorical)
    dict_count: int = 0
    dict_exact: bool = False


@dataclass
class TableHeader:
    """Everything `DataRepository.open` needs without touching row data."""

    name: str
    num_rows: int
    fingerprint: str
    columns: list[ColumnMeta]
    pages_start: int
    pages_nbytes: int
    # free-form writer-supplied metadata (e.g. ingestion provenance); not part
    # of the content fingerprint
    meta: dict | None = None

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def schema(self) -> Schema:
        """The stored table's schema."""
        return Schema([ColumnSpec(col.name, col.ctype) for col in self.columns])


# -- fingerprinting ----------------------------------------------------------


def _column_payloads(column: Column):
    """Yield the raw page payload bytes of one column, in a canonical order.

    The same byte stream feeds both the file pages and the content
    fingerprint, so a fingerprint computed from an in-memory table matches the
    one stored in the header its ``save()`` produces.
    """
    if column.ctype is CATEGORICAL:
        codes = np.ascontiguousarray(column.codes, dtype="<i4")
        encoded = [str(entry).encode("utf-8") for entry in column.dictionary]
        offsets = np.zeros(len(encoded) + 1, dtype="<i8")
        if encoded:
            np.cumsum([len(e) for e in encoded], out=offsets[1:])
        yield "codes", codes.tobytes()
        yield "dict", offsets.tobytes() + b"".join(encoded)
    else:
        yield "data", np.ascontiguousarray(column.values, dtype="<f8").tobytes()


def table_fingerprint(table: Table) -> str:
    """Content fingerprint of a table (hex), matching the stored header's.

    Hashes the schema plus every column's canonical page bytes, so two tables
    fingerprint equal iff they would serialise to identical pages (dictionary
    order included).  Used to key persisted column profiles.
    """
    hasher = blake2b(digest_size=16)
    for column in table.columns():
        hasher.update(column.name.encode("utf-8"))
        hasher.update(column.ctype.value.encode("ascii"))
        for _kind, payload in _column_payloads(column):
            hasher.update(payload)
    return hasher.hexdigest()


# -- writing -----------------------------------------------------------------


def write_table(table: Table, path: str | Path, meta: dict | None = None) -> TableHeader:
    """Serialise ``table`` to ``path`` atomically; returns the written header.

    The file is assembled in a uniquely-named temporary sibling and published
    with ``os.replace``, so concurrent readers either see the old complete
    file or the new complete file, existing memory maps stay valid, and two
    concurrent writers cannot interleave (last replace wins).  ``meta`` is an
    optional JSON-serialisable dict stored in the header (e.g. ingestion
    provenance); it does not affect the content fingerprint.
    """
    path = Path(path)
    hasher = blake2b(digest_size=16)
    pages: list[bytes] = []
    columns_meta: list[ColumnMeta] = []
    rel = 0

    def add_page(payload: bytes) -> PageRef:
        nonlocal rel
        ref = PageRef(offset=rel, nbytes=len(payload))
        pages.append(payload)
        rel += len(payload)
        pad = _align(rel) - rel
        if pad:
            pages.append(b"\x00" * pad)
            rel += pad
        return ref

    for column in table.columns():
        hasher.update(column.name.encode("utf-8"))
        hasher.update(column.ctype.value.encode("ascii"))
        col_meta = ColumnMeta(name=column.name, ctype=column.ctype)
        for kind, payload in _column_payloads(column):
            hasher.update(payload)
            ref = add_page(payload)
            if kind == "data":
                col_meta.data = ref
            elif kind == "codes":
                col_meta.codes = ref
            else:
                col_meta.dictionary = ref
                col_meta.dict_count = len(column.dictionary)
                col_meta.dict_exact = column.dictionary_is_exact
        columns_meta.append(col_meta)

    fingerprint = hasher.hexdigest()
    header_doc = {
        "name": table.name,
        "num_rows": table.num_rows,
        "fingerprint": fingerprint,
        "columns": [_meta_to_doc(col_meta) for col_meta in columns_meta],
    }
    if meta:
        header_doc["meta"] = meta
    header_bytes = json.dumps(header_doc, separators=(",", ":")).encode("utf-8")
    pages_start = _align(_PREFIX_LEN + len(header_bytes))

    def write_to(handle):
        handle.write(MAGIC)
        handle.write(FORMAT_VERSION.to_bytes(4, "little"))
        handle.write(len(header_bytes).to_bytes(4, "little"))
        handle.write(header_bytes)
        handle.write(b"\x00" * (pages_start - _PREFIX_LEN - len(header_bytes)))
        for payload in pages:
            handle.write(payload)

    atomic_replace(path, write_to)
    return TableHeader(
        name=table.name,
        num_rows=table.num_rows,
        fingerprint=fingerprint,
        columns=columns_meta,
        pages_start=pages_start,
        pages_nbytes=rel,
        meta=meta,
    )


def _meta_to_doc(meta: ColumnMeta) -> dict:
    doc: dict = {"name": meta.name, "ctype": meta.ctype.value}
    if meta.data is not None:
        doc["data"] = [meta.data.offset, meta.data.nbytes]
    if meta.codes is not None:
        doc["codes"] = [meta.codes.offset, meta.codes.nbytes]
    if meta.dictionary is not None:
        doc["dict"] = [meta.dictionary.offset, meta.dictionary.nbytes, meta.dict_count]
        doc["dict_exact"] = meta.dict_exact
    return doc


def _meta_from_doc(doc: dict) -> ColumnMeta:
    meta = ColumnMeta(name=doc["name"], ctype=ColumnType(doc["ctype"]))
    if "data" in doc:
        meta.data = PageRef(*doc["data"])
    if "codes" in doc:
        meta.codes = PageRef(*doc["codes"])
    if "dict" in doc:
        offset, nbytes, count = doc["dict"]
        meta.dictionary = PageRef(offset, nbytes)
        meta.dict_count = count
        meta.dict_exact = bool(doc.get("dict_exact", False))
    return meta


# -- repository manifest ------------------------------------------------------

MANIFEST_MAGIC = b"RPROMANF"
MANIFEST_VERSION = 1
_MANIFEST_PREFIX_LEN = len(MANIFEST_MAGIC) + 8  # magic + uint32 version + uint32 length


@dataclass
class ManifestEntry:
    """One table of a manifest generation: its file name and content identity."""

    file: str
    fingerprint: str
    num_rows: int = 0


@dataclass
class RepositoryManifest:
    """A versioned catalog of a repository directory: one committed generation.

    The manifest is the unit of snapshot isolation for disk-backed
    repositories: writers assemble the next ``{table name → ManifestEntry}``
    map, bump ``generation`` by one and publish the whole document in a single
    ``os.replace`` (:func:`write_manifest`), so a concurrent reader opening
    the file sees either the previous complete generation or the new complete
    generation, never a mix.  ``generation`` is strictly monotonically
    increasing over the lifetime of a directory; snapshot readers use it to
    order their observations.
    """

    generation: int
    tables: dict[str, ManifestEntry]

    def files(self) -> set[str]:
        """The file names referenced by this generation."""
        return {entry.file for entry in self.tables.values()}


def write_manifest(path: str | Path, manifest: RepositoryManifest) -> None:
    """Publish a manifest generation atomically (temp sibling + ``os.replace``).

    The payload is ``MANIFEST_MAGIC`` + little-endian uint32 version + uint32
    JSON length + the JSON document, assembled in a uniquely-named temp file
    so a crash between the temp write and the replace leaves only ``*.tmp``
    debris next to an intact previous generation.
    """
    path = Path(path)
    if manifest.generation < 0:
        raise ValueError(f"manifest generation must be >= 0, got {manifest.generation}")
    doc = {
        "generation": manifest.generation,
        "tables": {
            name: {
                "file": entry.file,
                "fingerprint": entry.fingerprint,
                "num_rows": entry.num_rows,
            }
            for name, entry in manifest.tables.items()
        },
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")

    def write_to(handle):
        handle.write(MANIFEST_MAGIC)
        handle.write(MANIFEST_VERSION.to_bytes(4, "little"))
        handle.write(len(payload).to_bytes(4, "little"))
        handle.write(payload)

    atomic_replace(path, write_to)


def read_manifest(path: str | Path) -> RepositoryManifest:
    """Read a manifest written by :func:`write_manifest`.

    Raises :class:`ManifestFormatError` on bad magic, an unsupported version,
    a truncated payload or a malformed document — a manifest is either a
    complete committed generation or an error, never a partial catalog.
    """
    path = Path(path)
    with path.open("rb") as handle:
        prefix = handle.read(_MANIFEST_PREFIX_LEN)
        _count(len(prefix))
        if len(prefix) < _MANIFEST_PREFIX_LEN or prefix[: len(MANIFEST_MAGIC)] != MANIFEST_MAGIC:
            raise ManifestFormatError(f"{path}: not a repository manifest (bad magic)")
        version = int.from_bytes(prefix[len(MANIFEST_MAGIC) : len(MANIFEST_MAGIC) + 4], "little")
        if version != MANIFEST_VERSION:
            raise ManifestFormatError(
                f"{path}: unsupported manifest version {version} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        length = int.from_bytes(prefix[len(MANIFEST_MAGIC) + 4 :], "little")
        payload = handle.read(length)
        _count(len(payload))
    if len(payload) < length:
        raise ManifestFormatError(f"{path}: truncated manifest payload")
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ManifestFormatError(f"{path}: corrupt manifest JSON: {exc}") from None
    generation = doc.get("generation")
    tables_doc = doc.get("tables")
    if not isinstance(generation, int) or generation < 0 or not isinstance(tables_doc, dict):
        raise ManifestFormatError(f"{path}: malformed manifest document")
    tables: dict[str, ManifestEntry] = {}
    for name, entry in tables_doc.items():
        try:
            tables[name] = ManifestEntry(
                file=entry["file"],
                fingerprint=entry["fingerprint"],
                num_rows=int(entry.get("num_rows", 0)),
            )
        except (TypeError, KeyError) as exc:
            raise ManifestFormatError(
                f"{path}: malformed manifest entry for table {name!r}: {exc}"
            ) from None
    return RepositoryManifest(generation=generation, tables=tables)


# -- reading -----------------------------------------------------------------


def read_table_header(path: str | Path) -> TableHeader:
    """Read only the header of a table file (magic, version, schema, pages).

    This is the whole cost of cataloguing a table: a repository ``open`` over
    hundreds of files reads a few hundred bytes per file.
    """
    path = Path(path)
    with path.open("rb") as handle:
        prefix = handle.read(_PREFIX_LEN)
        _count(len(prefix))
        if len(prefix) < _PREFIX_LEN or prefix[: len(MAGIC)] != MAGIC:
            raise TableFormatError(f"{path}: not a table file (bad magic)")
        version = int.from_bytes(prefix[len(MAGIC) : len(MAGIC) + 4], "little")
        if version != FORMAT_VERSION:
            raise TableFormatError(
                f"{path}: unsupported table format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        header_len = int.from_bytes(prefix[len(MAGIC) + 4 :], "little")
        header_bytes = handle.read(header_len)
        _count(len(header_bytes))
    if len(header_bytes) < header_len:
        raise TableFormatError(f"{path}: truncated header")
    try:
        doc = json.loads(header_bytes)
    except json.JSONDecodeError as exc:
        raise TableFormatError(f"{path}: corrupt header JSON: {exc}") from None
    columns = [_meta_from_doc(col) for col in doc["columns"]]
    pages_nbytes = 0
    for meta in columns:
        for ref in (meta.data, meta.codes, meta.dictionary):
            if ref is not None:
                pages_nbytes = max(pages_nbytes, ref.offset + ref.nbytes)
    return TableHeader(
        name=doc["name"],
        num_rows=doc["num_rows"],
        fingerprint=doc["fingerprint"],
        columns=columns,
        pages_start=_align(_PREFIX_LEN + header_len),
        pages_nbytes=pages_nbytes,
        meta=doc.get("meta"),
    )


def _decode_dictionary(page: np.ndarray, count: int) -> np.ndarray:
    """Decode a dictionary page (uint8 array) into an object array of strings."""
    offsets = page[: 8 * (count + 1)].view("<i8").tolist()
    blob = page[8 * (count + 1) :].tobytes()
    dictionary = np.empty(count, dtype=object)
    for i in range(count):
        dictionary[i] = blob[offsets[i] : offsets[i + 1]].decode("utf-8")
    return dictionary


def read_table(path: str | Path, mmap: bool = True) -> Table:
    """Load a table written by :func:`write_table`.

    With ``mmap=True`` (default) numeric and code buffers are copy-on-write
    views into a single ``np.memmap`` of the file: the load reads only the
    header and dictionary pages, and the mapping stays valid even if the file
    is later replaced via :func:`write_table` (``os.replace`` keeps the old
    inode alive for existing maps).  With ``mmap=False`` every page is read
    into process memory up front.
    """
    path = Path(path)
    header = read_table_header(path)
    file_size = path.stat().st_size
    if header.pages_start + header.pages_nbytes > file_size:
        raise TableFormatError(
            f"{path}: truncated file ({file_size} bytes, header describes "
            f"{header.pages_start + header.pages_nbytes})"
        )

    buf: np.ndarray | None = None
    handle = None
    if mmap and file_size > header.pages_start:
        buf = np.memmap(path, dtype=np.uint8, mode="c")
    elif not mmap:
        handle = path.open("rb")

    def page(ref: PageRef) -> np.ndarray:
        start = header.pages_start + ref.offset
        if ref.nbytes == 0:
            return np.empty(0, dtype=np.uint8)
        if buf is not None:
            # demote the slice to a base-class ndarray view: element access on
            # the np.memmap subclass goes through a slow __getitem__ override,
            # and the view's .base chain keeps the mapping alive regardless
            return np.asarray(buf[start : start + ref.nbytes])
        handle.seek(start)
        raw = bytearray(handle.read(ref.nbytes))
        _count(len(raw))
        if len(raw) < ref.nbytes:
            raise TableFormatError(f"{path}: truncated page at offset {start}")
        return np.frombuffer(raw, dtype=np.uint8)

    try:
        columns: list[Column] = []
        for meta in header.columns:
            if meta.ctype is CATEGORICAL:
                codes_page = page(meta.codes)
                codes = (
                    codes_page.view("<i4")
                    if len(codes_page)
                    else np.empty(0, dtype=np.int32)
                )
                dict_page = page(meta.dictionary)
                if buf is not None:
                    # the dictionary is decoded eagerly; those pages are real reads
                    _count(meta.dictionary.nbytes)
                dictionary = _decode_dictionary(dict_page, meta.dict_count)
                columns.append(
                    Column.from_codes(meta.name, codes, dictionary, dict_exact=meta.dict_exact)
                )
            else:
                data_page = page(meta.data)
                data = (
                    data_page.view("<f8")
                    if len(data_page)
                    else np.empty(0, dtype=np.float64)
                )
                columns.append(Column.from_array(meta.name, data, meta.ctype))
        return Table(columns, name=header.name)
    finally:
        if handle is not None:
            handle.close()
