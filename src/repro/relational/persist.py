"""Native binary columnar table format with memory-mapped lazy loading.

A ``.tbl`` file is a versioned header followed by 64-byte-aligned per-column
pages:

* numeric / datetime / boolean columns store their ``float64`` backing array
  verbatim in one **data page**,
* categorical columns store their ``int32`` dictionary codes in a **codes
  page** plus a compact **dictionary page** (an ``int64`` offsets array and the
  concatenated UTF-8 bytes of the distinct strings, in dictionary order).

The header is a small JSON document (schema, row count, page extents and a
content fingerprint) so catalogs can be built from headers alone.  Reading a
table back with ``mmap=True`` (the default) maps the file copy-on-write and
wraps the numeric and code buffers as views into the mapping: loading touches
only the header and the (small) dictionary pages, and row data is paged in by
the OS on first access.  Writes go to a temporary file in the same directory
and are published with ``os.replace``, so an already-mapped reader keeps
seeing the old bytes (the old inode survives until its last mapping is
dropped) while new readers see the new table.

**Row-group chunking (format version 2).**  When :func:`write_table` is given
a ``chunk_rows`` target (explicitly, or through the ``ARDA_CHUNK_ROWS``
environment variable) and the table spans more than one chunk, the file is
written as N row groups.  Dictionary pages stay file-level (one shared
dictionary per categorical column), while each chunk gets its own aligned
data/codes pages laid out chunk-major for sequential streaming.  The header
gains a **zone map**: per chunk, its row count, page extents, per-column
min/max (value range for float-backed columns, code range for categoricals —
valid because the dictionary is file-wide) and a per-chunk content
fingerprint.  :func:`open_chunks` returns a :class:`ChunkedTableReader` that
yields one chunk at a time without ever materialising the whole table;
streaming consumers (the pruned streaming join, chunked profiling, chunked
binning) are built on it.  A table whose rows fit one chunk is always written
as a version-1 monolithic file, byte-identical to the pre-chunking format,
and a version-1 file reads back through :class:`ChunkedTableReader` as one
implicit chunk — the two formats are interchangeable to every consumer.  The
whole-table fingerprint of a chunked file equals the fingerprint the same
table would get monolithically, so profile caches, manifests and serving
artifacts validate identically against either layout.

Every byte explicitly read by this module is counted in a process-wide
counter (:func:`bytes_read` / :func:`reset_bytes_read`); memory-mapped pages
count as zero until the benchmark or caller actually faults them in, which is
what lets ``bench_persistence.py`` verify that opening a repository reads only
headers.  :func:`bytes_read_detail` splits the same total by what was read —
``header``, ``zone_map`` (the chunk section of a version-2 header),
``dictionary``, ``pages`` and ``manifest`` — so the cold-open assertion stays
meaningful for chunked files.

Besides single tables, the module defines the **repository manifest**: a
small versioned catalog file (:class:`RepositoryManifest`, published with
:func:`write_manifest` / read with :func:`read_manifest`) mapping table names
to ``{file, content fingerprint}`` under a monotonically increasing
generation number.  The manifest is what gives
:class:`~repro.discovery.repository.DataRepository` snapshot-isolated
concurrent reads and writes — see that module for the protocol.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro import observability
from repro.relational.column import Column, concat_columns, remap_dictionary
from repro.relational.schema import CATEGORICAL, ColumnSpec, ColumnType, Schema
from repro.relational.table import Table

MAGIC = b"RPROTBLF"
FORMAT_VERSION = 1
CHUNKED_FORMAT_VERSION = 2
CHUNK_ROWS_ENV = "ARDA_CHUNK_ROWS"
DEFAULT_STREAM_CHUNK_ROWS = 65_536
_ALIGN = 64
_PREFIX_LEN = len(MAGIC) + 8  # magic + uint32 version + uint32 header length
# spill-to-file copy granularity; small enough that streaming writes stay
# bounded even under sub-megabyte memory budgets
_COPY_BLOCK = 1 << 18

_bytes_read = 0
_READ_KINDS = ("header", "zone_map", "dictionary", "pages", "manifest")
_bytes_read_detail = dict.fromkeys(_READ_KINDS, 0)


def bytes_read() -> int:
    """Total bytes explicitly read from table files since the last reset."""
    return _bytes_read


def bytes_read_detail() -> dict[str, int]:
    """The explicit-read byte counter split by what was read.

    Keys: ``header`` (file prefix + the non-chunk part of the header JSON),
    ``zone_map`` (the serialized per-chunk zone-map section of a version-2
    header), ``dictionary`` (categorical dictionary pages), ``pages``
    (data/codes pages actually read — zero for untouched memory-mapped pages)
    and ``manifest`` (repository manifest reads).  The values sum to
    :func:`bytes_read`.
    """
    return dict(_bytes_read_detail)


def reset_bytes_read() -> None:
    """Zero the explicit-read byte counters (see module docstring)."""
    global _bytes_read
    _bytes_read = 0
    for kind in _bytes_read_detail:
        _bytes_read_detail[kind] = 0


def _count(n: int, kind: str = "pages") -> None:
    global _bytes_read
    _bytes_read += n
    _bytes_read_detail[kind] += n


# the per-kind byte counters join the process-wide metrics registry as a
# pull-based source: the hot read path pays nothing, and `/metrics` callers
# see the very numbers bytes_read_detail() returns
observability.get_registry().register_source("persist.bytes_read", bytes_read_detail)


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def resolve_chunk_rows(chunk_rows: int | None = None) -> int | None:
    """Resolve a row-group target: explicit argument, else ``ARDA_CHUNK_ROWS``.

    Returns ``None`` for monolithic writes.  An explicit ``0`` forces
    monolithic regardless of the environment (used by ``rechunk`` to collapse
    a chunked file); the environment variable is the fleet-wide override that
    lets CI run the whole test suite with small forced chunks.
    """
    if chunk_rows is not None:
        value = int(chunk_rows)
        if value < 0:
            raise ValueError(f"chunk_rows must be >= 0, got {chunk_rows}")
        return value or None
    env = os.environ.get(CHUNK_ROWS_ENV, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(f"{CHUNK_ROWS_ENV} must be an integer, got {env!r}") from None
    return value if value > 0 else None


def atomic_replace(path: Path, write_to) -> None:
    """Write a file atomically: unique temp sibling, then ``os.replace``.

    ``write_to`` receives the open binary handle.  A unique temp name (via
    ``tempfile.mkstemp`` in the target directory) means two concurrent writers
    never interleave — each assembles its own file and the last replace wins —
    and the temp file is removed if writing fails.
    """
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write_to(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class TableFormatError(ValueError):
    """A table file is not readable: bad magic, wrong version or truncated."""


class ManifestFormatError(TableFormatError):
    """A repository manifest is not readable: bad magic, version or payload."""


@dataclass
class PageRef:
    """Extent of one page, relative to the start of the file's page region."""

    offset: int
    nbytes: int


@dataclass
class ColumnMeta:
    """Header entry for one column: its type and where its pages live.

    In a version-2 (chunked) file the per-row pages live in the chunk entries
    instead, so ``data``/``codes`` are ``None`` here and only the file-level
    ``dictionary`` page remains.
    """

    name: str
    ctype: ColumnType
    data: PageRef | None = None  # float64 page (non-categorical)
    codes: PageRef | None = None  # int32 page (categorical)
    dictionary: PageRef | None = None  # offsets + utf-8 page (categorical)
    dict_count: int = 0
    dict_exact: bool = False


@dataclass
class ChunkMeta:
    """Zone-map entry for one row group of a version-2 file.

    ``pages`` and ``zones`` are aligned with the header's column order.  A
    zone is ``(min, max)`` over the chunk's valid values — the value range for
    float-backed columns, the code range for categoricals (comparable across
    chunks because the dictionary is file-level) — or ``None`` when the chunk
    holds no valid value for that column.  ``fingerprint`` hashes the chunk's
    page payloads in column order, so chunk-level corruption is detectable
    without reading the rest of the file.
    """

    rows: int
    pages: list[PageRef]
    zones: list[tuple[float, float] | None]
    fingerprint: str
    row_start: int = 0

    def nbytes(self) -> int:
        """Total payload bytes of this chunk's pages."""
        return sum(ref.nbytes for ref in self.pages)


@dataclass
class TableHeader:
    """Everything `DataRepository.open` needs without touching row data."""

    name: str
    num_rows: int
    fingerprint: str
    columns: list[ColumnMeta]
    pages_start: int
    pages_nbytes: int
    # free-form writer-supplied metadata (e.g. ingestion provenance); not part
    # of the content fingerprint
    meta: dict | None = None
    # version-2 chunked layout: the row-group zone map and the target the
    # writer aimed for; None for monolithic version-1 files
    chunks: list[ChunkMeta] | None = None
    chunk_rows: int | None = None

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    @property
    def num_chunks(self) -> int:
        """Row groups in the file (1 for a monolithic version-1 file)."""
        return len(self.chunks) if self.chunks else 1

    @property
    def sort_by(self) -> str | None:
        """Name of the column the file's rows are ordered by, or ``None``.

        Recorded by :func:`write_table_stream` (and ``rechunk(sort_by=...)``)
        after validating that the chunk zone maps of that column are
        monotonically non-decreasing, so readers may binary-search pruned
        chunk ranges instead of scanning every zone entry.
        """
        return (self.meta or {}).get("sort_by")

    def schema(self) -> Schema:
        """The stored table's schema."""
        return Schema([ColumnSpec(col.name, col.ctype) for col in self.columns])


# -- fingerprinting ----------------------------------------------------------


def _encode_dictionary(dictionary) -> bytes:
    """Canonical dictionary page payload: int64 offsets + concatenated UTF-8."""
    encoded = [str(entry).encode("utf-8") for entry in dictionary]
    offsets = np.zeros(len(encoded) + 1, dtype="<i8")
    if encoded:
        np.cumsum([len(e) for e in encoded], out=offsets[1:])
    return offsets.tobytes() + b"".join(encoded)


def _column_payloads(column: Column):
    """Yield the raw page payload bytes of one column, in a canonical order.

    The same byte stream feeds both the file pages and the content
    fingerprint, so a fingerprint computed from an in-memory table matches the
    one stored in the header its ``save()`` produces.
    """
    if column.ctype is CATEGORICAL:
        codes = np.ascontiguousarray(column.codes, dtype="<i4")
        yield "codes", codes.tobytes()
        yield "dict", _encode_dictionary(column.dictionary)
    else:
        yield "data", np.ascontiguousarray(column.values, dtype="<f8").tobytes()


def table_fingerprint(table: Table) -> str:
    """Content fingerprint of a table (hex), matching the stored header's.

    Hashes the schema plus every column's canonical page bytes, so two tables
    fingerprint equal iff they would serialise to identical pages (dictionary
    order included).  The fingerprint is independent of the chunk layout: a
    chunked file stores the same value a monolithic write would.  Used to key
    persisted column profiles.
    """
    hasher = blake2b(digest_size=16)
    for column in table.columns():
        hasher.update(column.name.encode("utf-8"))
        hasher.update(column.ctype.value.encode("ascii"))
        for _kind, payload in _column_payloads(column):
            hasher.update(payload)
    return hasher.hexdigest()


# -- writing -----------------------------------------------------------------


def write_table(
    table: Table,
    path: str | Path,
    meta: dict | None = None,
    chunk_rows: int | None = None,
) -> TableHeader:
    """Serialise ``table`` to ``path`` atomically; returns the written header.

    The file is assembled in a uniquely-named temporary sibling and published
    with ``os.replace``, so concurrent readers either see the old complete
    file or the new complete file, existing memory maps stay valid, and two
    concurrent writers cannot interleave (last replace wins).  ``meta`` is an
    optional JSON-serialisable dict stored in the header (e.g. ingestion
    provenance); it does not affect the content fingerprint.

    ``chunk_rows`` selects the row-group target (``None`` defers to the
    ``ARDA_CHUNK_ROWS`` environment variable, ``0`` forces monolithic).  A
    table that fits one chunk is always written monolithically (format
    version 1, byte-identical to the pre-chunking format); larger tables are
    written chunked (format version 2) with a zone map in the header.
    """
    path = Path(path)
    resolved = resolve_chunk_rows(chunk_rows)
    if resolved is not None and table.num_rows > resolved:
        return _write_table_chunked(table, path, resolved, meta)

    hasher = blake2b(digest_size=16)
    pages: list[bytes] = []
    columns_meta: list[ColumnMeta] = []
    rel = 0

    def add_page(payload: bytes) -> PageRef:
        nonlocal rel
        ref = PageRef(offset=rel, nbytes=len(payload))
        pages.append(payload)
        rel += len(payload)
        pad = _align(rel) - rel
        if pad:
            pages.append(b"\x00" * pad)
            rel += pad
        return ref

    for column in table.columns():
        hasher.update(column.name.encode("utf-8"))
        hasher.update(column.ctype.value.encode("ascii"))
        col_meta = ColumnMeta(name=column.name, ctype=column.ctype)
        for kind, payload in _column_payloads(column):
            hasher.update(payload)
            ref = add_page(payload)
            if kind == "data":
                col_meta.data = ref
            elif kind == "codes":
                col_meta.codes = ref
            else:
                col_meta.dictionary = ref
                col_meta.dict_count = len(column.dictionary)
                col_meta.dict_exact = column.dictionary_is_exact
        columns_meta.append(col_meta)

    fingerprint = hasher.hexdigest()
    header_doc = {
        "name": table.name,
        "num_rows": table.num_rows,
        "fingerprint": fingerprint,
        "columns": [_meta_to_doc(col_meta) for col_meta in columns_meta],
    }
    if meta:
        header_doc["meta"] = meta
    header_bytes = json.dumps(header_doc, separators=(",", ":")).encode("utf-8")
    pages_start = _align(_PREFIX_LEN + len(header_bytes))

    def write_to(handle):
        handle.write(MAGIC)
        handle.write(FORMAT_VERSION.to_bytes(4, "little"))
        handle.write(len(header_bytes).to_bytes(4, "little"))
        handle.write(header_bytes)
        handle.write(b"\x00" * (pages_start - _PREFIX_LEN - len(header_bytes)))
        for payload in pages:
            handle.write(payload)

    atomic_replace(path, write_to)
    return TableHeader(
        name=table.name,
        num_rows=table.num_rows,
        fingerprint=fingerprint,
        columns=columns_meta,
        pages_start=pages_start,
        pages_nbytes=rel,
        meta=meta,
    )


def _column_zone(column: Column, codes_or_data: np.ndarray) -> tuple[float, float] | None:
    """Min/max of one chunk's valid values, or ``None`` if all missing."""
    if column.ctype is CATEGORICAL:
        valid = codes_or_data[codes_or_data >= 0]
        if not len(valid):
            return None
        return float(valid.min()), float(valid.max())
    valid = codes_or_data[~np.isnan(codes_or_data)]
    if not len(valid):
        return None
    return float(valid.min()), float(valid.max())


def _write_table_chunked(
    table: Table, path: Path, chunk_rows: int, meta: dict | None
) -> TableHeader:
    """Write an in-memory table as a version-2 chunked file."""
    num_rows = table.num_rows
    columns = list(table.columns())
    # one contiguous backing array per column; chunk pages are slices of it
    backings: list[np.ndarray] = []
    dict_payloads: list[bytes | None] = []
    hasher = blake2b(digest_size=16)
    for column in columns:
        hasher.update(column.name.encode("utf-8"))
        hasher.update(column.ctype.value.encode("ascii"))
        if column.ctype is CATEGORICAL:
            backing = np.ascontiguousarray(column.codes, dtype="<i4")
            dict_payload = _encode_dictionary(column.dictionary)
            hasher.update(backing.tobytes())
            hasher.update(dict_payload)
            dict_payloads.append(dict_payload)
        else:
            backing = np.ascontiguousarray(column.values, dtype="<f8")
            hasher.update(backing.tobytes())
            dict_payloads.append(None)
        backings.append(backing)
    fingerprint = hasher.hexdigest()

    pages: list[bytes] = []
    columns_meta: list[ColumnMeta] = []
    rel = 0

    def add_page(payload: bytes) -> PageRef:
        nonlocal rel
        ref = PageRef(offset=rel, nbytes=len(payload))
        pages.append(payload)
        rel += len(payload)
        pad = _align(rel) - rel
        if pad:
            pages.append(b"\x00" * pad)
            rel += pad
        return ref

    # file-level dictionary pages first, then chunk pages laid out chunk-major
    for column, dict_payload in zip(columns, dict_payloads):
        col_meta = ColumnMeta(name=column.name, ctype=column.ctype)
        if dict_payload is not None:
            col_meta.dictionary = add_page(dict_payload)
            col_meta.dict_count = len(column.dictionary)
            col_meta.dict_exact = column.dictionary_is_exact
        columns_meta.append(col_meta)

    chunks_meta: list[ChunkMeta] = []
    for start in range(0, num_rows, chunk_rows):
        stop = min(start + chunk_rows, num_rows)
        chunk_pages: list[PageRef] = []
        chunk_zones: list[tuple[float, float] | None] = []
        chunk_hasher = blake2b(digest_size=16)
        for column, backing in zip(columns, backings):
            payload = np.ascontiguousarray(backing[start:stop]).tobytes()
            chunk_hasher.update(payload)
            chunk_pages.append(add_page(payload))
            chunk_zones.append(_column_zone(column, backing[start:stop]))
        chunks_meta.append(
            ChunkMeta(
                rows=stop - start,
                pages=chunk_pages,
                zones=chunk_zones,
                fingerprint=chunk_hasher.hexdigest(),
                row_start=start,
            )
        )

    header_doc = {
        "name": table.name,
        "num_rows": num_rows,
        "fingerprint": fingerprint,
        "columns": [_meta_to_doc(col_meta) for col_meta in columns_meta],
        "chunk_rows": chunk_rows,
        "chunks": [_chunk_to_doc(chunk) for chunk in chunks_meta],
    }
    if meta:
        header_doc["meta"] = meta
    header_bytes = json.dumps(header_doc, separators=(",", ":")).encode("utf-8")
    pages_start = _align(_PREFIX_LEN + len(header_bytes))

    def write_to(handle):
        handle.write(MAGIC)
        handle.write(CHUNKED_FORMAT_VERSION.to_bytes(4, "little"))
        handle.write(len(header_bytes).to_bytes(4, "little"))
        handle.write(header_bytes)
        handle.write(b"\x00" * (pages_start - _PREFIX_LEN - len(header_bytes)))
        for payload in pages:
            handle.write(payload)

    atomic_replace(path, write_to)
    return TableHeader(
        name=table.name,
        num_rows=num_rows,
        fingerprint=fingerprint,
        columns=columns_meta,
        pages_start=pages_start,
        pages_nbytes=rel,
        meta=meta,
        chunks=chunks_meta,
        chunk_rows=chunk_rows,
    )


def _meta_to_doc(meta: ColumnMeta) -> dict:
    doc: dict = {"name": meta.name, "ctype": meta.ctype.value}
    if meta.data is not None:
        doc["data"] = [meta.data.offset, meta.data.nbytes]
    if meta.codes is not None:
        doc["codes"] = [meta.codes.offset, meta.codes.nbytes]
    if meta.dictionary is not None:
        doc["dict"] = [meta.dictionary.offset, meta.dictionary.nbytes, meta.dict_count]
        doc["dict_exact"] = meta.dict_exact
    return doc


def _meta_from_doc(doc: dict) -> ColumnMeta:
    meta = ColumnMeta(name=doc["name"], ctype=ColumnType(doc["ctype"]))
    if "data" in doc:
        meta.data = PageRef(*doc["data"])
    if "codes" in doc:
        meta.codes = PageRef(*doc["codes"])
    if "dict" in doc:
        offset, nbytes, count = doc["dict"]
        meta.dictionary = PageRef(offset, nbytes)
        meta.dict_count = count
        meta.dict_exact = bool(doc.get("dict_exact", False))
    return meta


def _chunk_to_doc(chunk: ChunkMeta) -> dict:
    return {
        "rows": chunk.rows,
        "pages": [[ref.offset, ref.nbytes] for ref in chunk.pages],
        "zones": [list(zone) if zone is not None else None for zone in chunk.zones],
        "fp": chunk.fingerprint,
    }


def _chunk_from_doc(doc: dict, row_start: int) -> ChunkMeta:
    return ChunkMeta(
        rows=int(doc["rows"]),
        pages=[PageRef(*ref) for ref in doc["pages"]],
        zones=[tuple(zone) if zone is not None else None for zone in doc["zones"]],
        fingerprint=doc["fp"],
        row_start=row_start,
    )


# -- repository manifest ------------------------------------------------------

MANIFEST_MAGIC = b"RPROMANF"
MANIFEST_VERSION = 1
_MANIFEST_PREFIX_LEN = len(MANIFEST_MAGIC) + 8  # magic + uint32 version + uint32 length


@dataclass
class ManifestEntry:
    """One table of a manifest generation: its file name and content identity."""

    file: str
    fingerprint: str
    num_rows: int = 0


@dataclass
class RepositoryManifest:
    """A versioned catalog of a repository directory: one committed generation.

    The manifest is the unit of snapshot isolation for disk-backed
    repositories: writers assemble the next ``{table name → ManifestEntry}``
    map, bump ``generation`` by one and publish the whole document in a single
    ``os.replace`` (:func:`write_manifest`), so a concurrent reader opening
    the file sees either the previous complete generation or the new complete
    generation, never a mix.  ``generation`` is strictly monotonically
    increasing over the lifetime of a directory; snapshot readers use it to
    order their observations.
    """

    generation: int
    tables: dict[str, ManifestEntry]

    def files(self) -> set[str]:
        """The file names referenced by this generation."""
        return {entry.file for entry in self.tables.values()}


def write_manifest(path: str | Path, manifest: RepositoryManifest) -> None:
    """Publish a manifest generation atomically (temp sibling + ``os.replace``).

    The payload is ``MANIFEST_MAGIC`` + little-endian uint32 version + uint32
    JSON length + the JSON document, assembled in a uniquely-named temp file
    so a crash between the temp write and the replace leaves only ``*.tmp``
    debris next to an intact previous generation.
    """
    path = Path(path)
    if manifest.generation < 0:
        raise ValueError(f"manifest generation must be >= 0, got {manifest.generation}")
    doc = {
        "generation": manifest.generation,
        "tables": {
            name: {
                "file": entry.file,
                "fingerprint": entry.fingerprint,
                "num_rows": entry.num_rows,
            }
            for name, entry in manifest.tables.items()
        },
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")

    def write_to(handle):
        handle.write(MANIFEST_MAGIC)
        handle.write(MANIFEST_VERSION.to_bytes(4, "little"))
        handle.write(len(payload).to_bytes(4, "little"))
        handle.write(payload)

    atomic_replace(path, write_to)


def read_manifest(path: str | Path) -> RepositoryManifest:
    """Read a manifest written by :func:`write_manifest`.

    Raises :class:`ManifestFormatError` on bad magic, an unsupported version,
    a truncated payload or a malformed document — a manifest is either a
    complete committed generation or an error, never a partial catalog.
    """
    path = Path(path)
    with path.open("rb") as handle:
        prefix = handle.read(_MANIFEST_PREFIX_LEN)
        _count(len(prefix), "manifest")
        if len(prefix) < _MANIFEST_PREFIX_LEN or prefix[: len(MANIFEST_MAGIC)] != MANIFEST_MAGIC:
            raise ManifestFormatError(f"{path}: not a repository manifest (bad magic)")
        version = int.from_bytes(prefix[len(MANIFEST_MAGIC) : len(MANIFEST_MAGIC) + 4], "little")
        if version != MANIFEST_VERSION:
            raise ManifestFormatError(
                f"{path}: unsupported manifest version {version} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        length = int.from_bytes(prefix[len(MANIFEST_MAGIC) + 4 :], "little")
        payload = handle.read(length)
        _count(len(payload), "manifest")
    if len(payload) < length:
        raise ManifestFormatError(f"{path}: truncated manifest payload")
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ManifestFormatError(f"{path}: corrupt manifest JSON: {exc}") from None
    generation = doc.get("generation")
    tables_doc = doc.get("tables")
    if not isinstance(generation, int) or generation < 0 or not isinstance(tables_doc, dict):
        raise ManifestFormatError(f"{path}: malformed manifest document")
    tables: dict[str, ManifestEntry] = {}
    for name, entry in tables_doc.items():
        try:
            tables[name] = ManifestEntry(
                file=entry["file"],
                fingerprint=entry["fingerprint"],
                num_rows=int(entry.get("num_rows", 0)),
            )
        except (TypeError, KeyError) as exc:
            raise ManifestFormatError(
                f"{path}: malformed manifest entry for table {name!r}: {exc}"
            ) from None
    return RepositoryManifest(generation=generation, tables=tables)


# -- reading -----------------------------------------------------------------


def read_table_header(path: str | Path) -> TableHeader:
    """Read only the header of a table file (magic, version, schema, pages).

    This is the whole cost of cataloguing a table: a repository ``open`` over
    hundreds of files reads a few hundred bytes per file (plus the zone-map
    section for chunked files, attributed separately in
    :func:`bytes_read_detail`).
    """
    path = Path(path)
    with path.open("rb") as handle:
        prefix = handle.read(_PREFIX_LEN)
        if len(prefix) < _PREFIX_LEN or prefix[: len(MAGIC)] != MAGIC:
            _count(len(prefix), "header")
            raise TableFormatError(f"{path}: not a table file (bad magic)")
        version = int.from_bytes(prefix[len(MAGIC) : len(MAGIC) + 4], "little")
        if version not in (FORMAT_VERSION, CHUNKED_FORMAT_VERSION):
            _count(len(prefix), "header")
            raise TableFormatError(
                f"{path}: unsupported table format version {version} (this build "
                f"reads versions {FORMAT_VERSION} and {CHUNKED_FORMAT_VERSION})"
            )
        header_len = int.from_bytes(prefix[len(MAGIC) + 4 :], "little")
        header_bytes = handle.read(header_len)
    if len(header_bytes) < header_len:
        _count(len(prefix) + len(header_bytes), "header")
        raise TableFormatError(f"{path}: truncated header")
    try:
        doc = json.loads(header_bytes)
    except json.JSONDecodeError as exc:
        _count(len(prefix) + len(header_bytes), "header")
        raise TableFormatError(f"{path}: corrupt header JSON: {exc}") from None

    # attribute the zone-map share of a chunked header separately so the
    # headers-only cold-open assertion stays meaningful at high chunk counts
    zone_bytes = 0
    if "chunks" in doc:
        zone_bytes = len(json.dumps(doc["chunks"], separators=(",", ":")).encode("utf-8"))
    _count(len(prefix) + len(header_bytes) - zone_bytes, "header")
    if zone_bytes:
        _count(zone_bytes, "zone_map")

    columns = [_meta_from_doc(col) for col in doc["columns"]]
    chunks: list[ChunkMeta] | None = None
    if "chunks" in doc:
        chunks = []
        row_start = 0
        for chunk_doc in doc["chunks"]:
            chunk = _chunk_from_doc(chunk_doc, row_start)
            if len(chunk.pages) != len(columns) or len(chunk.zones) != len(columns):
                raise TableFormatError(f"{path}: malformed chunk entry in header")
            row_start += chunk.rows
            chunks.append(chunk)
        if row_start != doc["num_rows"]:
            raise TableFormatError(
                f"{path}: chunk rows sum to {row_start}, header says {doc['num_rows']}"
            )
    pages_nbytes = 0
    for meta in columns:
        for ref in (meta.data, meta.codes, meta.dictionary):
            if ref is not None:
                pages_nbytes = max(pages_nbytes, ref.offset + ref.nbytes)
    if chunks:
        for chunk in chunks:
            for ref in chunk.pages:
                pages_nbytes = max(pages_nbytes, ref.offset + ref.nbytes)
    return TableHeader(
        name=doc["name"],
        num_rows=doc["num_rows"],
        fingerprint=doc["fingerprint"],
        columns=columns,
        pages_start=_align(_PREFIX_LEN + header_len),
        pages_nbytes=pages_nbytes,
        meta=doc.get("meta"),
        chunks=chunks,
        chunk_rows=doc.get("chunk_rows"),
    )


def _decode_dictionary(page: np.ndarray, count: int) -> np.ndarray:
    """Decode a dictionary page (uint8 array) into an object array of strings."""
    offsets = page[: 8 * (count + 1)].view("<i8").tolist()
    blob = page[8 * (count + 1) :].tobytes()
    dictionary = np.empty(count, dtype=object)
    for i in range(count):
        dictionary[i] = blob[offsets[i] : offsets[i + 1]].decode("utf-8")
    return dictionary


def read_table(path: str | Path, mmap: bool = True) -> Table:
    """Load a table written by :func:`write_table`.

    With ``mmap=True`` (default) numeric and code buffers are copy-on-write
    views into a single ``np.memmap`` of the file: the load reads only the
    header and dictionary pages, and the mapping stays valid even if the file
    is later replaced via :func:`write_table` (``os.replace`` keeps the old
    inode alive for existing maps).  With ``mmap=False`` every page is read
    into process memory up front.

    A chunked (version-2) file loads transparently: per-chunk pages are
    stitched into whole columns, which materialises the data — callers that
    want bounded memory should stream through :func:`open_chunks` instead.
    """
    path = Path(path)
    header = read_table_header(path)
    if header.chunks:
        return ChunkedTableReader(path, mmap=mmap, header=header).table()
    file_size = path.stat().st_size
    if header.pages_start + header.pages_nbytes > file_size:
        raise TableFormatError(
            f"{path}: truncated file ({file_size} bytes, header describes "
            f"{header.pages_start + header.pages_nbytes})"
        )

    buf: np.ndarray | None = None
    handle = None
    if mmap and file_size > header.pages_start:
        buf = np.memmap(path, dtype=np.uint8, mode="c")
    elif not mmap:
        handle = path.open("rb")

    def page(ref: PageRef, kind: str = "pages") -> np.ndarray:
        start = header.pages_start + ref.offset
        if ref.nbytes == 0:
            return np.empty(0, dtype=np.uint8)
        if buf is not None:
            # demote the slice to a base-class ndarray view: element access on
            # the np.memmap subclass goes through a slow __getitem__ override,
            # and the view's .base chain keeps the mapping alive regardless
            return np.asarray(buf[start : start + ref.nbytes])
        handle.seek(start)
        raw = bytearray(handle.read(ref.nbytes))
        _count(len(raw), kind)
        if len(raw) < ref.nbytes:
            raise TableFormatError(f"{path}: truncated page at offset {start}")
        return np.frombuffer(raw, dtype=np.uint8)

    try:
        columns: list[Column] = []
        for meta in header.columns:
            if meta.ctype is CATEGORICAL:
                codes_page = page(meta.codes)
                codes = (
                    codes_page.view("<i4")
                    if len(codes_page)
                    else np.empty(0, dtype=np.int32)
                )
                dict_page = page(meta.dictionary, "dictionary")
                if buf is not None:
                    # the dictionary is decoded eagerly; those pages are real reads
                    _count(meta.dictionary.nbytes, "dictionary")
                dictionary = _decode_dictionary(dict_page, meta.dict_count)
                columns.append(
                    Column.from_codes(meta.name, codes, dictionary, dict_exact=meta.dict_exact)
                )
            else:
                data_page = page(meta.data)
                data = (
                    data_page.view("<f8")
                    if len(data_page)
                    else np.empty(0, dtype=np.float64)
                )
                columns.append(Column.from_array(meta.name, data, meta.ctype))
        return Table(columns, name=header.name)
    finally:
        if handle is not None:
            handle.close()


# -- chunked reading ----------------------------------------------------------


class ChunkedTableReader:
    """Stream a table file one row group at a time.

    Works over both formats: a version-2 file exposes its real row groups and
    zone maps; a version-1 monolithic file presents as a single implicit chunk
    (with :attr:`has_zones` False), so every streaming consumer handles both
    layouts with one code path.  With ``mmap=True`` (default) chunk pages are
    copy-on-write views into one file mapping — iterating the table keeps at
    most one chunk's touched pages resident, and the reader survives the file
    being atomically replaced.  ``chunks_read``/:attr:`num_chunks` feed the
    pruning-ratio accounting of the streaming join.
    """

    def __init__(self, path: str | Path, mmap: bool = True, header: TableHeader | None = None):
        self.path = Path(path)
        self.header = header if header is not None else read_table_header(self.path)
        file_size = self.path.stat().st_size
        if self.header.pages_start + self.header.pages_nbytes > file_size:
            raise TableFormatError(
                f"{self.path}: truncated file ({file_size} bytes, header describes "
                f"{self.header.pages_start + self.header.pages_nbytes})"
            )
        self._mmap = bool(mmap)
        self._buf: np.ndarray | None = None
        if self._mmap and file_size > self.header.pages_start:
            self._buf = np.memmap(self.path, dtype=np.uint8, mode="c")
        # Dictionaries decode lazily, on the first read that needs one: a scan
        # over numeric columns never pays for (or counts) categorical pages.
        self._dictionaries: dict[str, np.ndarray] = {}
        # per-column (mins, maxes) zone arrays for sorted binary-search
        # pruning; False caches a negative answer (absent / non-monotonic)
        self._zone_bounds: dict[str, tuple[np.ndarray, np.ndarray] | bool] = {}
        if self.header.chunks:
            self._chunks = self.header.chunks
        else:
            # synthesise one implicit chunk over a monolithic file
            pages = [
                (meta.codes if meta.ctype is CATEGORICAL else meta.data)
                for meta in self.header.columns
            ]
            self._chunks = [
                ChunkMeta(
                    rows=self.header.num_rows,
                    pages=[ref if ref is not None else PageRef(0, 0) for ref in pages],
                    zones=[None] * len(self.header.columns),
                    fingerprint=self.header.fingerprint,
                    row_start=0,
                )
            ]
        self.chunks_read = 0

    # -- catalog-level accessors (no page reads) ------------------------------

    @property
    def name(self) -> str:
        return self.header.name

    @property
    def num_rows(self) -> int:
        return self.header.num_rows

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def column_names(self) -> list[str]:
        return self.header.column_names

    @property
    def has_zones(self) -> bool:
        """Whether the file carries a zone map (version-2 chunked files only)."""
        return self.header.chunks is not None

    def __contains__(self, name: str) -> bool:
        return name in self.header.column_names

    def schema(self) -> Schema:
        return self.header.schema()

    def reset_counters(self) -> None:
        self.chunks_read = 0

    def chunk_row_range(self, index: int) -> tuple[int, int]:
        """Half-open global row range ``[start, stop)`` of one chunk."""
        chunk = self._chunks[index]
        return chunk.row_start, chunk.row_start + chunk.rows

    def chunk_nbytes(self, index: int) -> int:
        """Payload bytes of one chunk's pages (for memory-budget scheduling)."""
        return self._chunks[index].nbytes()

    def zones(self, index: int) -> dict[str, tuple[float, float] | None] | None:
        """One chunk's zone map by column name, or ``None`` when the file has
        no zone maps (monolithic version-1 file — callers must not prune)."""
        if not self.has_zones:
            return None
        chunk = self._chunks[index]
        return dict(zip(self.header.column_names, chunk.zones))

    @property
    def sort_by(self) -> str | None:
        """The column this file's rows are ordered by, or ``None`` (see
        :attr:`TableHeader.sort_by`)."""
        return self.header.sort_by

    def zone_bounds(self, name: str) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-chunk ``(mins, maxes)`` zone arrays of one numeric column, for
        binary-search pruning — or ``None`` when the fast path does not apply.

        Both arrays are float64 with all-missing (``None``) zones mapped to
        ``+inf``; they are validated monotonically non-decreasing once and
        cached.  ``None`` (fall back to a per-chunk zone scan) when the file
        has no zone map, the column is absent or categorical, or the zones
        are not monotonic (a file whose ``sort_by`` claim cannot be trusted).
        """
        cached = self._zone_bounds.get(name)
        if cached is not None:
            return None if cached is False else cached
        bounds: tuple[np.ndarray, np.ndarray] | bool = False
        if self.has_zones:
            pos = next(
                (
                    i
                    for i, meta in enumerate(self.header.columns)
                    if meta.name == name and meta.ctype is not CATEGORICAL
                ),
                None,
            )
            if pos is not None:
                mins = np.full(len(self._chunks), np.inf)
                maxes = np.full(len(self._chunks), np.inf)
                for i, chunk in enumerate(self._chunks):
                    zone = chunk.zones[pos]
                    if zone is not None:
                        mins[i], maxes[i] = zone
                # element-wise >= (not np.diff): inf - inf would be NaN, but
                # inf >= inf is True, so trailing all-missing runs pass
                if np.all(mins[1:] >= mins[:-1]) and np.all(maxes[1:] >= maxes[:-1]):
                    bounds = (mins, maxes)
        self._zone_bounds[name] = bounds
        return None if bounds is False else bounds

    def dictionary(self, name: str) -> np.ndarray:
        """The file-level dictionary of one categorical column.

        Decoded on first use and cached; ``bytes_read`` counts the page under
        the ``dictionary`` kind at that point, not at reader open.
        """
        meta = self._column_meta(name)
        if meta.ctype is not CATEGORICAL:
            raise TypeError(f"column {name!r} is {meta.ctype.value}, not categorical")
        return self._dictionary(meta)

    def _dictionary(self, meta: ColumnMeta) -> np.ndarray:
        cached = self._dictionaries.get(meta.name)
        if cached is None:
            page = self._page(meta.dictionary, "dictionary")
            if self._buf is not None:
                _count(meta.dictionary.nbytes, "dictionary")
            cached = _decode_dictionary(page, meta.dict_count)
            self._dictionaries[meta.name] = cached
        return cached

    # -- chunk reads -----------------------------------------------------------

    def chunk(self, index: int, columns: Sequence[str] | None = None) -> Table:
        """Materialise one row group as a :class:`Table` (optionally a column
        subset — per-column pages make partial reads free).

        Categorical columns share the reader's file-level dictionary; their
        ``dict_exact`` flag is necessarily False on a sub-chunk (the chunk may
        not contain every dictionary entry).
        """
        arrays = self._chunk_arrays(index, columns)
        out: list[Column] = []
        for meta in self._selected(columns):
            arr = arrays[meta.name]
            if meta.ctype is CATEGORICAL:
                out.append(
                    Column.from_codes(meta.name, arr, self._dictionary(meta))
                )
            else:
                out.append(Column.from_array(meta.name, arr, meta.ctype))
        return Table(out, name=self.header.name)

    def iter_chunks(self, columns: Sequence[str] | None = None) -> Iterator[Table]:
        """Yield every row group in file order."""
        for index in range(self.num_chunks):
            yield self.chunk(index, columns)

    def table(self) -> Table:
        """Materialise the whole table (all chunks stitched into one).

        Restores the stored ``dict_exact`` flags, so a round trip through a
        chunked file preserves the O(1) ``unique()`` fast path exactly like a
        monolithic one.
        """
        if not self.header.chunks:
            return read_table(self.path, mmap=self._mmap)
        parts = [self._chunk_arrays(i) for i in range(self.num_chunks)]
        columns: list[Column] = []
        for meta in self.header.columns:
            stacked = np.concatenate([part[meta.name] for part in parts])
            if meta.ctype is CATEGORICAL:
                columns.append(
                    Column.from_codes(
                        meta.name,
                        stacked,
                        self._dictionary(meta),
                        dict_exact=meta.dict_exact,
                    )
                )
            else:
                columns.append(Column.from_array(meta.name, stacked, meta.ctype))
        return Table(columns, name=self.header.name)

    def column(self, name: str) -> Column:
        """Materialise one whole column across all chunks."""
        meta = self._column_meta(name)
        parts = [
            self._chunk_arrays(i, [name])[name] for i in range(self.num_chunks)
        ]
        stacked = np.concatenate(parts) if parts else np.empty(0)
        if meta.ctype is CATEGORICAL:
            return Column.from_codes(
                name, stacked, self._dictionary(meta), dict_exact=meta.dict_exact
            )
        return Column.from_array(name, stacked, meta.ctype)

    def take(self, indices) -> Table:
        """Gather arbitrary global row indices into an in-memory table.

        Reads only the chunks that contain requested rows; memory is bounded
        by the result size plus one chunk.  Used by coreset sampling over
        out-of-core base tables.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_rows):
            raise IndexError(
                f"take indices out of range for table of {self.num_rows} rows"
            )
        outs: dict[str, np.ndarray] = {}
        for meta in self.header.columns:
            if meta.ctype is CATEGORICAL:
                outs[meta.name] = np.full(len(idx), -1, dtype=np.int32)
            else:
                outs[meta.name] = np.full(len(idx), np.nan, dtype=np.float64)
        for i in range(self.num_chunks):
            start, stop = self.chunk_row_range(i)
            mask = (idx >= start) & (idx < stop)
            if not mask.any():
                continue
            local = idx[mask] - start
            arrays = self._chunk_arrays(i)
            for name, arr in arrays.items():
                outs[name][mask] = arr[local]
        columns = [
            Column.from_codes(meta.name, outs[meta.name], self._dictionary(meta))
            if meta.ctype is CATEGORICAL
            else Column.from_array(meta.name, outs[meta.name], meta.ctype)
            for meta in self.header.columns
        ]
        return Table(columns, name=self.header.name)

    # -- internals -------------------------------------------------------------

    def _column_meta(self, name: str) -> ColumnMeta:
        for meta in self.header.columns:
            if meta.name == name:
                return meta
        raise KeyError(f"table {self.header.name!r} has no column {name!r}")

    def _selected(self, columns: Sequence[str] | None) -> list[ColumnMeta]:
        if columns is None:
            return self.header.columns
        return [self._column_meta(name) for name in columns]

    def _page(self, ref: PageRef, kind: str = "pages") -> np.ndarray:
        start = self.header.pages_start + ref.offset
        if ref.nbytes == 0:
            return np.empty(0, dtype=np.uint8)
        if self._buf is not None:
            return np.asarray(self._buf[start : start + ref.nbytes])
        with self.path.open("rb") as handle:
            handle.seek(start)
            raw = bytearray(handle.read(ref.nbytes))
        _count(len(raw), kind)
        if len(raw) < ref.nbytes:
            raise TableFormatError(f"{self.path}: truncated page at offset {start}")
        return np.frombuffer(raw, dtype=np.uint8)

    def _chunk_arrays(
        self, index: int, columns: Sequence[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Raw per-column arrays (codes or float64) of one chunk."""
        chunk = self._chunks[index]
        positions = {meta.name: pos for pos, meta in enumerate(self.header.columns)}
        out: dict[str, np.ndarray] = {}
        for meta in self._selected(columns):
            ref = chunk.pages[positions[meta.name]]
            page = self._page(ref)
            if meta.ctype is CATEGORICAL:
                out[meta.name] = (
                    page.view("<i4") if len(page) else np.empty(0, dtype=np.int32)
                )
            else:
                out[meta.name] = (
                    page.view("<f8") if len(page) else np.empty(0, dtype=np.float64)
                )
        self.chunks_read += 1
        return out


def open_chunks(path: str | Path, mmap: bool = True) -> ChunkedTableReader:
    """Open a table file for chunk-at-a-time streaming (both format versions)."""
    return ChunkedTableReader(path, mmap=mmap)


# -- streaming writer ----------------------------------------------------------


@dataclass
class _StreamColumnState:
    """Per-column accumulation for the streaming chunked writer."""

    name: str
    ctype: ColumnType
    dict_index: dict[str, int] = field(default_factory=dict)


def _check_sorted_zones(
    path: Path, sort_by: str, states, chunks_meta: list[ChunkMeta]
) -> None:
    """Validate the sort-order claim of a streamed write.

    The ``sort_by`` column's chunk zones must be monotonically non-decreasing
    (``prev.max <= next.min``) with all-missing (``None``) zones only in a
    trailing run — exactly the property the reader's binary-search pruning
    relies on.  A sorted stream satisfies this by construction for numeric
    columns (NaNs ordered last) and for categoricals too, because the shared
    file-level dictionary assigns codes in first-appearance order, which under
    a sorted stream is ascending value order.
    """
    pos = next((i for i, s in enumerate(states) if s.name == sort_by), None)
    if pos is None:
        raise ValueError(
            f"write_table_stream: sort_by column {sort_by!r} not in schema "
            f"({[s.name for s in states]})"
        )
    prev_max: float | None = None
    seen_none = False
    for index, chunk in enumerate(chunks_meta):
        zone = chunk.zones[pos]
        if zone is None:
            seen_none = True
            continue
        if seen_none:
            raise ValueError(
                f"{path}: sort_by={sort_by!r} violated — chunk {index} has "
                f"values after an all-missing chunk (missing must sort last)"
            )
        lo, hi = zone
        if prev_max is not None and lo < prev_max:
            raise ValueError(
                f"{path}: sort_by={sort_by!r} violated — chunk {index} starts "
                f"at {lo} below previous chunk max {prev_max}"
            )
        prev_max = hi


def write_table_stream(
    path: str | Path,
    chunks,
    name: str | None = None,
    chunk_rows: int | None = None,
    meta: dict | None = None,
    sort_by: str | None = None,
) -> TableHeader:
    """Write a table from an iterable of same-schema chunk tables, bounded memory.

    Incoming chunks are re-batched to the ``chunk_rows`` target (explicit
    argument, else ``ARDA_CHUNK_ROWS``, else ``DEFAULT_STREAM_CHUNK_ROWS``).
    Pages are spilled to a temp sibling as chunks arrive — peak memory is a
    couple of chunks regardless of total rows — then the final file (header +
    file-level dictionary pages + the spilled chunk pages) is assembled with a
    bounded copy buffer and published atomically.  Categorical codes are
    remapped into one shared file-level dictionary as they stream through;
    the stored whole-table fingerprint is computed column-major over the spill
    so it equals what :func:`write_table` would store for the concatenated
    table carrying the same dictionaries.  If everything fits one chunk the
    write degrades to a plain monolithic :func:`write_table` (bit-compatible
    with the version-1 format).

    ``sort_by`` declares that the incoming chunks are globally ordered by one
    column (missing values last).  The claim is validated against the written
    zone maps (:func:`_check_sorted_zones`) and recorded as
    ``meta["sort_by"]`` so readers can binary-search pruned chunk ranges; a
    stream that is not actually sorted raises ``ValueError``.
    """
    path = Path(path)
    if sort_by is not None:
        meta = {**(meta or {}), "sort_by": sort_by}
    resolved = resolve_chunk_rows(chunk_rows)
    if resolved is None:
        resolved = DEFAULT_STREAM_CHUNK_ROWS

    states: list[_StreamColumnState] | None = None
    table_name = name
    chunks_meta: list[ChunkMeta] = []
    num_rows = 0
    rel = 0

    fd, spill_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".spill")
    spill = os.fdopen(fd, "w+b")
    try:

        def spill_page(payload: bytes) -> PageRef:
            nonlocal rel
            ref = PageRef(offset=rel, nbytes=len(payload))
            spill.write(payload)
            rel += len(payload)
            pad = _align(rel) - rel
            if pad:
                spill.write(b"\x00" * pad)
                rel += pad
            return ref

        def emit(part: Table) -> None:
            nonlocal num_rows
            chunk_pages: list[PageRef] = []
            chunk_zones: list[tuple[float, float] | None] = []
            chunk_hasher = blake2b(digest_size=16)
            for state in states:
                column = part.column(state.name)
                if column.ctype is not state.ctype:
                    raise ValueError(
                        f"write_table_stream: column {state.name!r} changed type "
                        f"across chunks ({state.ctype.value} vs {column.ctype.value})"
                    )
                if state.ctype is CATEGORICAL:
                    translate = remap_dictionary(column.dictionary, state.dict_index)
                    arr = np.ascontiguousarray(translate[column.codes], dtype="<i4")
                else:
                    arr = np.ascontiguousarray(column.values, dtype="<f8")
                payload = arr.tobytes()
                chunk_hasher.update(payload)
                chunk_pages.append(spill_page(payload))
                chunk_zones.append(_column_zone(column, arr))
            chunks_meta.append(
                ChunkMeta(
                    rows=part.num_rows,
                    pages=chunk_pages,
                    zones=chunk_zones,
                    fingerprint=chunk_hasher.hexdigest(),
                    row_start=num_rows,
                )
            )
            num_rows += part.num_rows

        batches = _rebatch(chunks, resolved)
        first = next(batches, None)
        if first is None:
            raise ValueError("write_table_stream requires at least one chunk")
        states = [_StreamColumnState(col.name, col.ctype) for col in first.columns()]
        if table_name is None:
            table_name = first.name
        if sort_by is not None and sort_by not in first.column_names:
            raise ValueError(
                f"write_table_stream: sort_by column {sort_by!r} not in schema "
                f"({first.column_names})"
            )
        second = next(batches, None)
        if second is None:
            # everything fit one chunk: write it monolithically (format v1);
            # a single chunk is trivially sorted, the marker rides in meta
            if first.name != table_name:
                first = Table(list(first.columns()), name=table_name)
            return write_table(first, path, meta=meta, chunk_rows=0)
        emit(first)
        emit(second)
        for part in batches:
            emit(part)
        if sort_by is not None:
            _check_sorted_zones(path, sort_by, states, chunks_meta)

        # final dictionaries, in shared-index insertion order
        dict_payloads: list[bytes | None] = []
        dictionaries: list[np.ndarray | None] = []
        for state in states:
            if state.ctype is CATEGORICAL:
                merged = np.empty(len(state.dict_index), dtype=object)
                for text, code in state.dict_index.items():
                    merged[code] = text
                dictionaries.append(merged)
                dict_payloads.append(_encode_dictionary(merged))
            else:
                dictionaries.append(None)
                dict_payloads.append(None)

        # whole-table fingerprint: canonical column-major payload order,
        # re-reading the spilled chunk pages with a bounded buffer
        hasher = blake2b(digest_size=16)
        for pos, state in enumerate(states):
            hasher.update(state.name.encode("utf-8"))
            hasher.update(state.ctype.value.encode("ascii"))
            for chunk in chunks_meta:
                ref = chunk.pages[pos]
                spill.seek(ref.offset)
                remaining = ref.nbytes
                while remaining:
                    block = spill.read(min(remaining, _COPY_BLOCK))
                    if not block:
                        raise TableFormatError(f"{path}: truncated spill file")
                    hasher.update(block)
                    remaining -= len(block)
            if dict_payloads[pos] is not None:
                hasher.update(dict_payloads[pos])
        fingerprint = hasher.hexdigest()

        # file-level dictionary pages precede the spilled chunk pages; spill
        # offsets shift by the aligned dictionary region as a whole
        columns_meta: list[ColumnMeta] = []
        dict_rel = 0
        dict_blobs: list[bytes] = []
        for state, payload, dictionary in zip(states, dict_payloads, dictionaries):
            col_meta = ColumnMeta(name=state.name, ctype=state.ctype)
            if payload is not None:
                col_meta.dictionary = PageRef(offset=dict_rel, nbytes=len(payload))
                col_meta.dict_count = len(dictionary)
                dict_blobs.append(payload)
                dict_rel += len(payload)
                pad = _align(dict_rel) - dict_rel
                if pad:
                    dict_blobs.append(b"\x00" * pad)
                    dict_rel += pad
            columns_meta.append(col_meta)
        for chunk in chunks_meta:
            chunk.pages = [
                PageRef(offset=ref.offset + dict_rel, nbytes=ref.nbytes)
                for ref in chunk.pages
            ]

        header_doc = {
            "name": table_name,
            "num_rows": num_rows,
            "fingerprint": fingerprint,
            "columns": [_meta_to_doc(col_meta) for col_meta in columns_meta],
            "chunk_rows": resolved,
            "chunks": [_chunk_to_doc(chunk) for chunk in chunks_meta],
        }
        if meta:
            header_doc["meta"] = meta
        header_bytes = json.dumps(header_doc, separators=(",", ":")).encode("utf-8")
        pages_start = _align(_PREFIX_LEN + len(header_bytes))

        def write_to(handle):
            handle.write(MAGIC)
            handle.write(CHUNKED_FORMAT_VERSION.to_bytes(4, "little"))
            handle.write(len(header_bytes).to_bytes(4, "little"))
            handle.write(header_bytes)
            handle.write(b"\x00" * (pages_start - _PREFIX_LEN - len(header_bytes)))
            for blob in dict_blobs:
                handle.write(blob)
            spill.seek(0)
            remaining = rel
            while remaining:
                block = spill.read(min(remaining, _COPY_BLOCK))
                if not block:
                    raise TableFormatError(f"{path}: truncated spill file")
                handle.write(block)
                remaining -= len(block)

        atomic_replace(path, write_to)
        return TableHeader(
            name=table_name,
            num_rows=num_rows,
            fingerprint=fingerprint,
            columns=columns_meta,
            pages_start=pages_start,
            pages_nbytes=dict_rel + rel,
            meta=meta,
            chunks=chunks_meta,
            chunk_rows=resolved,
        )
    finally:
        spill.close()
        try:
            os.unlink(spill_name)
        except OSError:
            pass


def _rebatch(chunks, target: int) -> Iterator[Table]:
    """Re-slice an iterable of tables into chunks of exactly ``target`` rows
    (the final chunk may be short).  Buffers at most ``target`` rows plus one
    incoming chunk."""
    pending: list[Table] = []
    pending_rows = 0
    for part in chunks:
        if part.num_rows == 0 and pending:
            continue
        pending.append(part)
        pending_rows += part.num_rows
        while pending_rows >= target:
            merged = _concat_parts(pending)
            yield merged.take(np.arange(target)) if merged.num_rows > target else merged
            if merged.num_rows > target:
                rest = merged.take(np.arange(target, merged.num_rows))
                pending = [rest]
                pending_rows = rest.num_rows
            else:
                pending = []
                pending_rows = 0
    if pending:
        yield _concat_parts(pending)


def _concat_parts(parts: list[Table]) -> Table:
    if len(parts) == 1:
        return parts[0]
    columns = [
        concat_columns([part.column(name) for part in parts])
        for name in parts[0].column_names
    ]
    return Table(columns, name=parts[0].name)
