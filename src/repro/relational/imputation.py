"""Missing-value imputation: one-shot training kernels and fitted replay.

ARDA uses deliberately simple imputation to keep the end-to-end runtime low
(paper section 4, "Imputation"): numeric columns get their median, categorical
columns get a uniform random sample of the observed values.

Two entry points share the same kernels:

* :func:`impute_table` — the training path: every column is imputed from its
  *own* statistics (median of its observed values / samples of its observed
  codes).
* :class:`FittedImputer` — the serving path: :meth:`FittedImputer.fit`
  records each column's statistics while producing the imputed training
  table, and :meth:`FittedImputer.transform` replays them on unseen rows.
  Because fit and transform run the identical kernels and consume the RNG
  stream identically (one ``rng.integers`` draw per categorical column that
  has missing entries, in table column order), ``transform`` applied to the
  training table reproduces the training imputation byte-for-byte.

Determinism contract: all randomness comes from a single
``np.random.default_rng(seed)`` consumed in table column order.  Numeric
columns and categorical columns without missing entries consume no draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table

_MISSING_PLACEHOLDER = "__missing__"


# -- shared kernels ------------------------------------------------------------


def _apply_numeric_fill(column: Column, fill: float) -> Column:
    """Replace NaNs with ``fill``; returns the column unchanged if none."""
    values = column.values
    mask = np.isnan(values)
    if not mask.any():
        return column
    out = values.astype(np.float64)
    out[mask] = fill
    return Column.from_array(column.name, out, column.ctype)


def _apply_categorical_fill(
    column: Column,
    observed_codes: np.ndarray,
    observed_dictionary: np.ndarray,
    rng: np.random.Generator,
) -> Column:
    """Fill missing entries with uniform samples of ``observed_codes``.

    ``observed_codes`` index ``observed_dictionary`` (the fit-time dictionary);
    sampled values are translated into the input column's code space, extending
    its dictionary if the input has never seen a sampled value.  When the
    observed set is empty the whole column becomes the ``"__missing__"``
    placeholder (the column was all-missing at fit time, so there is nothing
    to sample — downstream encoding still gets a constant feature).

    Consumes exactly one ``rng.integers`` draw when the input has missing
    entries and the observed set is non-empty, and none otherwise — the same
    stream the training path consumes, which is what makes fitted replay on
    the training table byte-identical.
    """
    codes = column.codes
    mask = codes < 0
    if not mask.any():
        return column
    if not len(observed_codes):
        placeholder = np.array([_MISSING_PLACEHOLDER], dtype=object)
        return Column.from_codes(
            column.name,
            np.zeros(len(codes), dtype=np.int32),
            placeholder,
            dict_exact=True,
        )
    picks = rng.integers(0, len(observed_codes), size=int(mask.sum()))
    sampled = observed_codes[picks]
    if observed_dictionary is column.dictionary:
        # training replay: the sampled codes already index this dictionary
        out = codes.copy()
        out[mask] = sampled
        return Column.from_codes(column.name, out, column.dictionary)
    # serving on unseen rows: translate fit-time codes into the input's code
    # space, appending fit-time values the input dictionary has never seen
    dictionary = list(column.dictionary)
    index = {value: code for code, value in enumerate(dictionary)}
    translate = np.empty(len(observed_dictionary), dtype=np.int32)
    for code, value in enumerate(observed_dictionary):
        target = index.get(value)
        if target is None:
            target = len(dictionary)
            index[value] = target
            dictionary.append(value)
        translate[code] = target
    out = codes.copy()
    out[mask] = translate[sampled]
    return Column.from_codes(column.name, out, np.array(dictionary, dtype=object))


# -- training path -------------------------------------------------------------


def impute_numeric_median(column: Column) -> Column:
    """Replace NaNs with the column median (0.0 if the column is all-missing)."""
    values = column.values
    mask = np.isnan(values)
    if not mask.any():
        return column
    observed = values[~mask]
    fill = float(np.median(observed)) if len(observed) else 0.0
    return _apply_numeric_fill(column, fill)


def impute_categorical_random(
    column: Column, rng: np.random.Generator | None = None
) -> Column:
    """Replace missing categorical values with uniform samples of observed ones.

    Runs entirely on the dictionary codes: the observed codes are sampled in
    row order (so the draws match the old object-array path exactly) and the
    dictionary is shared with the input column.

    If every value is missing, the placeholder string ``"__missing__"`` is
    used so downstream encoding still produces a (constant) feature.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    codes = column.codes
    observed = codes[codes >= 0]
    return _apply_categorical_fill(column, observed, column.dictionary, rng)


def impute_table(
    table: Table, rng: np.random.Generator | None = None, seed: int = 0
) -> Table:
    """Impute every column of a table (median / uniform random sampling)."""
    if rng is None:
        rng = np.random.default_rng(seed)
    columns = []
    for col in table.columns():
        if col.ctype is CATEGORICAL:
            columns.append(impute_categorical_random(col, rng))
        else:
            columns.append(impute_numeric_median(col))
    return Table(columns, name=table.name)


# -- fitted replay -------------------------------------------------------------


@dataclass
class ColumnImputeState:
    """The fitted imputation statistics of one column.

    Numeric columns carry ``fill`` (the fit-time median of observed values, or
    0.0 for an all-missing column).  Categorical columns carry the fit-time
    observed codes *in row order* plus the fit-time dictionary — sampling
    uniform positions of the row-order array is what makes fitted replay
    reproduce the training draws exactly.
    """

    name: str
    kind: str  # "numeric" or "categorical"
    fill: float = 0.0
    observed_codes: np.ndarray | None = None
    dictionary: np.ndarray | None = None


class FittedImputer:
    """Per-column imputation statistics captured from one training table.

    Built by :meth:`fit`; :meth:`transform` replays the statistics on any
    table carrying (a subset of) the fitted columns.  Columns missing from the
    input are skipped silently (serving rows legitimately omit the training
    target), which also keeps the RNG stream aligned: a skipped column never
    consumed draws for that input anyway.
    """

    def __init__(self, columns: list[ColumnImputeState], seed: int = 0):
        self.columns = columns
        self.seed = seed
        self._by_name = {state.name: state for state in columns}

    @classmethod
    def fit(cls, table: Table, seed: int = 0) -> tuple["FittedImputer", Table]:
        """Record every column's statistics and return the imputed table.

        The returned table is byte-identical to ``impute_table(table, seed=seed)``:
        fit runs the same kernels with the same RNG stream while recording the
        statistics it used.
        """
        rng = np.random.default_rng(seed)
        states: list[ColumnImputeState] = []
        columns: list[Column] = []
        for col in table.columns():
            if col.ctype is CATEGORICAL:
                codes = col.codes
                observed = codes[codes >= 0].copy()
                states.append(
                    ColumnImputeState(
                        name=col.name,
                        kind="categorical",
                        observed_codes=observed,
                        dictionary=col.dictionary,
                    )
                )
                columns.append(
                    _apply_categorical_fill(col, observed, col.dictionary, rng)
                )
            else:
                values = col.values
                mask = np.isnan(values)
                observed_values = values[~mask]
                fill = float(np.median(observed_values)) if len(observed_values) else 0.0
                states.append(ColumnImputeState(name=col.name, kind="numeric", fill=fill))
                columns.append(_apply_numeric_fill(col, fill))
        return cls(states, seed=seed), Table(columns, name=table.name)

    def transform(self, table: Table) -> Table:
        """Impute ``table`` with the fitted statistics.

        Iterates the *fitted* column order (so the RNG stream matches fit),
        skipping fitted columns absent from the input.  Input columns that
        were never fitted raise ``KeyError`` — silently passing them through
        would let un-imputed NaNs reach the encoder.
        """
        unknown = [name for name in table.column_names if name not in self._by_name]
        if unknown:
            raise KeyError(f"columns not seen at fit time: {unknown}")
        rng = np.random.default_rng(self.seed)
        columns: list[Column] = []
        for state in self.columns:
            if state.name not in table:
                continue
            col = table.column(state.name)
            if state.kind == "categorical":
                if col.ctype is not CATEGORICAL:
                    raise TypeError(
                        f"column {state.name!r} was categorical at fit time, "
                        f"got {col.ctype.value}"
                    )
                columns.append(
                    _apply_categorical_fill(
                        col, state.observed_codes, state.dictionary, rng
                    )
                )
            else:
                if col.ctype is CATEGORICAL:
                    raise TypeError(
                        f"column {state.name!r} was numeric at fit time, got categorical"
                    )
                columns.append(_apply_numeric_fill(col, state.fill))
        return Table(columns, name=table.name)


def missing_fraction(table: Table) -> dict[str, float]:
    """Per-column fraction of missing values."""
    n = max(table.num_rows, 1)
    return {col.name: col.null_count() / n for col in table.columns()}
