"""Missing-value imputation.

ARDA uses deliberately simple imputation to keep the end-to-end runtime low
(paper section 4, "Imputation"): numeric columns get their median, categorical
columns get a uniform random sample of the observed values.
"""

from __future__ import annotations

import numpy as np

from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table


def impute_numeric_median(column: Column) -> Column:
    """Replace NaNs with the column median (0.0 if the column is all-missing)."""
    values = column.values
    mask = np.isnan(values)
    if not mask.any():
        return column
    observed = values[~mask]
    fill = float(np.median(observed)) if len(observed) else 0.0
    out = values.astype(np.float64)
    out[mask] = fill
    return Column.from_array(column.name, out, column.ctype)


def impute_categorical_random(
    column: Column, rng: np.random.Generator | None = None
) -> Column:
    """Replace missing categorical values with uniform samples of observed ones.

    Runs entirely on the dictionary codes: the observed codes are sampled in
    row order (so the draws match the old object-array path exactly) and the
    dictionary is shared with the input column.

    If every value is missing, the placeholder string ``"__missing__"`` is
    used so downstream encoding still produces a (constant) feature.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    codes = column.codes
    mask = codes < 0
    if not mask.any():
        return column
    observed = codes[~mask]
    if len(observed):
        picks = rng.integers(0, len(observed), size=int(mask.sum()))
        out = codes.copy()
        out[mask] = observed[picks]
        return Column.from_codes(column.name, out, column.dictionary)
    placeholder = np.array(["__missing__"], dtype=object)
    return Column.from_codes(
        column.name,
        np.zeros(len(codes), dtype=np.int32),
        placeholder,
        dict_exact=True,
    )


def impute_table(
    table: Table, rng: np.random.Generator | None = None, seed: int = 0
) -> Table:
    """Impute every column of a table (median / uniform random sampling)."""
    if rng is None:
        rng = np.random.default_rng(seed)
    columns = []
    for col in table.columns():
        if col.ctype is CATEGORICAL:
            columns.append(impute_categorical_random(col, rng))
        else:
            columns.append(impute_numeric_median(col))
    return Table(columns, name=table.name)


def missing_fraction(table: Table) -> dict[str, float]:
    """Per-column fraction of missing values."""
    n = max(table.num_rows, 1)
    return {col.name: col.null_count() / n for col in table.columns()}
