"""Soft joins on keys that do not align exactly (e.g. timestamps, GPS, age).

Two strategies from the paper (section 4):

* **Nearest-neighbour join** — each base-table key matches the closest foreign
  key value; an optional tolerance turns distant matches into NULLs.
* **Two-way nearest-neighbour join** — each base-table key is bracketed by the
  closest foreign key below and above it, and the two foreign rows are blended
  by linear interpolation (numeric columns) or a deterministic pick
  (categorical columns) weighted by how close each bracket is.
"""

from __future__ import annotations

import numpy as np

from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table, unique_name


def _sorted_right(right: Table, right_key: str) -> tuple[np.ndarray, np.ndarray]:
    """Sorted non-missing right key values and their original row indices."""
    key_values = right.column(right_key).values
    valid = ~np.isnan(key_values)
    values = key_values[valid]
    indices = np.nonzero(valid)[0]
    order = np.argsort(values, kind="stable")
    return values[order], indices[order]


def nearest_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    tolerance: float | None = None,
    suffix: str = "_r",
) -> Table:
    """Join each left row with the right row whose key value is closest.

    If ``tolerance`` is given and the nearest right key is farther than that,
    the row is left unmatched (NULLs), mirroring the paper's tolerance
    threshold behaviour.
    """
    left_values = left.column(left_key).values.astype(np.float64)
    if left.column(left_key).ctype is CATEGORICAL:
        raise ValueError("soft joins require a numeric or datetime key")
    sorted_values, sorted_indices = _sorted_right(right, right_key)
    n = left.num_rows
    match_index = np.full(n, -1, dtype=np.int64)
    if len(sorted_values):
        positions = np.searchsorted(sorted_values, left_values)
        positions = np.clip(positions, 0, len(sorted_values) - 1)
        lower = np.clip(positions - 1, 0, len(sorted_values) - 1)
        dist_at = np.abs(sorted_values[positions] - left_values)
        dist_lower = np.abs(sorted_values[lower] - left_values)
        use_lower = dist_lower < dist_at
        best = np.where(use_lower, lower, positions)
        best_dist = np.where(use_lower, dist_lower, dist_at)
        ok = ~np.isnan(left_values)
        if tolerance is not None:
            ok &= best_dist <= tolerance
        match_index[ok] = sorted_indices[best[ok]]
    matched = match_index >= 0

    out_columns = list(left.columns())
    existing = set(left.column_names)
    for col in right.columns():
        if col.name == right_key:
            continue
        name = unique_name(col.name, existing, suffix)
        existing.add(name)
        if col.ctype is CATEGORICAL:
            codes = np.full(n, -1, dtype=np.int32)
            if matched.any():
                codes[matched] = col.codes[match_index[matched]]
            out_columns.append(Column.from_codes(name, codes, col.dictionary))
        else:
            data = np.full(n, np.nan, dtype=np.float64)
            if matched.any():
                data[matched] = col.values[match_index[matched]]
            out_columns.append(Column.from_array(name, data, col.ctype))
    return Table(out_columns, name=left.name)


def two_way_nearest_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    suffix: str = "_r",
    rng: np.random.Generator | None = None,
) -> Table:
    """Join each left row with an interpolation of its two bracketing right rows.

    For a left key value ``x`` bracketed by right keys ``y_low <= x <= y_high``
    the numeric columns of the two right rows are blended as
    ``lambda * row_low + (1 - lambda) * row_high`` with
    ``x = lambda * y_low + (1 - lambda) * y_high``.  Categorical columns pick
    one of the two values at random with probability proportional to lambda.
    Left keys outside the right key range fall back to the single nearest row.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    left_col = left.column(left_key)
    if left_col.ctype is CATEGORICAL:
        raise ValueError("soft joins require a numeric or datetime key")
    left_values = left_col.values.astype(np.float64)
    sorted_values, sorted_indices = _sorted_right(right, right_key)
    n = left.num_rows

    low_index = np.full(n, -1, dtype=np.int64)
    high_index = np.full(n, -1, dtype=np.int64)
    lam = np.full(n, 1.0, dtype=np.float64)
    if len(sorted_values):
        pos = np.searchsorted(sorted_values, left_values, side="left")
        for i in range(n):
            x = left_values[i]
            if np.isnan(x):
                continue
            hi = min(pos[i], len(sorted_values) - 1)
            lo = max(pos[i] - 1, 0)
            y_low, y_high = sorted_values[lo], sorted_values[hi]
            low_index[i] = sorted_indices[lo]
            high_index[i] = sorted_indices[hi]
            if y_high == y_low:
                lam[i] = 1.0
            else:
                # x = lam * y_low + (1 - lam) * y_high  =>  lam = (y_high - x) / (y_high - y_low)
                lam[i] = float(np.clip((y_high - x) / (y_high - y_low), 0.0, 1.0))
    matched = low_index >= 0

    out_columns = list(left.columns())
    existing = set(left.column_names)
    for col in right.columns():
        if col.name == right_key:
            continue
        name = unique_name(col.name, existing, suffix)
        existing.add(name)
        if col.ctype is CATEGORICAL:
            codes = np.full(n, -1, dtype=np.int32)
            if matched.any():
                picks = rng.random(n) < lam
                chosen = np.where(picks, low_index, high_index)
                codes[matched] = col.codes[chosen[matched]]
            out_columns.append(Column.from_codes(name, codes, col.dictionary))
        else:
            data = np.full(n, np.nan, dtype=np.float64)
            if matched.any():
                low_vals = col.values[low_index[matched]]
                high_vals = col.values[high_index[matched]]
                blend = lam[matched] * low_vals + (1.0 - lam[matched]) * high_vals
                # if one side is missing, fall back to the other
                blend = np.where(np.isnan(low_vals), high_vals, blend)
                blend = np.where(np.isnan(high_vals), low_vals, blend)
                data[matched] = blend
            out_columns.append(Column.from_array(name, data, col.ctype))
    return Table(out_columns, name=left.name)
