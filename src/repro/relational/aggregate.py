"""Group-by aggregation.

ARDA pre-aggregates foreign tables on their join keys so that one-to-many and
many-to-many joins reduce to the row-preserving one-to-one / many-to-one cases
(paper section 4, "Join Cardinality").

Group identification is fully vectorised on top of the columnar storage:
categorical key columns contribute their dictionary codes directly, numeric
key columns are factorised once, and the per-column codes are packed
mixed-radix into a single ``int64`` per row (the same trick the hash-join
probe uses).  A Python-loop fallback is kept for the pathological case where
the packed key space would overflow ``int64``; it doubles as the reference
implementation the property tests compare against.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL, NUMERIC
from repro.relational.table import Table


def _mode(values: np.ndarray):
    """Most frequent non-missing value of an object array (None if all missing)."""
    counts: dict = {}
    for value in values:
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        return None
    return max(counts.items(), key=lambda kv: kv[1])[0]


def _mode_codes_per_group(
    sorted_codes: np.ndarray, sorted_group_ids: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group most frequent non-missing code (-1 where all missing).

    One ``lexsort`` over the (group, code) pairs replaces a per-group counting
    loop, so the cost is O(n log n) regardless of group count or dictionary
    size.  Ties break toward the code that appears first in the group's row
    order, matching the insertion-order tie-break of the object-array
    :func:`_mode`.
    """
    out = np.full(n_groups, -1, dtype=np.int32)
    valid = sorted_codes >= 0
    if not valid.any():
        return out
    groups = sorted_group_ids[valid].astype(np.int64)
    codes = sorted_codes[valid].astype(np.int64)
    order = np.lexsort((codes, groups))  # stable: row order survives within runs
    g, c = groups[order], codes[order]
    run_start = np.ones(len(g), dtype=bool)
    run_start[1:] = (g[1:] != g[:-1]) | (c[1:] != c[:-1])
    starts = np.nonzero(run_start)[0]
    counts = np.diff(np.append(starts, len(g)))
    pair_group = g[starts]
    pair_code = c[starts]
    first_row = order[starts]  # earliest row (slice order) of each (group, code)
    best = np.lexsort((first_row, -counts, pair_group))
    keep = np.ones(len(best), dtype=bool)
    keep[1:] = pair_group[best[1:]] != pair_group[best[:-1]]
    chosen = best[keep]
    out[pair_group[chosen]] = pair_code[chosen]
    return out


_NUMERIC_AGGS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(np.nanmean(v)) if np.any(~np.isnan(v)) else float("nan"),
    "sum": lambda v: float(np.nansum(v)) if np.any(~np.isnan(v)) else float("nan"),
    "min": lambda v: float(np.nanmin(v)) if np.any(~np.isnan(v)) else float("nan"),
    "max": lambda v: float(np.nanmax(v)) if np.any(~np.isnan(v)) else float("nan"),
    "median": lambda v: float(np.nanmedian(v)) if np.any(~np.isnan(v)) else float("nan"),
    "std": lambda v: float(np.nanstd(v)) if np.any(~np.isnan(v)) else float("nan"),
    "count": lambda v: float(np.sum(~np.isnan(v))),
    "first": lambda v: float(v[0]) if len(v) else float("nan"),
}

_CATEGORICAL_AGGS: dict[str, Callable[[np.ndarray], object]] = {
    "mode": _mode,
    "first": lambda v: v[0] if len(v) else None,
    "nunique": lambda v: len({x for x in v if x is not None}),
}


def column_group_codes(col: Column) -> tuple[np.ndarray, int]:
    """Per-row ``int64`` equality codes of a column, with ``-1`` for missing.

    Returns ``(codes, domain)`` where all non-missing codes are in
    ``[0, domain)``.  Categorical columns reuse their dictionary codes for
    free; float-backed columns are factorised with one ``np.unique``.
    """
    if col.ctype is CATEGORICAL:
        return col.codes.astype(np.int64), len(col.dictionary)
    values = col.values
    valid = ~np.isnan(values)
    codes = np.full(len(values), -1, dtype=np.int64)
    if valid.any():
        _, inverse = np.unique(values[valid], return_inverse=True)
        codes[valid] = inverse
        return codes, int(inverse.max()) + 1
    return codes, 0


def _group_rows(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised group identification.

    Returns ``(group_ids, first_rows)``: ``group_ids[i]`` is the group of row
    ``i``, groups are numbered by first appearance, and ``first_rows[g]`` is
    the first row index of group ``g``.  Missing key values participate as
    their own key symbol, exactly like the object-tuple fallback.
    """
    key_columns = [table.column(k) for k in keys]
    n = table.num_rows
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    packed = np.zeros(n, dtype=np.int64)
    span = 1
    for col in key_columns:
        codes, domain = column_group_codes(col)
        radix = domain + 1
        span *= radix
        if span > 2**62:
            return _group_rows_fallback(table, keys)
        packed = packed * radix + (codes + 1)
    _, first_seen, inverse = np.unique(packed, return_index=True, return_inverse=True)
    appearance = np.argsort(first_seen, kind="stable")
    rank = np.empty(len(first_seen), dtype=np.int64)
    rank[appearance] = np.arange(len(first_seen))
    return rank[inverse], first_seen[appearance]


def _group_rows_fallback(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Object-tuple group identification (reference path / overflow fallback)."""
    key_columns = [table.column(k) for k in keys]
    n = table.num_rows
    index_of: dict[tuple, int] = {}
    group_ids = np.empty(n, dtype=np.int64)
    first_rows: list[int] = []
    for i in range(n):
        parts = []
        for col in key_columns:
            value = col.value_at(i)
            if col.ctype is CATEGORICAL:
                parts.append(value)
            else:
                parts.append(None if np.isnan(value) else float(value))
        key = tuple(parts)
        group = index_of.get(key)
        if group is None:
            group = len(first_rows)
            index_of[key] = group
            first_rows.append(i)
        group_ids[i] = group
    return group_ids, np.array(first_rows, dtype=np.int64)


def group_by_aggregate(
    table: Table,
    keys: Sequence[str],
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    agg_overrides: Mapping[str, str] | None = None,
) -> Table:
    """Aggregate a table so that key tuples become unique.

    Non-key numeric columns are aggregated with ``numeric_agg`` and non-key
    categorical columns with ``categorical_agg``; ``agg_overrides`` can pick a
    different aggregate per column.  The result has one row per distinct key
    tuple, with key columns first.
    """
    if not keys:
        raise ValueError("group_by_aggregate requires at least one key column")
    agg_overrides = dict(agg_overrides or {})
    group_ids, first_rows = _group_rows(table, keys)
    n_groups = len(first_rows)
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    boundaries = np.searchsorted(sorted_ids, np.arange(n_groups))
    boundaries = np.append(boundaries, len(sorted_ids))

    # key columns: the first row of each group carries the group's key values,
    # so a single take-view per key column replaces the old tuple rebuild
    out_columns: list[Column] = [table.column(key).take(first_rows) for key in keys]

    key_set = set(keys)
    for col in table.columns():
        if col.name in key_set:
            continue
        agg_name = agg_overrides.get(
            col.name, categorical_agg if col.ctype is CATEGORICAL else numeric_agg
        )
        if col.ctype is CATEGORICAL:
            out_columns.append(
                _aggregate_categorical(col, agg_name, order, boundaries, n_groups)
            )
        else:
            agg_fn = _NUMERIC_AGGS.get(agg_name)
            if agg_fn is None:
                raise ValueError(f"unknown numeric aggregate {agg_name!r}")
            data = col.values[order]
            values = np.array(
                [agg_fn(data[boundaries[g]:boundaries[g + 1]]) for g in range(n_groups)],
                dtype=np.float64,
            )
            out_columns.append(Column.from_array(col.name, values, col.ctype))
    return Table(out_columns, name=table.name)


def _aggregate_categorical(
    col: Column, agg_name: str, order: np.ndarray, boundaries: np.ndarray, n_groups: int
) -> Column:
    """Aggregate one categorical column on its code array."""
    sorted_codes = col.codes[order]
    if agg_name == "first":
        out = sorted_codes[boundaries[:-1]] if n_groups else np.empty(0, dtype=np.int32)
        return Column.from_codes(col.name, out.astype(np.int32), col.dictionary)
    if agg_name == "mode":
        sorted_ids = np.repeat(np.arange(n_groups, dtype=np.int64), np.diff(boundaries))
        out = _mode_codes_per_group(sorted_codes, sorted_ids, n_groups)
        return Column.from_codes(col.name, out, col.dictionary)
    if agg_name == "nunique":
        values = np.empty(n_groups, dtype=np.float64)
        for g in range(n_groups):
            chunk = sorted_codes[boundaries[g]:boundaries[g + 1]]
            values[g] = len(np.unique(chunk[chunk >= 0]))
        return Column.from_array(col.name, values, NUMERIC)
    raise ValueError(f"unknown categorical aggregate {agg_name!r}")


def is_unique_on(table: Table, keys: Sequence[str]) -> bool:
    """Whether the key tuples identify rows uniquely."""
    _, first_rows = _group_rows(table, keys)
    return len(first_rows) == table.num_rows
