"""Group-by aggregation.

ARDA pre-aggregates foreign tables on their join keys so that one-to-many and
many-to-many joins reduce to the row-preserving one-to-one / many-to-one cases
(paper section 4, "Join Cardinality").
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL, NUMERIC
from repro.relational.table import Table


def _mode(values: np.ndarray):
    """Most frequent non-missing value of an object array (None if all missing)."""
    counts: dict = {}
    for value in values:
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        return None
    return max(counts.items(), key=lambda kv: kv[1])[0]


_NUMERIC_AGGS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(np.nanmean(v)) if np.any(~np.isnan(v)) else float("nan"),
    "sum": lambda v: float(np.nansum(v)) if np.any(~np.isnan(v)) else float("nan"),
    "min": lambda v: float(np.nanmin(v)) if np.any(~np.isnan(v)) else float("nan"),
    "max": lambda v: float(np.nanmax(v)) if np.any(~np.isnan(v)) else float("nan"),
    "median": lambda v: float(np.nanmedian(v)) if np.any(~np.isnan(v)) else float("nan"),
    "std": lambda v: float(np.nanstd(v)) if np.any(~np.isnan(v)) else float("nan"),
    "count": lambda v: float(np.sum(~np.isnan(v))),
    "first": lambda v: float(v[0]) if len(v) else float("nan"),
}

_CATEGORICAL_AGGS: dict[str, Callable[[np.ndarray], object]] = {
    "mode": _mode,
    "first": lambda v: v[0] if len(v) else None,
    "nunique": lambda v: len({x for x in v if x is not None}),
}


def group_keys(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, list[tuple]]:
    """Assign a group id to each row based on the tuple of key values.

    Returns ``(group_ids, distinct_key_tuples)`` where ``group_ids[i]`` indexes
    into ``distinct_key_tuples``.  Missing key values participate as their own
    group (keyed by ``None`` / ``NaN`` represented as ``None``).
    """
    key_columns = [table.column(k) for k in keys]
    n = table.num_rows
    tuples: list[tuple] = []
    index_of: dict[tuple, int] = {}
    group_ids = np.empty(n, dtype=np.int64)
    for i in range(n):
        parts = []
        for col in key_columns:
            value = col.values[i]
            if col.ctype is CATEGORICAL:
                parts.append(value)
            else:
                parts.append(None if np.isnan(value) else float(value))
        key = tuple(parts)
        if key not in index_of:
            index_of[key] = len(tuples)
            tuples.append(key)
        group_ids[i] = index_of[key]
    return group_ids, tuples


def group_by_aggregate(
    table: Table,
    keys: Sequence[str],
    numeric_agg: str = "mean",
    categorical_agg: str = "mode",
    agg_overrides: Mapping[str, str] | None = None,
) -> Table:
    """Aggregate a table so that key tuples become unique.

    Non-key numeric columns are aggregated with ``numeric_agg`` and non-key
    categorical columns with ``categorical_agg``; ``agg_overrides`` can pick a
    different aggregate per column.  The result has one row per distinct key
    tuple, with key columns first.
    """
    if not keys:
        raise ValueError("group_by_aggregate requires at least one key column")
    agg_overrides = dict(agg_overrides or {})
    group_ids, tuples = group_keys(table, keys)
    n_groups = len(tuples)
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    boundaries = np.searchsorted(sorted_ids, np.arange(n_groups))
    boundaries = np.append(boundaries, len(sorted_ids))

    out_columns: list[Column] = []
    for k_index, key in enumerate(keys):
        col = table.column(key)
        values = [tuples[g][k_index] for g in range(n_groups)]
        if col.ctype is CATEGORICAL:
            out_columns.append(Column(key, values, CATEGORICAL))
        else:
            floats = np.array(
                [np.nan if v is None else v for v in values], dtype=np.float64
            )
            out_columns.append(Column.from_array(key, floats, col.ctype))

    key_set = set(keys)
    for col in table.columns():
        if col.name in key_set:
            continue
        agg_name = agg_overrides.get(
            col.name, categorical_agg if col.ctype is CATEGORICAL else numeric_agg
        )
        if col.ctype is CATEGORICAL:
            agg_fn = _CATEGORICAL_AGGS.get(agg_name)
            if agg_fn is None:
                raise ValueError(f"unknown categorical aggregate {agg_name!r}")
            data = col.values[order]
            values = [
                agg_fn(data[boundaries[g]:boundaries[g + 1]]) for g in range(n_groups)
            ]
            if agg_name == "nunique":
                out_columns.append(Column(col.name, values, NUMERIC))
            else:
                out_columns.append(Column(col.name, values, CATEGORICAL))
        else:
            agg_fn = _NUMERIC_AGGS.get(agg_name)
            if agg_fn is None:
                raise ValueError(f"unknown numeric aggregate {agg_name!r}")
            data = col.values[order]
            values = np.array(
                [agg_fn(data[boundaries[g]:boundaries[g + 1]]) for g in range(n_groups)],
                dtype=np.float64,
            )
            out_columns.append(Column.from_array(col.name, values, col.ctype))
    return Table(out_columns, name=table.name)


def is_unique_on(table: Table, keys: Sequence[str]) -> bool:
    """Whether the key tuples identify rows uniquely."""
    group_ids, tuples = group_keys(table, keys)
    return len(tuples) == table.num_rows
