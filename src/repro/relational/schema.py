"""Column types and table schemas.

The engine supports four logical column types.  Numeric, datetime and boolean
columns are stored as ``float64`` arrays (datetimes as epoch seconds, booleans
as 0.0/1.0) with ``NaN`` marking missing values.  Categorical columns are
dictionary encoded: an ``int32`` code array (``-1`` marking missing values)
plus a shared dictionary of distinct strings; reading ``Column.values`` still
yields the object-array-of-strings view of the data, decoded on demand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ColumnType(enum.Enum):
    """Logical type of a column."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    DATETIME = "datetime"
    BOOLEAN = "boolean"

    @property
    def is_float_backed(self) -> bool:
        """Whether values of this type are stored in a float64 array."""
        return self is not ColumnType.CATEGORICAL


NUMERIC = ColumnType.NUMERIC
CATEGORICAL = ColumnType.CATEGORICAL
DATETIME = ColumnType.DATETIME
BOOLEAN = ColumnType.BOOLEAN


@dataclass(frozen=True)
class ColumnSpec:
    """Name and type of one column."""

    name: str
    ctype: ColumnType


class Schema:
    """Ordered mapping from column names to column types."""

    def __init__(self, specs: list[ColumnSpec] | None = None):
        self._specs: list[ColumnSpec] = list(specs or [])
        self._by_name = {spec.name: spec for spec in self._specs}
        if len(self._by_name) != len(self._specs):
            raise ValueError("duplicate column names in schema")

    @classmethod
    def from_pairs(cls, pairs: list[tuple[str, ColumnType]]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls([ColumnSpec(name, ctype) for name, ctype in pairs])

    @property
    def names(self) -> list[str]:
        """Column names in order."""
        return [spec.name for spec in self._specs]

    def type_of(self, name: str) -> ColumnType:
        """Return the type of column ``name``."""
        return self._by_name[name].ctype

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __repr__(self) -> str:
        inner = ", ".join(f"{s.name}:{s.ctype.value}" for s in self._specs)
        return f"Schema({inner})"
