"""Columnar relational engine used as ARDA's substrate.

This package replaces the pandas layer used by the original ARDA prototype
with a small, typed, numpy-backed relational engine.  It provides:

* :class:`~repro.relational.column.Column` — a typed, nullable column.
* :class:`~repro.relational.table.Table` — an ordered collection of equal
  length columns with selection, filtering, sorting and group-by support.
* Hash LEFT joins on single and composite keys (:mod:`repro.relational.join`).
* Soft joins (nearest-neighbour and two-way nearest-neighbour interpolation)
  for keys such as timestamps that do not align exactly
  (:mod:`repro.relational.soft_join`).
* Time resampling for joining tables with mismatched time granularity
  (:mod:`repro.relational.resample`).
* Group-by aggregation, imputation and one-hot encoding used by the ARDA
  pipeline before model training.
"""

from repro.relational.column import Column
from repro.relational.schema import (
    BOOLEAN,
    CATEGORICAL,
    DATETIME,
    NUMERIC,
    ColumnType,
    Schema,
)
from repro.relational.table import Table
from repro.relational.join import left_join
from repro.relational.soft_join import (
    nearest_join,
    two_way_nearest_join,
)
from repro.relational.resample import resample_to_granularity
from repro.relational.aggregate import group_by_aggregate
from repro.relational.imputation import FittedImputer, impute_table
from repro.relational.encoding import (
    FittedEncoder,
    encode_features,
    encode_features_binned,
    to_binned_matrix,
    to_design_matrix,
)
from repro.relational.io import read_csv, write_csv
from repro.relational.persist import (
    ManifestEntry,
    ManifestFormatError,
    RepositoryManifest,
    TableFormatError,
    TableHeader,
    read_manifest,
    read_table,
    read_table_header,
    table_fingerprint,
    write_manifest,
    write_table,
)

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "NUMERIC",
    "CATEGORICAL",
    "DATETIME",
    "BOOLEAN",
    "Table",
    "left_join",
    "nearest_join",
    "two_way_nearest_join",
    "resample_to_granularity",
    "group_by_aggregate",
    "impute_table",
    "FittedImputer",
    "encode_features",
    "encode_features_binned",
    "to_design_matrix",
    "to_binned_matrix",
    "FittedEncoder",
    "read_csv",
    "write_csv",
    "read_table",
    "write_table",
    "read_table_header",
    "table_fingerprint",
    "TableHeader",
    "TableFormatError",
    "read_manifest",
    "write_manifest",
    "RepositoryManifest",
    "ManifestEntry",
    "ManifestFormatError",
]
