"""Columnar relational engine used as ARDA's substrate.

This package replaces the pandas layer used by the original ARDA prototype
with a small, typed, numpy-backed relational engine.  It provides:

* :class:`~repro.relational.column.Column` — a typed, nullable column.
* :class:`~repro.relational.table.Table` — an ordered collection of equal
  length columns with selection, filtering, sorting and group-by support.
* Hash LEFT joins on single and composite keys, plus streaming zone-map-pruned
  joins over row-group chunked files (:mod:`repro.relational.join`).
* Binary columnar persistence with optional row-group chunking for
  out-of-core tables (:mod:`repro.relational.persist`).
* Soft joins (nearest-neighbour and two-way nearest-neighbour interpolation)
  for keys such as timestamps that do not align exactly
  (:mod:`repro.relational.soft_join`).
* Time resampling for joining tables with mismatched time granularity
  (:mod:`repro.relational.resample`).
* Group-by aggregation, imputation and one-hot encoding used by the ARDA
  pipeline before model training.
"""

from repro.relational.column import Column
from repro.relational.schema import (
    BOOLEAN,
    CATEGORICAL,
    DATETIME,
    NUMERIC,
    ColumnType,
    Schema,
)
from repro.relational.table import Table
from repro.relational.join import (
    StreamingHashJoin,
    StreamJoinStats,
    as_chunk_source,
    iter_streaming_left_join,
    left_join,
    streaming_left_join,
    streaming_match_fraction,
)
from repro.relational.soft_join import (
    nearest_join,
    two_way_nearest_join,
)
from repro.relational.resample import resample_to_granularity
from repro.relational.aggregate import group_by_aggregate
from repro.relational.imputation import FittedImputer, impute_table
from repro.relational.encoding import (
    FittedEncoder,
    encode_features,
    encode_features_binned,
    to_binned_matrix,
    to_design_matrix,
)
from repro.relational.io import read_csv, write_csv
from repro.relational.persist import (
    CHUNK_ROWS_ENV,
    DEFAULT_STREAM_CHUNK_ROWS,
    ChunkedTableReader,
    ChunkMeta,
    ManifestEntry,
    ManifestFormatError,
    RepositoryManifest,
    TableFormatError,
    TableHeader,
    bytes_read,
    bytes_read_detail,
    open_chunks,
    read_manifest,
    read_table,
    read_table_header,
    reset_bytes_read,
    resolve_chunk_rows,
    table_fingerprint,
    write_manifest,
    write_table,
    write_table_stream,
)

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "NUMERIC",
    "CATEGORICAL",
    "DATETIME",
    "BOOLEAN",
    "Table",
    "left_join",
    "streaming_left_join",
    "iter_streaming_left_join",
    "streaming_match_fraction",
    "as_chunk_source",
    "StreamingHashJoin",
    "StreamJoinStats",
    "nearest_join",
    "two_way_nearest_join",
    "resample_to_granularity",
    "group_by_aggregate",
    "impute_table",
    "FittedImputer",
    "encode_features",
    "encode_features_binned",
    "to_design_matrix",
    "to_binned_matrix",
    "FittedEncoder",
    "read_csv",
    "write_csv",
    "read_table",
    "write_table",
    "write_table_stream",
    "open_chunks",
    "ChunkedTableReader",
    "ChunkMeta",
    "resolve_chunk_rows",
    "DEFAULT_STREAM_CHUNK_ROWS",
    "CHUNK_ROWS_ENV",
    "bytes_read",
    "bytes_read_detail",
    "reset_bytes_read",
    "read_table_header",
    "table_fingerprint",
    "TableHeader",
    "TableFormatError",
    "read_manifest",
    "write_manifest",
    "RepositoryManifest",
    "ManifestEntry",
    "ManifestFormatError",
]
