"""Experiment harness: the code behind every reproduced table and figure."""

from repro.evaluation.evaluator import (
    evaluate_augmentation,
    evaluate_selector_on_dataset,
    evaluate_selector_on_matrix,
    materialize_full_join,
    regression_error,
)
from repro.evaluation.reporting import (
    format_stage_breakdown,
    format_sweep,
    format_table,
    records_to_rows,
    stage_breakdown_rows,
    sweep_rows,
)
from repro.evaluation import experiments

__all__ = [
    "evaluate_augmentation",
    "evaluate_selector_on_dataset",
    "evaluate_selector_on_matrix",
    "materialize_full_join",
    "regression_error",
    "format_stage_breakdown",
    "format_sweep",
    "format_table",
    "records_to_rows",
    "stage_breakdown_rows",
    "sweep_rows",
    "experiments",
]
