"""One function per reproduced table / figure of the paper's evaluation (section 7).

Every function returns a list of plain dictionaries (rows) shaped like the
corresponding artifact in the paper, so the benchmark harness just calls the
function and prints the rows.  Dataset scale, RIFS rounds and the selector list
are parameters so the offline benchmarks can run a reduced-but-faithful version
of each experiment in minutes rather than hours; the defaults are the reduced
settings used by ``benchmarks/``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.coreset import make_coreset_builder
from repro.core.arda import ARDA
from repro.core.config import ARDAConfig
from repro.datasets.micro import make_micro_benchmark
from repro.datasets.scenarios import load_dataset
from repro.evaluation.evaluator import (
    classification_accuracy,
    evaluate_base_table,
    evaluate_selector_on_matrix,
    materialize_full_join,
)
from repro.ml.automl import AutoMLSearch
from repro.relational.encoding import to_design_matrix
from repro.relational.imputation import impute_table
from repro.selection import make_selector
from repro.selection.base import CLASSIFICATION, holdout_score

FAST_SELECTORS = ("RIFS", "random forest", "sparse regression", "f-test", "mutual info", "relief")
REGRESSION_DATASETS = ("taxi", "pickup", "poverty")
CLASSIFICATION_DATASETS = ("school_s", "school_l")
DEFAULT_SCALE = 0.4
DEFAULT_RIFS_OPTIONS = {"n_rounds": 2}


def _selector_options(method: str, rifs_options: dict | None) -> dict:
    if method == "RIFS":
        return dict(rifs_options or DEFAULT_RIFS_OPTIONS)
    if method == "forward selection":
        return {"candidate_pool": 15, "max_features": 10}
    if method == "backward selection":
        return {"max_rounds": 10}
    return {}


def _improvement(base: float, augmented: float) -> float:
    """Percentage improvement over the base score (higher is better for both)."""
    if base == 0:
        return 0.0
    return 100.0 * (augmented - base) / abs(base)


# -- E1: Figure 3 — achieved augmentation and time per dataset --------------------


def experiment_figure3_augmentation(
    datasets: tuple[str, ...] = ("poverty", "school_s"),
    scale: float = DEFAULT_SCALE,
    rifs_options: dict | None = None,
    include_automl: bool = True,
    automl_budget: float = 10.0,
    random_state: int = 0,
) -> list[dict]:
    """Percentage score improvement over the base table for each augmentation method."""
    rows = []
    for name in datasets:
        dataset = load_dataset(name, scale=scale)
        base = evaluate_base_table(dataset, random_state=random_state)
        X_full, y_full, _names, _sources = materialize_full_join(
            dataset, random_state=random_state
        )

        # ARDA with RIFS
        start = time.perf_counter()
        config = ARDAConfig(
            selector="RIFS",
            selector_options=dict(rifs_options or DEFAULT_RIFS_OPTIONS),
            random_state=random_state,
        )
        report = ARDA(config).augment(dataset)
        rows.append(
            {
                "dataset": name,
                "method": "ARDA",
                "improvement_pct": round(_improvement(report.base_score, report.augmented_score), 2),
                "time_s": round(time.perf_counter() - start, 2),
            }
        )

        # all tables, no feature selection
        start = time.perf_counter()
        all_score = holdout_score(X_full, y_full, dataset.task, random_state=random_state)
        rows.append(
            {
                "dataset": name,
                "method": "All tables",
                "improvement_pct": round(_improvement(base.score, all_score), 2),
                "time_s": round(time.perf_counter() - start, 2),
            }
        )

        # TR rule as a stand-alone augmentation method
        start = time.perf_counter()
        tr_config = ARDAConfig(
            selector="all features", tuple_ratio_tau=20.0, random_state=random_state
        )
        tr_report = ARDA(tr_config).augment(dataset)
        rows.append(
            {
                "dataset": name,
                "method": "TR rule",
                "improvement_pct": round(
                    _improvement(tr_report.base_score, tr_report.augmented_score), 2
                ),
                "time_s": round(time.perf_counter() - start, 2),
            }
        )

        # base table reference row
        rows.append(
            {"dataset": name, "method": "Base table", "improvement_pct": 0.0, "time_s": 0.0}
        )

        if include_automl:
            task = "classification" if dataset.task == CLASSIFICATION else "regression"
            X_base, y_base, _enc = to_design_matrix(
                impute_table(dataset.base_table, seed=random_state),
                dataset.target,
                seed=random_state,
            )
            for label, X_fit, y_fit in (
                ("AutoML (base)", X_base, y_base),
                ("AutoML (all)", X_full, y_full),
            ):
                start = time.perf_counter()
                automl = AutoMLSearch(
                    task=task, time_budget=automl_budget, max_trials=6, random_state=random_state
                )
                score = holdout_score(
                    X_fit, y_fit, dataset.task, estimator=automl, random_state=random_state
                )
                rows.append(
                    {
                        "dataset": name,
                        "method": label,
                        "improvement_pct": round(_improvement(base.score, score), 2),
                        "time_s": round(time.perf_counter() - start, 2),
                    }
                )
    return rows


# -- E2/E3: Figure 4 and Table 1 — every selector on the real-world datasets -------


def experiment_table1_real_world(
    datasets: tuple[str, ...] = ("taxi", "poverty", "school_s"),
    selectors: tuple[str, ...] = FAST_SELECTORS,
    scale: float = DEFAULT_SCALE,
    rifs_options: dict | None = None,
    random_state: int = 0,
) -> list[dict]:
    """Error / accuracy and selection time for every selector on each dataset."""
    rows = []
    for name in datasets:
        dataset = load_dataset(name, scale=scale)
        base = evaluate_base_table(dataset, random_state=random_state)
        rows.append(
            {
                "dataset": name,
                "method": "baseline",
                "score": round(base.score, 4),
                "error": None if base.error is None else round(base.error, 4),
                "time_s": 0.0,
                "n_selected": base.n_selected,
            }
        )
        X, y, _names, _sources = materialize_full_join(dataset, random_state=random_state)
        methods = list(selectors)
        for method in methods:
            if dataset.task == CLASSIFICATION and method == "lasso":
                continue
            if dataset.task != CLASSIFICATION and method in ("linear svc", "logistic reg"):
                continue
            record = evaluate_selector_on_matrix(
                method,
                X,
                y,
                dataset.task,
                dataset_name=name,
                random_state=random_state,
                selector_options=_selector_options(method, rifs_options),
            )
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "score": round(record.score, 4),
                    "error": None if record.error is None else round(record.error, 4),
                    "time_s": round(record.elapsed, 2),
                    "n_selected": record.n_selected,
                }
            )
    return rows


def experiment_figure4_score_vs_time(
    datasets: tuple[str, ...] = ("poverty", "school_s"),
    selectors: tuple[str, ...] = FAST_SELECTORS,
    scale: float = DEFAULT_SCALE,
    rifs_options: dict | None = None,
    random_state: int = 0,
) -> list[dict]:
    """Score-vs-time points: %-improvement over the base table per selector."""
    table = experiment_table1_real_world(
        datasets=datasets,
        selectors=selectors,
        scale=scale,
        rifs_options=rifs_options,
        random_state=random_state,
    )
    baselines = {
        row["dataset"]: row["score"] for row in table if row["method"] == "baseline"
    }
    rows = []
    for row in table:
        if row["method"] == "baseline":
            continue
        rows.append(
            {
                "dataset": row["dataset"],
                "method": row["method"],
                "pct_change": round(_improvement(baselines[row["dataset"]], row["score"]), 2),
                "time_s": row["time_s"],
            }
        )
    return rows


# -- E4/E5: Tables 2 and 3 — coreset construction strategies ------------------------


def _coreset_score(
    X: np.ndarray,
    y: np.ndarray,
    task: str,
    strategy: str,
    size: int,
    method: str,
    rifs_options: dict | None,
    random_state: int,
) -> float:
    builder = make_coreset_builder(strategy, random_state=random_state)
    X_small, y_small = builder.reduce_matrix(X, y, size)
    record = evaluate_selector_on_matrix(
        method,
        X_small,
        y_small,
        task,
        random_state=random_state,
        selector_options=_selector_options(method, rifs_options),
    )
    return record.score


def experiment_coreset_strategies(
    datasets: tuple[str, ...],
    selectors: tuple[str, ...],
    strategies: tuple[str, ...] = ("stratified", "sketch"),
    coreset_size: int = 200,
    scale: float = DEFAULT_SCALE,
    rifs_options: dict | None = None,
    random_state: int = 0,
) -> list[dict]:
    """Accuracy / score change of each coreset strategy relative to uniform sampling.

    Covers both Table 2 (classification datasets, stratified + sketch) and
    Table 3 (regression datasets, sketch) depending on the arguments.
    """
    rows = []
    for name in datasets:
        if name in ("kraken", "digits"):
            micro = make_micro_benchmark(name, noise_factor=3, seed=random_state)
            X, y, task = micro.X, micro.y, CLASSIFICATION
        else:
            dataset = load_dataset(name, scale=scale)
            X, y, _names, _sources = materialize_full_join(dataset, random_state=random_state)
            task = dataset.task
        for method in selectors:
            if task == CLASSIFICATION and method == "lasso":
                continue
            if task != CLASSIFICATION and method in ("linear svc", "logistic reg"):
                continue
            uniform_score = _coreset_score(
                X, y, task, "uniform", coreset_size, method, rifs_options, random_state
            )
            for strategy in strategies:
                strategy_score = _coreset_score(
                    X, y, task, strategy, coreset_size, method, rifs_options, random_state
                )
                rows.append(
                    {
                        "dataset": name,
                        "method": method,
                        "strategy": strategy,
                        "pct_change_vs_uniform": round(
                            _improvement(uniform_score, strategy_score), 2
                        ),
                    }
                )
    return rows


def experiment_table2_coreset_classification(**kwargs) -> list[dict]:
    """Table 2: stratified sampling and sketching vs uniform on classification datasets."""
    kwargs.setdefault("datasets", ("school_s", "kraken", "digits"))
    kwargs.setdefault("selectors", ("RIFS", "random forest", "f-test", "all features"))
    kwargs.setdefault("strategies", ("stratified", "sketch"))
    return experiment_coreset_strategies(**kwargs)


def experiment_table3_coreset_regression(**kwargs) -> list[dict]:
    """Table 3: sketching vs uniform sampling on the regression datasets."""
    kwargs.setdefault("datasets", ("taxi", "poverty"))
    kwargs.setdefault("selectors", ("RIFS", "sparse regression", "f-test", "all features"))
    kwargs.setdefault("strategies", ("sketch",))
    return experiment_coreset_strategies(**kwargs)


# -- E6: Figure 5 — soft join strategies on time-series keys -----------------------

SOFT_JOIN_VARIANTS: tuple[tuple[str, str, bool], ...] = (
    ("Hard", "hard", False),
    ("Time-Resampled", "hard", True),
    ("Nearest", "nearest", True),
    ("2-way Nearest", "two_way_nearest", True),
)


def experiment_figure5_soft_joins(
    datasets: tuple[str, ...] = ("pickup", "taxi"),
    selectors: tuple[str, ...] = ("RIFS", "random forest", "f-test"),
    scale: float = DEFAULT_SCALE,
    rifs_options: dict | None = None,
    random_state: int = 0,
) -> list[dict]:
    """Holdout error of each soft-join strategy for time-series joins."""
    rows = []
    for name in datasets:
        dataset = load_dataset(name, scale=scale)
        for label, strategy, resample in SOFT_JOIN_VARIANTS:
            from repro.core.join_execution import join_candidates

            joined, _contributed = join_candidates(
                dataset.base_table,
                dataset.repository,
                dataset.candidates,
                soft_strategy=strategy,
                time_resample=resample,
                rng=np.random.default_rng(random_state),
            )
            X, y, _encoding = to_design_matrix(
                impute_table(joined, seed=random_state),
                dataset.target,
                seed=random_state,
            )
            for method in selectors:
                record = evaluate_selector_on_matrix(
                    method,
                    X,
                    y,
                    dataset.task,
                    dataset_name=name,
                    random_state=random_state,
                    selector_options=_selector_options(method, rifs_options),
                )
                error = record.error if record.error is not None else 1.0 - record.score
                rows.append(
                    {
                        "dataset": name,
                        "join_strategy": label,
                        "method": method,
                        "error": round(error, 4),
                    }
                )
    return rows


# -- E7: Table 4 — Tuple-Ratio pre-filtering ----------------------------------------


def experiment_table4_tuple_ratio(
    datasets: tuple[str, ...] = ("poverty", "school_s"),
    taus: tuple[float, ...] = (15.0, 17.0, 24.0),
    scale: float = DEFAULT_SCALE,
    rifs_options: dict | None = None,
    random_state: int = 0,
) -> list[dict]:
    """Score change, speed-up and tables removed when pre-filtering with the TR rule."""
    rows = []
    for name in datasets:
        dataset = load_dataset(name, scale=scale)
        base_config = ARDAConfig(
            selector="RIFS",
            selector_options=dict(rifs_options or DEFAULT_RIFS_OPTIONS),
            random_state=random_state,
        )
        unfiltered = ARDA(base_config).augment(dataset)
        best_row = None
        for tau in taus:
            config = ARDAConfig(
                selector="RIFS",
                selector_options=dict(rifs_options or DEFAULT_RIFS_OPTIONS),
                tuple_ratio_tau=tau,
                random_state=random_state,
            )
            filtered = ARDA(config).augment(dataset)
            score_change = _improvement(unfiltered.augmented_score, filtered.augmented_score)
            speedup = (
                unfiltered.total_time / filtered.total_time if filtered.total_time > 0 else 1.0
            )
            row = {
                "dataset": name,
                "tau": tau,
                "score_change_pct": round(score_change, 2),
                "speedup_x": round(speedup, 2),
                "tables_removed": filtered.tables_filtered_out,
            }
            if best_row is None or row["score_change_pct"] > best_row["score_change_pct"]:
                best_row = row
            rows.append(row)
        best_row = dict(best_row)
        best_row["best_for_dataset"] = True
        rows.append(best_row)
    return rows


# -- E8: Table 5 — table grouping strategies -----------------------------------------


def experiment_table5_table_grouping(
    datasets: tuple[str, ...] = ("poverty", "school_s"),
    selectors: tuple[str, ...] = ("RIFS", "random forest", "sparse regression"),
    scale: float = DEFAULT_SCALE,
    rifs_options: dict | None = None,
    random_state: int = 0,
) -> list[dict]:
    """Final-score change of table-join and full-materialisation vs budget-join."""
    rows = []
    for name in datasets:
        dataset = load_dataset(name, scale=scale)
        for method in selectors:
            if dataset.task == CLASSIFICATION and method == "lasso":
                continue
            scores = {}
            for plan in ("budget", "table", "full"):
                config = ARDAConfig(
                    selector=method,
                    selector_options=_selector_options(method, rifs_options),
                    join_plan=plan,
                    random_state=random_state,
                )
                report = ARDA(config).augment(dataset)
                scores[plan] = report.augmented_score
            for plan in ("table", "full"):
                rows.append(
                    {
                        "dataset": name,
                        "method": method,
                        "grouping": plan,
                        "pct_change_vs_budget": round(
                            _improvement(scores["budget"], scores[plan]), 2
                        ),
                    }
                )
    return rows


# -- E9/E10: Table 6 and Figure 6 — micro benchmarks ----------------------------------


def experiment_table6_micro(
    datasets: tuple[str, ...] = ("kraken", "digits"),
    selectors: tuple[str, ...] = ("RIFS", "random forest", "f-test", "mutual info", "relief"),
    noise_factor: int = 10,
    rifs_options: dict | None = None,
    random_state: int = 0,
    samples_per_class: int = 60,
) -> list[dict]:
    """Accuracy and time of each selector on the noise-injected micro benchmarks."""
    rows = []
    for name in datasets:
        kwargs = {"samples_per_class": samples_per_class} if name == "digits" else {}
        micro = make_micro_benchmark(
            name, noise_factor=noise_factor, seed=random_state, **kwargs
        )
        base = make_micro_benchmark(name, noise_factor=0, seed=random_state, **kwargs)
        baseline_accuracy = classification_accuracy(
            micro.X[:, : base.n_real], micro.y, random_state=random_state
        )
        rows.append(
            {
                "dataset": name,
                "method": "baseline (original features)",
                "accuracy": round(baseline_accuracy, 4),
                "time_s": 0.0,
                "n_selected": base.n_real,
            }
        )
        for method in selectors:
            if method == "lasso":
                continue
            record = evaluate_selector_on_matrix(
                method,
                micro.X,
                micro.y,
                CLASSIFICATION,
                dataset_name=name,
                random_state=random_state,
                selector_options=_selector_options(method, rifs_options),
            )
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "accuracy": round(record.score, 4),
                    "time_s": round(record.elapsed, 2),
                    "n_selected": record.n_selected,
                }
            )
    return rows


def experiment_figure6_noise_filtering(
    datasets: tuple[str, ...] = ("kraken", "digits"),
    selectors: tuple[str, ...] = ("RIFS", "random forest", "f-test", "mutual info"),
    noise_factor: int = 10,
    rifs_options: dict | None = None,
    random_state: int = 0,
    samples_per_class: int = 60,
) -> list[dict]:
    """How many features each selector keeps and what fraction of them are real."""
    rows = []
    for name in datasets:
        kwargs = {"samples_per_class": samples_per_class} if name == "digits" else {}
        micro = make_micro_benchmark(
            name, noise_factor=noise_factor, seed=random_state, **kwargs
        )
        for method in selectors:
            selector = make_selector(
                method,
                random_state=random_state,
                **_selector_options(method, rifs_options),
            )
            result = selector.select(micro.X, micro.y, task=CLASSIFICATION)
            selected = np.asarray(result.selected, dtype=np.int64)
            n_real = int(micro.real_mask[selected].sum()) if len(selected) else 0
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "n_selected": int(len(selected)),
                    "n_real_selected": n_real,
                    "fraction_real": round(n_real / len(selected), 3) if len(selected) else 0.0,
                    "total_real": micro.n_real,
                    "total_noise": micro.n_noise,
                }
            )
    return rows


# -- Ablations of RIFS design choices ------------------------------------------------


def experiment_ablation_injection(
    dataset_name: str = "poverty",
    scale: float = DEFAULT_SCALE,
    rifs_rounds: int = 2,
    random_state: int = 0,
) -> list[dict]:
    """Moment-matched vs standard-distribution noise injection inside RIFS."""
    dataset = load_dataset(dataset_name, scale=scale)
    X, y, _names, _sources = materialize_full_join(dataset, random_state=random_state)
    rows = []
    for strategy in ("moment_matched", "standard"):
        record = evaluate_selector_on_matrix(
            "RIFS",
            X,
            y,
            dataset.task,
            dataset_name=dataset_name,
            random_state=random_state,
            selector_options={"n_rounds": rifs_rounds, "injection_strategy": strategy},
        )
        rows.append(
            {
                "dataset": dataset_name,
                "injection": strategy,
                "score": round(record.score, 4),
                "n_selected": record.n_selected,
                "time_s": round(record.elapsed, 2),
            }
        )
    return rows


def experiment_ablation_ensemble_weight(
    dataset_name: str = "poverty",
    nus: tuple[float, ...] = (0.0, 0.5, 1.0),
    scale: float = DEFAULT_SCALE,
    rifs_rounds: int = 2,
    random_state: int = 0,
) -> list[dict]:
    """Sweep the RF/SR ensemble weight nu in the RIFS aggregate ranking."""
    dataset = load_dataset(dataset_name, scale=scale)
    X, y, _names, _sources = materialize_full_join(dataset, random_state=random_state)
    rows = []
    for nu in nus:
        record = evaluate_selector_on_matrix(
            "RIFS",
            X,
            y,
            dataset.task,
            dataset_name=dataset_name,
            random_state=random_state,
            selector_options={"n_rounds": rifs_rounds, "nu": nu},
        )
        rows.append(
            {
                "dataset": dataset_name,
                "nu": nu,
                "score": round(record.score, 4),
                "n_selected": record.n_selected,
            }
        )
    return rows
