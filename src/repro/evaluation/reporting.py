"""Plain-text report formatting for experiment results."""

from __future__ import annotations

from typing import Sequence

from repro.core.results import AugmentationReport
from repro.evaluation.evaluator import EvaluationRecord


def records_to_rows(records: Sequence[EvaluationRecord]) -> list[dict]:
    """Flatten evaluation records into plain dictionaries."""
    rows = []
    for record in records:
        row = {
            "dataset": record.dataset,
            "method": record.method,
            "score": round(record.score, 4),
            "error": None if record.error is None else round(record.error, 4),
            "time_s": round(record.elapsed, 2),
            "n_selected": record.n_selected,
        }
        row.update(record.extra)
        rows.append(row)
    return rows


def stage_breakdown_rows(reports: Sequence[AugmentationReport]) -> list[dict]:
    """Per-stage wall-clock rows for a set of augmentation reports.

    One row per report with discovery / coreset / join / selection / fit /
    other seconds, so sweeps can show where each run spent its time and how
    the executor and tree-kernel choices moved the join and selection shares.
    """
    rows = []
    for report in reports:
        row = {"dataset": report.dataset_name, "executor": report.executor}
        row.update(
            {stage: round(seconds, 3) for stage, seconds in report.stage_breakdown().items()}
        )
        rows.append(row)
    return rows


def format_stage_breakdown(reports: Sequence[AugmentationReport]) -> str:
    """Render per-stage timings of augmentation reports as an aligned table."""
    return format_table(stage_breakdown_rows(reports))


def sweep_rows(scores: Sequence) -> list[dict]:
    """Per-scenario report rows for a planted-ground-truth sweep.

    One row per :class:`~repro.datasets.sqlgen.sweep.ScenarioScore`: the
    plant-relative metrics (discovery recall/precision, ranking check,
    selection recall, uplift) plus pass/fail, so ``repro sweep`` and the
    experiment notebooks render sweeps through the same table machinery as
    the paper reproductions.
    """
    rows = []
    for score in scores:
        rows.append(
            {
                "scenario": score.scenario_id,
                "tables": score.n_tables,
                "task": score.task,
                "disc_recall": round(score.discovery_recall, 3),
                "disc_prec": round(score.discovery_precision, 3),
                "ranking": "ok" if score.ranking_ok else "VIOLATED",
                "sel_recall": round(score.selection_recall, 3),
                "uplift": round(score.uplift, 4),
                "time_s": round(score.elapsed_s, 2),
                "status": "pass" if score.passed else "FAIL",
            }
        )
    return rows


def format_sweep(scores: Sequence) -> str:
    """Render per-scenario sweep scores as an aligned plain-text table."""
    return format_table(sweep_rows(scores))


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [["" if row.get(c) is None else str(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), max((len(line[i]) for line in body), default=0))
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(columns))),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)
