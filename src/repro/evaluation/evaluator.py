"""Shared evaluation helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.arda import ARDA
from repro.core.config import ARDAConfig
from repro.core.join_execution import join_candidates
from repro.datasets.bundle import AugmentationDataset
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score, mean_absolute_error
from repro.ml.model_selection import train_test_split
from repro.relational.encoding import to_design_matrix
from repro.relational.imputation import impute_table
from repro.selection import make_selector
from repro.selection.base import CLASSIFICATION, default_estimator, holdout_score


@dataclass
class EvaluationRecord:
    """One row of an experiment table."""

    dataset: str
    method: str
    score: float
    error: float | None = None
    elapsed: float = 0.0
    n_selected: int | None = None
    extra: dict = field(default_factory=dict)


def regression_error(
    X: np.ndarray,
    y: np.ndarray,
    estimator=None,
    test_size: float = 0.25,
    random_state: int = 0,
) -> float:
    """Holdout mean absolute error of the default estimator (lower is better)."""
    estimator = estimator if estimator is not None else default_estimator("regression")
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=test_size, random_state=random_state
    )
    model = clone(estimator)
    model.fit(X_train, y_train)
    return mean_absolute_error(y_test, model.predict(X_test))


def classification_accuracy(
    X: np.ndarray,
    y: np.ndarray,
    estimator=None,
    test_size: float = 0.25,
    random_state: int = 0,
) -> float:
    """Holdout accuracy of the default estimator."""
    estimator = estimator if estimator is not None else default_estimator("classification")
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=test_size, random_state=random_state, stratify=y
    )
    model = clone(estimator)
    model.fit(X_train, y_train)
    return accuracy_score(y_test, model.predict(X_test))


def task_score(X: np.ndarray, y: np.ndarray, task: str, random_state: int = 0) -> float:
    """Primary reporting score: accuracy for classification, MAE for regression.

    Returned so that "higher is better" for classification and "lower is
    better" for regression, matching the orientation of the paper's Table 1.
    """
    if task == CLASSIFICATION:
        return classification_accuracy(X, y, random_state=random_state)
    return regression_error(X, y, random_state=random_state)


def materialize_full_join(
    dataset: AugmentationDataset,
    soft_strategy: str = "two_way_nearest",
    time_resample: bool = True,
    max_categories: int = 12,
    random_state: int = 0,
) -> tuple[np.ndarray, np.ndarray, list[str], list[str]]:
    """Join every candidate table onto the base table and encode the result.

    Returns ``(X, y, feature_names, source_columns)``; this is the
    fully-materialised "uber table" the paper's "all features" baseline (and
    the micro benchmarks) operate on.
    """
    joined, _contributed = join_candidates(
        dataset.base_table,
        dataset.repository,
        dataset.candidates,
        soft_strategy=soft_strategy,
        time_resample=time_resample,
        rng=np.random.default_rng(random_state),
    )
    X, y, encoding = to_design_matrix(
        impute_table(joined, seed=random_state),
        dataset.target,
        max_categories=max_categories,
        seed=random_state,
    )
    return X, y, encoding.feature_names, encoding.source_columns


def evaluate_selector_on_matrix(
    method: str,
    X: np.ndarray,
    y: np.ndarray,
    task: str,
    dataset_name: str = "",
    random_state: int = 0,
    selector_options: dict | None = None,
) -> EvaluationRecord:
    """Run one selector on an encoded matrix and measure the resulting model quality."""
    selector_options = selector_options or {}
    start = time.perf_counter()
    if method == "all features":
        selected = np.arange(X.shape[1])
        selection_elapsed = 0.0
    else:
        selector = make_selector(method, random_state=random_state, **selector_options)
        result = selector.select(X, y, task=task)
        selected = result.selected
        selection_elapsed = result.elapsed
    if len(selected) == 0:
        selected = np.arange(min(2, X.shape[1]))
    score = holdout_score(X[:, selected], y, task, random_state=random_state)
    error = None
    if task != CLASSIFICATION:
        error = regression_error(X[:, selected], y, random_state=random_state)
    else:
        score = classification_accuracy(X[:, selected], y, random_state=random_state)
    total_elapsed = time.perf_counter() - start
    return EvaluationRecord(
        dataset=dataset_name,
        method=method,
        score=float(score),
        error=error,
        elapsed=selection_elapsed if selection_elapsed else total_elapsed,
        n_selected=int(len(selected)),
    )


def evaluate_selector_on_dataset(
    method: str,
    dataset: AugmentationDataset,
    random_state: int = 0,
    selector_options: dict | None = None,
    soft_strategy: str = "two_way_nearest",
) -> EvaluationRecord:
    """Materialise the full join of a dataset, then evaluate one selector on it."""
    X, y, _names, _sources = materialize_full_join(
        dataset, soft_strategy=soft_strategy, random_state=random_state
    )
    record = evaluate_selector_on_matrix(
        method,
        X,
        y,
        dataset.task,
        dataset_name=dataset.name,
        random_state=random_state,
        selector_options=selector_options,
    )
    return record


def evaluate_base_table(
    dataset: AugmentationDataset, random_state: int = 0
) -> EvaluationRecord:
    """Score a model trained on the base table only (the paper's baseline row)."""
    X, y, _encoding = to_design_matrix(
        impute_table(dataset.base_table, seed=random_state),
        dataset.target,
        seed=random_state,
    )
    if dataset.task == CLASSIFICATION:
        score = classification_accuracy(X, y, random_state=random_state)
        error = None
    else:
        score = holdout_score(X, y, dataset.task, random_state=random_state)
        error = regression_error(X, y, random_state=random_state)
    return EvaluationRecord(
        dataset=dataset.name,
        method="baseline",
        score=float(score),
        error=error,
        n_selected=X.shape[1],
    )


def evaluate_augmentation(
    dataset: AugmentationDataset,
    config: ARDAConfig | None = None,
) -> EvaluationRecord:
    """Run the full ARDA pipeline on a dataset and summarise it as a record."""
    arda = ARDA(config or ARDAConfig())
    report = arda.augment(dataset)
    return EvaluationRecord(
        dataset=dataset.name,
        method=f"ARDA({(config or ARDAConfig()).selector})",
        score=report.augmented_score,
        elapsed=report.total_time,
        n_selected=len(report.kept_columns),
        extra={
            "base_score": report.base_score,
            "improvement": report.improvement,
            "kept_tables": report.kept_tables,
            "stage_times": report.stage_breakdown(),
        },
    )
