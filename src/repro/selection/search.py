"""Subset-size search over a feature ranking.

The paper's "modified exponential search" (section 6.3, citing Bentley & Yao):
start with the top 2 features, keep doubling until the holdout score stops
improving, then binary-search between the last two sizes.  This trains the
model O(log d) times instead of the O(d) of a linear (forward-style) scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseEstimator
from repro.selection.base import holdout_score


@dataclass
class SearchTrace:
    """Record of every subset size evaluated during the search."""

    sizes: list[int] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)

    def record(self, size: int, score: float) -> None:
        """Append one evaluation."""
        self.sizes.append(size)
        self.scores.append(score)


def exponential_search(
    X: np.ndarray,
    y: np.ndarray,
    ranking: np.ndarray,
    task: str,
    estimator: BaseEstimator | None = None,
    random_state: int = 0,
    min_features: int = 2,
) -> tuple[np.ndarray, SearchTrace]:
    """Pick a prefix of ``ranking`` by doubling followed by binary search.

    Returns the selected feature indices (a prefix of the ranking) and the
    trace of evaluated sizes.  The ranking's prediction quality need not be
    monotone in the prefix length; the search simply keeps the best size it
    has seen, which matches the paper's observation that aggregate rankings
    are not monotone in prediction error.
    """
    X = np.asarray(X, dtype=np.float64)
    ranking = np.asarray(ranking, dtype=np.int64)
    d = len(ranking)
    if d == 0:
        return ranking, SearchTrace()
    trace = SearchTrace()

    def evaluate(size: int) -> float:
        subset = ranking[:size]
        score = holdout_score(
            X[:, subset], y, task, estimator=estimator, random_state=random_state
        )
        trace.record(size, score)
        return score

    size = min(max(min_features, 1), d)
    best_size = size
    best_score = evaluate(size)
    # doubling phase
    while size < d:
        next_size = min(size * 2, d)
        score = evaluate(next_size)
        if score < best_score:
            break
        if score >= best_score:
            best_score, best_size = score, next_size
        if next_size == d:
            size = next_size
            break
        size = next_size
    # binary search between the last improving size and the size that degraded
    low, high = best_size, min(best_size * 2, d)
    while high - low > 1:
        mid = (low + high) // 2
        score = evaluate(mid)
        if score >= best_score:
            best_score, best_size = score, mid
            low = mid
        else:
            high = mid
    return ranking[:best_size], trace


def linear_forward_scan(
    X: np.ndarray,
    y: np.ndarray,
    ranking: np.ndarray,
    task: str,
    estimator: BaseEstimator | None = None,
    random_state: int = 0,
    patience: int = 3,
    step: int = 1,
) -> tuple[np.ndarray, SearchTrace]:
    """Linear scan over prefix sizes (the expensive alternative to doubling).

    Stops after ``patience`` consecutive non-improving sizes.  Used to show the
    cost/benefit trade-off versus exponential search.
    """
    X = np.asarray(X, dtype=np.float64)
    ranking = np.asarray(ranking, dtype=np.int64)
    d = len(ranking)
    trace = SearchTrace()
    best_size, best_score = 0, -np.inf
    misses = 0
    for size in range(1, d + 1, step):
        subset = ranking[:size]
        score = holdout_score(
            X[:, subset], y, task, estimator=estimator, random_state=random_state
        )
        trace.record(size, score)
        if score > best_score:
            best_score, best_size = score, size
            misses = 0
        else:
            misses += 1
            if misses >= patience:
                break
    best_size = max(best_size, 1)
    return ranking[:best_size], trace
