"""Ranking aggregation for the RIFS ensemble (section 6.3).

The Random-Forest and Sparse-Regression rankings are combined into one
aggregate ranking parameterised by ``nu`` (RF weight ``nu``, SR weight
``1 - nu``).  Scores from each ranker are first converted to normalised ranks
so that the two scales are comparable before mixing.
"""

from __future__ import annotations

import numpy as np


def scores_to_normalised_ranks(scores: np.ndarray) -> np.ndarray:
    """Convert raw scores to [0, 1] where 1 means the best-scored feature.

    Ties share the average of their rank positions, so constant score vectors
    map to a constant 0.5.
    """
    scores = np.asarray(scores, dtype=np.float64)
    d = len(scores)
    if d == 0:
        return scores.copy()
    if d == 1:
        return np.ones(1)
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(d, dtype=np.float64)
    ranks[order] = np.arange(d, dtype=np.float64)
    # average tied ranks
    unique_scores = np.unique(scores)
    if len(unique_scores) < d:
        for value in unique_scores:
            mask = scores == value
            ranks[mask] = ranks[mask].mean()
    return ranks / (d - 1)


def aggregate_rankings(
    score_vectors: list[np.ndarray], weights: list[float] | None = None
) -> np.ndarray:
    """Weighted average of normalised-rank vectors (higher = better)."""
    if not score_vectors:
        raise ValueError("at least one score vector is required")
    d = len(score_vectors[0])
    for scores in score_vectors:
        if len(scores) != d:
            raise ValueError("score vectors have inconsistent lengths")
    if weights is None:
        weights = [1.0] * len(score_vectors)
    if len(weights) != len(score_vectors):
        raise ValueError("weights and score vectors have different lengths")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    combined = np.zeros(d, dtype=np.float64)
    for scores, weight in zip(score_vectors, weights):
        combined += weight * scores_to_normalised_ranks(scores)
    return combined / total_weight


def fraction_ahead_of_all_noise(
    aggregate_scores: np.ndarray, noise_mask: np.ndarray
) -> np.ndarray:
    """For each real feature, 1.0 if it out-ranks every injected noise feature.

    This is the per-experiment indicator that RIFS averages over its ``k``
    injection rounds (Algorithm 1, step 3).  Returns a vector over the real
    (non-noise) features only, in their original order.
    """
    aggregate_scores = np.asarray(aggregate_scores, dtype=np.float64)
    noise_mask = np.asarray(noise_mask, dtype=bool)
    if len(aggregate_scores) != len(noise_mask):
        raise ValueError("scores and noise mask have different lengths")
    noise_scores = aggregate_scores[noise_mask]
    real_scores = aggregate_scores[~noise_mask]
    if len(noise_scores) == 0:
        return np.ones(len(real_scores))
    best_noise = noise_scores.max()
    return (real_scores > best_noise).astype(np.float64)
