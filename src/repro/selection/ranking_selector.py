"""Selector that combines any ranker with the exponential subset-size search.

This is how the paper turns pure rankers (random forest, sparse regression,
mutual information, lasso, relief, linear SVC, logistic regression, F-test)
into selectors: rank all features, then pick a prefix with repeated doubling
plus binary search (section 7, "Methods such as ... return ranking that we use
to select features using repetitive doubling and binary search").
"""

from __future__ import annotations

import numpy as np

from repro.selection.base import (
    FeatureRanker,
    FeatureSelector,
    SelectionResult,
    infer_task,
)
from repro.selection.search import exponential_search


class RankingSelector(FeatureSelector):
    """Rank features with ``ranker`` and choose a prefix by exponential search."""

    def __init__(self, ranker: FeatureRanker, name: str | None = None, random_state: int = 0):
        self.ranker = ranker
        self.name = name or ranker.name
        self.random_state = random_state

    def select(self, X, y, task=None, estimator=None) -> SelectionResult:
        """Run the ranker then the exponential search over prefix sizes."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        task = task or infer_task(y)

        def run() -> SelectionResult:
            scores = self.ranker.score_features(X, y, task)
            ranking = np.argsort(-scores, kind="stable")
            selected, trace = exponential_search(
                X, y, ranking, task, estimator=estimator, random_state=self.random_state
            )
            return SelectionResult(
                selected=np.sort(selected),
                scores=scores,
                details={"search_sizes": trace.sizes, "search_scores": trace.scores},
            )

        return self._timed(run)
