"""Random feature injection (Algorithm 2 of the paper).

RIFS compares real features against injected random ones.  Two families of
injected noise are supported:

* **Standard distributions** — i.i.d. Gaussian, Bernoulli, uniform or Poisson
  columns with randomly initialised parameters; enough when most input
  features carry signal.
* **Moment-matched Gaussian** — fit ``N(mu, Sigma)`` to the empirical mean and
  covariance of the *feature vectors* (columns of the data matrix) and draw
  i.i.d. samples from it, so the injected noise "looks like" the input.  This
  is the aggressive strategy for the hard regime where only a small fraction
  of features carry signal (Algorithm 2).
"""

from __future__ import annotations

import numpy as np

STANDARD_DISTRIBUTIONS = ("normal", "uniform", "bernoulli", "poisson")


def inject_standard_noise(
    n_rows: int,
    n_features: int,
    rng: np.random.Generator,
    distributions: tuple[str, ...] = STANDARD_DISTRIBUTIONS,
) -> np.ndarray:
    """Draw noise columns from standard distributions with random parameters."""
    columns = []
    for _ in range(n_features):
        kind = distributions[int(rng.integers(0, len(distributions)))]
        if kind == "normal":
            column = rng.normal(loc=rng.normal(), scale=abs(rng.normal()) + 0.5, size=n_rows)
        elif kind == "uniform":
            low = rng.normal()
            width = abs(rng.normal()) + 0.5
            column = rng.uniform(low, low + width, size=n_rows)
        elif kind == "bernoulli":
            column = (rng.random(n_rows) < rng.uniform(0.2, 0.8)).astype(np.float64)
        elif kind == "poisson":
            column = rng.poisson(lam=rng.uniform(0.5, 5.0), size=n_rows).astype(np.float64)
        else:
            raise ValueError(f"unknown noise distribution {kind!r}")
        columns.append(column)
    if not columns:
        return np.empty((n_rows, 0), dtype=np.float64)
    return np.column_stack(columns)


def feature_moments(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical mean and covariance of the feature vectors (columns of X).

    This follows Algorithm 2 literally: the "observations" are the d feature
    vectors in R^n, so ``mu`` is a typical feature vector and ``Sigma`` (n x n)
    captures correlations between its coordinates (rows of the dataset).
    """
    X = np.asarray(X, dtype=np.float64)
    n, d = X.shape
    if d == 0:
        return np.zeros(n), np.eye(n)
    mu = X.mean(axis=1)
    centered = X - mu[:, None]
    sigma = (centered @ centered.T) / d
    return mu, sigma


def inject_moment_matched_noise(
    X: np.ndarray,
    n_features: int,
    rng: np.random.Generator,
    ridge: float = 1e-6,
) -> np.ndarray:
    """Draw noise feature vectors i.i.d. from N(mu, Sigma) fitted to the input.

    A small ridge is added to Sigma's diagonal so its Cholesky factor exists
    even when d < n (which is the typical augmentation regime).
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if n_features == 0:
        return np.empty((n, 0), dtype=np.float64)
    mu, sigma = feature_moments(X)
    sigma = sigma + ridge * np.eye(n) * max(1.0, np.trace(sigma) / max(n, 1))
    try:
        factor = np.linalg.cholesky(sigma)
    except np.linalg.LinAlgError:
        # fall back to an eigenvalue square root for degenerate covariances
        eigenvalues, eigenvectors = np.linalg.eigh(sigma)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        factor = eigenvectors * np.sqrt(eigenvalues)
    draws = rng.normal(size=(n, n_features))
    return mu[:, None] + factor @ draws


def inject_noise_features(
    X: np.ndarray,
    fraction: float = 0.2,
    strategy: str = "moment_matched",
    rng: np.random.Generator | None = None,
    min_features: int = 3,
) -> tuple[np.ndarray, np.ndarray]:
    """Append ``fraction * d`` random feature columns to ``X``.

    Returns ``(augmented_matrix, noise_mask)`` where ``noise_mask`` marks the
    injected columns.  ``strategy`` is ``"moment_matched"`` (Algorithm 2) or
    ``"standard"``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    X = np.asarray(X, dtype=np.float64)
    n, d = X.shape
    count = max(min_features, int(np.ceil(fraction * d)))
    if strategy == "moment_matched":
        noise = inject_moment_matched_noise(X, count, rng)
    elif strategy == "standard":
        noise = inject_standard_noise(n, count, rng)
    else:
        raise ValueError(f"unknown injection strategy {strategy!r}")
    augmented = np.column_stack([X, noise]) if count else X.copy()
    mask = np.zeros(d + count, dtype=bool)
    mask[d:] = True
    return augmented, mask
