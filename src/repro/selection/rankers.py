"""Model-based (embedded) feature rankers.

Each ranker fits a model and converts a fitted quantity — impurity importances,
row norms, absolute coefficients — into one usefulness score per feature.
These are both stand-alone baselines (Table 1 / Table 6) and the building
blocks of the RIFS ranking ensemble.
"""

from __future__ import annotations

import numpy as np

from repro.ml.binning import resolve_tree_method
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import Lasso
from repro.ml.logistic import LogisticRegression
from repro.ml.sparse_regression import SparseRegression, one_hot_labels
from repro.ml.svm import LinearSVC
from repro.selection.base import CLASSIFICATION, FeatureRanker


class RandomForestRanker(FeatureRanker):
    """Impurity-decrease importances from a random forest.

    With the (default) histogram kernel the ranker advertises
    ``uses_binned_matrix`` and accepts a prebuilt shared
    :class:`~repro.ml.binning.BinnedMatrix` as ``X``, which is how RIFS bins
    the real features once and reuses them across every injection round.
    """

    name = "random forest"

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 10,
        random_state: int = 0,
        tree_method: str | None = None,
        max_bins: int = 255,
        n_jobs: int | None = 1,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.n_jobs = n_jobs

    @property
    def uses_binned_matrix(self) -> bool:
        """Whether this ranker computes on uint8 bin codes (histogram kernel)."""
        return resolve_tree_method(self.tree_method) == "hist"

    def score_features(self, X, y, task) -> np.ndarray:
        """Normalised impurity-decrease importance per feature."""
        if task == CLASSIFICATION:
            model = RandomForestClassifier(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                random_state=self.random_state,
                tree_method=self.tree_method,
                max_bins=self.max_bins,
                n_jobs=self.n_jobs,
            )
        else:
            model = RandomForestRegressor(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                random_state=self.random_state,
                tree_method=self.tree_method,
                max_bins=self.max_bins,
                n_jobs=self.n_jobs,
            )
        model.fit(X, y)
        return model.feature_importances_.copy()


class SparseRegressionRanker(FeatureRanker):
    """Row norms of the joint L2,1-norm sparse-regression solution."""

    name = "sparse regression"

    def __init__(self, gamma: float = 1.0, max_iter: int = 30):
        self.gamma = gamma
        self.max_iter = max_iter

    def score_features(self, X, y, task) -> np.ndarray:
        """||W_j||_2 per feature from the fitted weight matrix."""
        model = SparseRegression(gamma=self.gamma, max_iter=self.max_iter)
        target = one_hot_labels(y) if task == CLASSIFICATION else np.asarray(y, dtype=np.float64)
        model.fit(X, target)
        return model.feature_scores_.copy()


class LassoRanker(FeatureRanker):
    """Absolute lasso coefficients (regression targets only in the paper)."""

    name = "lasso"

    def __init__(self, alpha: float = 0.01, max_iter: int = 200):
        self.alpha = alpha
        self.max_iter = max_iter

    def score_features(self, X, y, task) -> np.ndarray:
        """|coefficient| per feature."""
        model = Lasso(alpha=self.alpha, max_iter=self.max_iter)
        model.fit(X, np.asarray(y, dtype=np.float64))
        return np.abs(model.coef_)


class LogisticRegressionRanker(FeatureRanker):
    """Per-feature maximum absolute logistic-regression coefficient."""

    name = "logistic reg"

    def __init__(self, C: float = 1.0, max_iter: int = 150):
        self.C = C
        self.max_iter = max_iter

    def score_features(self, X, y, task) -> np.ndarray:
        """max_c |coef_{c,j}| per feature (classification only)."""
        if task != CLASSIFICATION:
            raise ValueError("logistic regression ranking requires a classification task")
        model = LogisticRegression(C=self.C, max_iter=self.max_iter)
        model.fit(X, y)
        return np.max(np.abs(model.coef_), axis=0)


class LinearSVCRanker(FeatureRanker):
    """Per-feature maximum absolute linear-SVM coefficient."""

    name = "linear svc"

    def __init__(self, C: float = 1.0, max_iter: int = 150):
        self.C = C
        self.max_iter = max_iter

    def score_features(self, X, y, task) -> np.ndarray:
        """max_c |coef_{c,j}| per feature (classification only)."""
        if task != CLASSIFICATION:
            raise ValueError("linear SVC ranking requires a classification task")
        model = LinearSVC(C=self.C, max_iter=self.max_iter)
        model.fit(X, y)
        return np.max(np.abs(model.coef_), axis=0)
