"""Filter-style statistical feature scores: F-test, mutual information, chi-squared, Pearson.

These are the "filter model" selectors the paper compares against (section 5):
they look only at marginal feature/target statistics, which makes them fast but
blind to interactions and vulnerable to spuriously correlated noise.
"""

from __future__ import annotations

import numpy as np

from repro.selection.base import CLASSIFICATION, FeatureRanker


def pearson_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Absolute Pearson correlation of each feature with the target."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    Xc = X - X.mean(axis=0)
    yc = y - y.mean()
    x_std = Xc.std(axis=0)
    y_std = yc.std()
    denom = x_std * y_std
    with np.errstate(invalid="ignore", divide="ignore"):
        correlations = (Xc * yc[:, None]).mean(axis=0) / denom
    correlations[~np.isfinite(correlations)] = 0.0
    return np.abs(correlations)


def f_regression_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Univariate F statistic of regressing the target on each feature."""
    n = X.shape[0]
    correlations = pearson_scores(X, y)
    correlations = np.clip(correlations, 0.0, 1.0 - 1e-12)
    dof = max(n - 2, 1)
    return correlations**2 / (1.0 - correlations**2) * dof


def f_classification_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """One-way ANOVA F statistic of each feature grouped by class."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    classes = np.unique(y)
    n, d = X.shape
    if len(classes) < 2:
        return np.zeros(d)
    overall_mean = X.mean(axis=0)
    between = np.zeros(d)
    within = np.zeros(d)
    for cls in classes:
        members = X[y == cls]
        size = members.shape[0]
        if size == 0:
            continue
        class_mean = members.mean(axis=0)
        between += size * (class_mean - overall_mean) ** 2
        within += ((members - class_mean) ** 2).sum(axis=0)
    df_between = len(classes) - 1
    df_within = max(n - len(classes), 1)
    with np.errstate(invalid="ignore", divide="ignore"):
        f = (between / df_between) / (within / df_within)
    f[~np.isfinite(f)] = 0.0
    return f


def f_test_scores(X: np.ndarray, y: np.ndarray, task: str) -> np.ndarray:
    """Task-appropriate F statistic per feature."""
    if task == CLASSIFICATION:
        return f_classification_scores(X, y)
    return f_regression_scores(X, y)


def chi2_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Chi-squared statistic between non-negative features and class labels.

    Features are shifted to be non-negative (the statistic expects counts or
    frequencies); the target must be categorical.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    X = X - X.min(axis=0)
    classes = np.unique(y)
    observed = np.vstack([X[y == cls].sum(axis=0) for cls in classes])
    feature_totals = observed.sum(axis=0)
    class_totals = observed.sum(axis=1)
    grand_total = feature_totals.sum()
    if grand_total == 0:
        return np.zeros(X.shape[1])
    expected = np.outer(class_totals, feature_totals) / grand_total
    with np.errstate(invalid="ignore", divide="ignore"):
        chi2 = ((observed - expected) ** 2 / expected).sum(axis=0)
    chi2[~np.isfinite(chi2)] = 0.0
    return chi2


def _discretize(values: np.ndarray, bins: int) -> np.ndarray:
    """Equal-frequency discretisation of a continuous vector into integer codes."""
    quantiles = np.quantile(values, np.linspace(0, 1, bins + 1)[1:-1])
    return np.searchsorted(quantiles, values, side="right")


def mutual_information_scores(
    X: np.ndarray, y: np.ndarray, task: str, bins: int = 10
) -> np.ndarray:
    """Histogram-based mutual information between each feature and the target.

    Continuous features (and regression targets) are discretised into
    equal-frequency bins; the MI estimate is the plug-in estimate on the joint
    histogram.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if task == CLASSIFICATION:
        y_codes = y.astype(np.int64)
    else:
        y_codes = _discretize(y, bins)
    n, d = X.shape
    scores = np.zeros(d)
    y_values, y_counts = np.unique(y_codes, return_counts=True)
    p_y = y_counts / n
    for j in range(d):
        column = X[:, j]
        distinct = np.unique(column)
        if len(distinct) <= bins:
            x_codes = np.searchsorted(distinct, column)
        else:
            x_codes = _discretize(column, bins)
        x_values, x_counts = np.unique(x_codes, return_counts=True)
        p_x = x_counts / n
        mi = 0.0
        for xi, px in zip(x_values, p_x):
            mask = x_codes == xi
            for yi, py in zip(y_values, p_y):
                joint = np.sum(mask & (y_codes == yi)) / n
                if joint > 0:
                    mi += joint * np.log(joint / (px * py))
        scores[j] = max(mi, 0.0)
    return scores


class FTestRanker(FeatureRanker):
    """Ranker based on the task-appropriate F statistic."""

    name = "f-test"

    def score_features(self, X, y, task) -> np.ndarray:
        """F statistic per feature (higher is better)."""
        return f_test_scores(np.asarray(X, dtype=np.float64), y, task)


class MutualInformationRanker(FeatureRanker):
    """Ranker based on histogram mutual information."""

    name = "mutual info"

    def __init__(self, bins: int = 10):
        self.bins = bins

    def score_features(self, X, y, task) -> np.ndarray:
        """Mutual information per feature (higher is better)."""
        return mutual_information_scores(X, y, task, bins=self.bins)


class PearsonRanker(FeatureRanker):
    """Ranker based on absolute Pearson correlation with the target."""

    name = "pearson"

    def score_features(self, X, y, task) -> np.ndarray:
        """Absolute correlation per feature."""
        return pearson_scores(np.asarray(X, dtype=np.float64), y)


class Chi2Ranker(FeatureRanker):
    """Ranker based on the chi-squared statistic (classification only)."""

    name = "chi2"

    def score_features(self, X, y, task) -> np.ndarray:
        """Chi-squared statistic per feature."""
        if task != CLASSIFICATION:
            raise ValueError("chi-squared scores require a classification task")
        return chi2_scores(X, y)
