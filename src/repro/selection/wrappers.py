"""Wrapper-style feature selectors: forward selection, backward elimination, RFE.

Wrapper methods repeatedly retrain the learning model to evaluate candidate
subsets, which makes them accurate but expensive — in the paper they are the
slowest selectors by one to two orders of magnitude (Table 1).  Forward and
backward selection greedily add/remove single features; recursive feature
elimination (RFE) drops the lowest-ranked fraction of features per round using
a Random-Forest ranking, then picks the best prefix with exponential search.
"""

from __future__ import annotations

import numpy as np

from repro.selection.base import (
    FeatureSelector,
    SelectionResult,
    holdout_score,
    infer_task,
)
from repro.selection.rankers import RandomForestRanker
from repro.selection.search import exponential_search


class ForwardSelection(FeatureSelector):
    """Greedy forward selection evaluated with a holdout score."""

    name = "forward selection"

    def __init__(
        self,
        max_features: int | None = None,
        patience: int = 2,
        candidate_pool: int | None = 40,
        random_state: int = 0,
    ):
        self.max_features = max_features
        self.patience = patience
        self.candidate_pool = candidate_pool
        self.random_state = random_state

    def select(self, X, y, task=None, estimator=None) -> SelectionResult:
        """Add the single best feature per round until the score stops improving."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        task = task or infer_task(y)

        def run() -> SelectionResult:
            d = X.shape[1]
            limit = self.max_features or d
            # pre-rank to bound the per-round candidate pool on wide matrices
            if self.candidate_pool is not None and d > self.candidate_pool:
                ranker = RandomForestRanker(random_state=self.random_state)
                order = ranker.rank(X, y, task)[: self.candidate_pool]
                pool = list(order)
            else:
                pool = list(range(d))
            selected: list[int] = []
            best_score = -np.inf
            misses = 0
            while pool and len(selected) < limit:
                round_best, round_feature = -np.inf, None
                for feature in pool:
                    candidate = selected + [feature]
                    score = holdout_score(
                        X[:, candidate], y, task, estimator=estimator,
                        random_state=self.random_state,
                    )
                    if score > round_best:
                        round_best, round_feature = score, feature
                if round_feature is None:
                    break
                if round_best > best_score:
                    best_score = round_best
                    selected.append(round_feature)
                    pool.remove(round_feature)
                    misses = 0
                else:
                    misses += 1
                    selected.append(round_feature)
                    pool.remove(round_feature)
                    if misses >= self.patience:
                        selected = selected[: len(selected) - misses]
                        break
            if not selected:
                selected = pool[:1] if pool else [0]
            return SelectionResult(selected=np.array(selected, dtype=np.int64))

        return self._timed(run)


class BackwardElimination(FeatureSelector):
    """Greedy backward elimination evaluated with a holdout score."""

    name = "backward selection"

    def __init__(
        self,
        min_features: int = 1,
        patience: int = 2,
        max_rounds: int | None = 60,
        random_state: int = 0,
    ):
        self.min_features = min_features
        self.patience = patience
        self.max_rounds = max_rounds
        self.random_state = random_state

    def select(self, X, y, task=None, estimator=None) -> SelectionResult:
        """Drop the single least useful feature per round while the score holds up."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        task = task or infer_task(y)

        def run() -> SelectionResult:
            remaining = list(range(X.shape[1]))
            best_score = holdout_score(
                X, y, task, estimator=estimator, random_state=self.random_state
            )
            best_subset = list(remaining)
            misses = 0
            rounds = 0
            while len(remaining) > self.min_features:
                if self.max_rounds is not None and rounds >= self.max_rounds:
                    break
                rounds += 1
                round_best, drop_feature = -np.inf, None
                for feature in remaining:
                    candidate = [f for f in remaining if f != feature]
                    score = holdout_score(
                        X[:, candidate], y, task, estimator=estimator,
                        random_state=self.random_state,
                    )
                    if score > round_best:
                        round_best, drop_feature = score, feature
                if drop_feature is None:
                    break
                remaining.remove(drop_feature)
                if round_best >= best_score:
                    best_score = round_best
                    best_subset = list(remaining)
                    misses = 0
                else:
                    misses += 1
                    if misses >= self.patience:
                        break
            return SelectionResult(selected=np.array(best_subset, dtype=np.int64))

        return self._timed(run)


class RecursiveFeatureElimination(FeatureSelector):
    """RFE: repeatedly drop the lowest-ranked fraction of features.

    Uses the Random-Forest ranker (the paper's choice of ranker for RFE) and
    finishes with an exponential search over the final ranking.
    """

    name = "rfe"

    def __init__(self, drop_fraction: float = 0.5, min_features: int = 2, random_state: int = 0):
        if not 0 < drop_fraction < 1:
            raise ValueError("drop_fraction must be in (0, 1)")
        self.drop_fraction = drop_fraction
        self.min_features = min_features
        self.random_state = random_state

    def select(self, X, y, task=None, estimator=None) -> SelectionResult:
        """Iteratively re-rank the surviving features and drop the tail."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        task = task or infer_task(y)

        def run() -> SelectionResult:
            ranker = RandomForestRanker(random_state=self.random_state)
            surviving = np.arange(X.shape[1])
            elimination_order: list[int] = []
            while len(surviving) > self.min_features:
                ranking = ranker.rank(X[:, surviving], y, task)
                keep_count = max(
                    self.min_features,
                    int(np.ceil(len(surviving) * (1.0 - self.drop_fraction))),
                )
                if keep_count >= len(surviving):
                    break
                dropped = surviving[ranking[keep_count:]]
                elimination_order.extend(reversed(list(dropped)))
                surviving = surviving[np.sort(ranking[:keep_count])]
            final_ranking = ranker.rank(X[:, surviving], y, task)
            ordered = list(surviving[final_ranking]) + list(reversed(elimination_order))
            selected, trace = exponential_search(
                X, y, np.array(ordered, dtype=np.int64), task,
                estimator=estimator, random_state=self.random_state,
            )
            return SelectionResult(
                selected=np.sort(selected),
                details={"search_sizes": trace.sizes, "search_scores": trace.scores},
            )

        return self._timed(run)
