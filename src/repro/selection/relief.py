"""Relief-family feature weighting.

Relief scores a feature by contrasting its value differences between each
sampled instance and its nearest *hit* (same class) versus its nearest *miss*
(different class).  The classification variant implemented here is ReliefF
(k nearest hits/misses, miss contributions weighted by class priors); the
regression variant is a simplified RReliefF that weights neighbour
contributions by target difference.  The paper uses Relief as one of its
embedded baselines and highlights its sensitivity to noisy features.
"""

from __future__ import annotations

import numpy as np

from repro.ml.knn import pairwise_sq_distances
from repro.selection.base import CLASSIFICATION, FeatureRanker


def _normalise(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Scale features to [0, 1] and return the scaled matrix and ranges."""
    mins = X.min(axis=0)
    ranges = X.max(axis=0) - mins
    ranges[ranges == 0.0] = 1.0
    return (X - mins) / ranges, ranges


def relieff_classification(
    X: np.ndarray,
    y: np.ndarray,
    n_neighbors: int = 5,
    sample_size: int | None = 200,
    random_state: int = 0,
) -> np.ndarray:
    """ReliefF weights for a classification target."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    n, d = X.shape
    X_scaled, _ = _normalise(X)
    rng = np.random.default_rng(random_state)
    if sample_size is None or sample_size >= n:
        sampled = np.arange(n)
    else:
        sampled = rng.choice(n, size=sample_size, replace=False)

    classes, counts = np.unique(y, return_counts=True)
    priors = {cls: count / n for cls, count in zip(classes, counts)}
    distances = pairwise_sq_distances(X_scaled[sampled], X_scaled)
    weights = np.zeros(d)
    for row, i in enumerate(sampled):
        order = np.argsort(distances[row])
        order = order[order != i]
        same = order[y[order] == y[i]][:n_neighbors]
        if len(same):
            weights -= np.abs(X_scaled[same] - X_scaled[i]).mean(axis=0)
        miss_total = 1.0 - priors[y[i]]
        for cls in classes:
            if cls == y[i] or miss_total <= 0:
                continue
            others = order[y[order] == cls][:n_neighbors]
            if len(others):
                weight = priors[cls] / miss_total
                weights += weight * np.abs(X_scaled[others] - X_scaled[i]).mean(axis=0)
    return weights / max(len(sampled), 1)


def rrelieff_regression(
    X: np.ndarray,
    y: np.ndarray,
    n_neighbors: int = 5,
    sample_size: int | None = 200,
    random_state: int = 0,
) -> np.ndarray:
    """Simplified RReliefF weights for a regression target.

    Neighbour contributions are weighted by the normalised absolute target
    difference: features that vary together with the target across nearby
    pairs gain weight, features that vary regardless of the target lose it.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    n, d = X.shape
    X_scaled, _ = _normalise(X)
    y_range = y.max() - y.min()
    y_scaled = (y - y.min()) / y_range if y_range > 0 else np.zeros_like(y)
    rng = np.random.default_rng(random_state)
    if sample_size is None or sample_size >= n:
        sampled = np.arange(n)
    else:
        sampled = rng.choice(n, size=sample_size, replace=False)
    distances = pairwise_sq_distances(X_scaled[sampled], X_scaled)
    n_dc = 0.0
    n_df = np.zeros(d)
    n_dc_df = np.zeros(d)
    for row, i in enumerate(sampled):
        order = np.argsort(distances[row])
        order = order[order != i][:n_neighbors]
        if len(order) == 0:
            continue
        target_diff = np.abs(y_scaled[order] - y_scaled[i])
        feature_diff = np.abs(X_scaled[order] - X_scaled[i])
        n_dc += target_diff.mean()
        n_df += feature_diff.mean(axis=0)
        n_dc_df += (target_diff[:, None] * feature_diff).mean(axis=0)
    m = max(len(sampled), 1)
    n_dc /= m
    n_df /= m
    n_dc_df /= m
    weights = np.zeros(d)
    if n_dc > 0:
        weights = n_dc_df / n_dc
    denominator = m - n_dc if (m - n_dc) != 0 else 1.0
    weights -= (n_df - n_dc_df) / denominator
    return weights


class ReliefRanker(FeatureRanker):
    """Relief-family ranker (ReliefF for classification, RReliefF for regression)."""

    name = "relief"

    def __init__(
        self,
        n_neighbors: int = 5,
        sample_size: int | None = 200,
        random_state: int = 0,
    ):
        self.n_neighbors = n_neighbors
        self.sample_size = sample_size
        self.random_state = random_state

    def score_features(self, X, y, task) -> np.ndarray:
        """Relief weights per feature (higher is better)."""
        if task == CLASSIFICATION:
            return relieff_classification(
                X,
                y,
                n_neighbors=self.n_neighbors,
                sample_size=self.sample_size,
                random_state=self.random_state,
            )
        return rrelieff_regression(
            X,
            y,
            n_neighbors=self.n_neighbors,
            sample_size=self.sample_size,
            random_state=self.random_state,
        )
