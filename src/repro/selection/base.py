"""Common interfaces for feature rankers and feature selectors.

Two abstractions are used throughout:

* A **ranker** scores every feature (higher = more useful) without committing
  to a subset; rankers are what RIFS combines into its ensemble.
* A **selector** returns a concrete subset of feature indices, typically by
  running a search procedure (exponential search, forward selection, RIFS'
  threshold wrapper) over a ranking and a holdout score.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import accuracy_score, r2_score
from repro.ml.model_selection import train_test_split

CLASSIFICATION = "classification"
REGRESSION = "regression"


def infer_task(y: np.ndarray, max_classes: int = 20) -> str:
    """Guess whether a target is a classification or a regression target.

    A target is treated as classification when it has few distinct values and
    all of them are (close to) integers.  A target with no observed (non-NaN)
    values cannot be classified either way and raises ``ValueError`` — it used
    to fall through as "classification" because an empty distinct set passes
    both checks vacuously.
    """
    y = np.asarray(y, dtype=np.float64).ravel()
    distinct = np.unique(y[~np.isnan(y)])
    if len(distinct) == 0:
        raise ValueError("cannot infer task: target has no non-missing values")
    if len(distinct) <= max_classes and np.allclose(distinct, np.round(distinct)):
        return CLASSIFICATION
    return REGRESSION


def default_estimator(
    task: str,
    random_state: int = 0,
    n_estimators: int = 20,
    tree_method: str | None = None,
    max_bins: int = 255,
    n_jobs: int | None = 1,
) -> BaseEstimator:
    """The lightly auto-optimised Random Forest the paper uses as its estimator.

    ``tree_method`` / ``max_bins`` / ``n_jobs`` configure the forest's split
    kernel and tree-level parallelism (see :mod:`repro.ml.binning`).
    """
    if task == CLASSIFICATION:
        return RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=10,
            random_state=random_state,
            tree_method=tree_method,
            max_bins=max_bins,
            n_jobs=n_jobs,
        )
    return RandomForestRegressor(
        n_estimators=n_estimators,
        max_depth=10,
        random_state=random_state,
        tree_method=tree_method,
        max_bins=max_bins,
        n_jobs=n_jobs,
    )


def holdout_score(
    X: np.ndarray,
    y: np.ndarray,
    task: str,
    estimator: BaseEstimator | None = None,
    test_size: float = 0.25,
    random_state: int = 0,
    stratify: bool | None = None,
) -> float:
    """Train on a split and score on the holdout (higher is better).

    Classification uses accuracy; regression uses R^2 so that both tasks share
    a "higher is better" orientation, which the search procedures rely on.
    ``stratify=None`` stratifies the split by ``y`` exactly for classification
    tasks (so a tiny coreset cannot draw a single-class holdout); pass ``True``
    or ``False`` to force either behaviour.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.shape[1] == 0:
        return -np.inf
    estimator = estimator if estimator is not None else default_estimator(task)
    if stratify is None:
        stratify = task == CLASSIFICATION
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=test_size, random_state=random_state,
        stratify=y if stratify else None,
    )
    model = clone(estimator)
    model.fit(X_train, y_train)
    predictions = model.predict(X_test)
    if task == CLASSIFICATION:
        return accuracy_score(y_test, predictions)
    return r2_score(y_test, predictions)


@dataclass
class FeatureProvenance:
    """Where one selected (kept) augmentation column came from.

    Recorded by the pipeline for every foreign column feature selection kept:
    ``column`` is the name the column carries in the augmented table (and in
    the serving artifact), ``table`` the repository table that contributed
    it, ``position`` its index within the columns that table's join added
    (stable across renames — collision suffixes can change a column's name
    between the selection batch and final materialisation, positions cannot),
    and ``batch_index`` the join-plan batch whose selection round kept it.
    """

    column: str
    table: str
    position: int
    batch_index: int

    def to_doc(self) -> dict:
        """Plain-JSON form stored in serving artifacts."""
        return {
            "column": self.column,
            "table": self.table,
            "position": self.position,
            "batch_index": self.batch_index,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FeatureProvenance":
        """Inverse of :meth:`to_doc`."""
        return cls(
            column=doc["column"],
            table=doc["table"],
            position=int(doc["position"]),
            batch_index=int(doc["batch_index"]),
        )


@dataclass
class SelectionResult:
    """Outcome of running a feature selector."""

    selected: np.ndarray
    scores: np.ndarray | None = None
    elapsed: float = 0.0
    method: str = ""
    details: dict = field(default_factory=dict)

    @property
    def num_selected(self) -> int:
        """Number of selected features."""
        return len(self.selected)

    def selected_names(self, feature_names: Sequence[str]) -> list[str]:
        """Map selected indices back to feature names."""
        return [feature_names[i] for i in self.selected]


class FeatureRanker:
    """Base class for feature rankers: ``score_features`` returns one score per feature."""

    name = "ranker"

    def score_features(self, X: np.ndarray, y: np.ndarray, task: str) -> np.ndarray:
        """Per-feature usefulness scores; higher means more useful."""
        raise NotImplementedError

    def rank(self, X: np.ndarray, y: np.ndarray, task: str) -> np.ndarray:
        """Feature indices ordered from most to least useful."""
        scores = self.score_features(X, y, task)
        return np.argsort(-scores, kind="stable")


class FeatureSelector:
    """Base class for feature selectors: ``select`` returns a SelectionResult."""

    name = "selector"

    def select(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str | None = None,
        estimator: BaseEstimator | None = None,
    ) -> SelectionResult:
        """Choose a subset of feature indices for the given supervised task."""
        raise NotImplementedError

    def _timed(self, fn: Callable[[], SelectionResult]) -> SelectionResult:
        """Run ``fn`` and stamp the elapsed wall time and method name."""
        start = time.perf_counter()
        result = fn()
        result.elapsed = time.perf_counter() - start
        result.method = self.name
        return result


class AllFeaturesSelector(FeatureSelector):
    """Baseline selector that keeps every feature (the paper's "all features")."""

    name = "all features"

    def select(self, X, y, task=None, estimator=None) -> SelectionResult:
        """Return every feature index."""
        X = np.asarray(X)
        return self._timed(
            lambda: SelectionResult(selected=np.arange(X.shape[1]), scores=None)
        )
