"""Feature selection: RIFS and all the baselines the paper compares against.

The :func:`make_selector` / :func:`available_selectors` registry maps the
method names used in the paper's tables and figures ("RIFS", "random forest",
"f-test", "forward selection", ...) to configured selector objects, so the
benchmark harness can sweep them uniformly.
"""

from __future__ import annotations

from repro.selection.aggregate import (
    aggregate_rankings,
    fraction_ahead_of_all_noise,
    scores_to_normalised_ranks,
)
from repro.selection.base import (
    CLASSIFICATION,
    REGRESSION,
    AllFeaturesSelector,
    FeatureProvenance,
    FeatureRanker,
    FeatureSelector,
    SelectionResult,
    default_estimator,
    holdout_score,
    infer_task,
)
from repro.selection.injection import (
    inject_moment_matched_noise,
    inject_noise_features,
    inject_standard_noise,
)
from repro.selection.rankers import (
    LassoRanker,
    LinearSVCRanker,
    LogisticRegressionRanker,
    RandomForestRanker,
    SparseRegressionRanker,
)
from repro.selection.ranking_selector import RankingSelector
from repro.selection.relief import ReliefRanker
from repro.selection.rifs import RIFS, NoiseInjectionRankingSelector
from repro.selection.search import exponential_search, linear_forward_scan
from repro.selection.statistical import (
    Chi2Ranker,
    FTestRanker,
    MutualInformationRanker,
    PearsonRanker,
)
from repro.selection.tuple_ratio import TupleRatioFilter, tuple_ratio
from repro.selection.wrappers import (
    BackwardElimination,
    ForwardSelection,
    RecursiveFeatureElimination,
)

__all__ = [
    "CLASSIFICATION",
    "REGRESSION",
    "AllFeaturesSelector",
    "FeatureProvenance",
    "FeatureRanker",
    "FeatureSelector",
    "SelectionResult",
    "default_estimator",
    "holdout_score",
    "infer_task",
    "RIFS",
    "NoiseInjectionRankingSelector",
    "RankingSelector",
    "RandomForestRanker",
    "SparseRegressionRanker",
    "LassoRanker",
    "LogisticRegressionRanker",
    "LinearSVCRanker",
    "ReliefRanker",
    "FTestRanker",
    "MutualInformationRanker",
    "PearsonRanker",
    "Chi2Ranker",
    "ForwardSelection",
    "BackwardElimination",
    "RecursiveFeatureElimination",
    "TupleRatioFilter",
    "tuple_ratio",
    "exponential_search",
    "linear_forward_scan",
    "aggregate_rankings",
    "fraction_ahead_of_all_noise",
    "scores_to_normalised_ranks",
    "inject_noise_features",
    "inject_standard_noise",
    "inject_moment_matched_noise",
    "make_selector",
    "available_selectors",
]

# names match the method labels in the paper's tables and figures
_CLASSIFICATION_ONLY = {"linear svc", "logistic reg"}
_REGRESSION_ONLY = {"lasso"}


def available_selectors(task: str, include_wrappers: bool = True) -> list[str]:
    """Names of selectors applicable to the given task (paper-table labels)."""
    names = [
        "RIFS",
        "random forest",
        "sparse regression",
        "f-test",
        "mutual info",
        "relief",
        "lasso",
        "linear svc",
        "logistic reg",
        "all features",
    ]
    if include_wrappers:
        names.extend(["forward selection", "backward selection", "rfe"])
    if task == CLASSIFICATION:
        names = [n for n in names if n not in _REGRESSION_ONLY]
    else:
        names = [n for n in names if n not in _CLASSIFICATION_ONLY]
    return names


def make_selector(name: str, random_state: int = 0, **overrides) -> FeatureSelector:
    """Build a configured selector from its paper-table label.

    ``overrides`` are forwarded to the selector constructor (e.g.
    ``n_rounds=5`` for RIFS).
    """
    key = name.strip().lower()
    if key == "rifs":
        return RIFS(random_state=random_state, **overrides)
    if key == "all features":
        return AllFeaturesSelector()
    if key == "forward selection":
        return ForwardSelection(random_state=random_state, **overrides)
    if key in ("backward selection", "backward elimination"):
        return BackwardElimination(random_state=random_state, **overrides)
    if key == "rfe":
        return RecursiveFeatureElimination(random_state=random_state, **overrides)
    ranker_factories = {
        "random forest": lambda: RandomForestRanker(random_state=random_state),
        "sparse regression": SparseRegressionRanker,
        "f-test": FTestRanker,
        "mutual info": MutualInformationRanker,
        "relief": lambda: ReliefRanker(random_state=random_state),
        "lasso": LassoRanker,
        "linear svc": LinearSVCRanker,
        "logistic reg": LogisticRegressionRanker,
        "pearson": PearsonRanker,
        "chi2": Chi2Ranker,
    }
    factory = ranker_factories.get(key)
    if factory is None:
        raise ValueError(f"unknown selector {name!r}")
    ranker = factory()
    for attr, value in overrides.items():
        setattr(ranker, attr, value)
    return RankingSelector(ranker, name=name, random_state=random_state)
