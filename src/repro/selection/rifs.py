"""RIFS — Random Injection Feature Selection (Algorithms 1-3 of the paper).

RIFS decides whether features produced by candidate joins carry signal by
comparing them against injected random features:

1. **Algorithm 2 / injection** — append ``eta * d`` random feature columns
   (moment-matched Gaussian by default) to the data matrix.
2. **Algorithm 1 / scoring** — rank the combined matrix with an ensemble of a
   Random-Forest ranker and a Sparse-Regression (L2,1) ranker, repeat ``k``
   times with fresh noise, and record for each real feature the fraction of
   rounds in which it out-ranked *every* injected noise feature.
3. **Algorithm 3 / threshold wrapper** — sweep a set of thresholds ``tau`` in
   increasing order, keep the features whose fraction is at least ``tau``, and
   stop as soon as the holdout score stops improving (the previous subset is
   returned).

Execution model: the ``k`` injection rounds are mutually independent, so each
round draws its randomness from its own spawned child of the selector seed and
the rounds fan out over a pluggable :class:`~repro.core.executor.JoinExecutor`
(``executor=`` / ``n_jobs=``).  Round results are 0/1 indicator vectors summed
in round order, so serial, thread and process execution return **byte-identical
selections**.  With the histogram tree kernel the real features are quantised
into a shared :class:`~repro.ml.binning.BinnedMatrix` once — each round only
bins its own small noise block and appends it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.executor import JoinExecutor, make_executor
from repro.ml.binning import BinnedMatrix
from repro.selection.aggregate import aggregate_rankings, fraction_ahead_of_all_noise
from repro.selection.base import (
    CLASSIFICATION,
    FeatureRanker,
    FeatureSelector,
    SelectionResult,
    holdout_score,
    infer_task,
)
from repro.selection.injection import inject_noise_features
from repro.selection.rankers import RandomForestRanker, SparseRegressionRanker

DEFAULT_THRESHOLDS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _run_injection_round(shared, seed):
    """One injection round; top-level so process pools can pickle it.

    The matrix, target and shared binning travel via the executor's
    shared-payload channel (delivered once per process worker, closed over
    for free in threads) — only the round seed is per-task.  Every source of
    randomness in the round (noise draw, per-ranker seeds) comes from the
    round's own spawned seed, and rankers are deep-copied before their seeds
    are set, so rounds are independent of execution order and of each other.
    """
    X, y, task_kind, rankers, weights, eta, strategy, binned = shared
    rng = np.random.default_rng(seed)
    augmented, noise_mask = inject_noise_features(
        X, fraction=eta, strategy=strategy, rng=rng
    )
    binned_augmented = None
    if binned is not None:
        noise_block = augmented[:, X.shape[1]:]
        binned_augmented = binned.hstack(
            BinnedMatrix.from_matrix(noise_block, max_bins=binned.max_bins)
        )
    score_vectors = []
    for ranker in rankers:
        ranker = copy.deepcopy(ranker)
        if hasattr(ranker, "random_state"):
            ranker.random_state = int(rng.integers(0, 2**31 - 1))
        if binned_augmented is not None and getattr(ranker, "uses_binned_matrix", False):
            score_vectors.append(ranker.score_features(binned_augmented, y, task_kind))
        else:
            score_vectors.append(ranker.score_features(augmented, y, task_kind))
    aggregate = aggregate_rankings(score_vectors, weights)
    return fraction_ahead_of_all_noise(aggregate, noise_mask)


@dataclass
class RIFSDiagnostics:
    """Intermediate quantities exposed for inspection and testing."""

    noise_beat_fraction: np.ndarray | None = None
    thresholds_tried: list[float] = field(default_factory=list)
    threshold_scores: list[float] = field(default_factory=list)
    chosen_threshold: float | None = None
    rounds: int = 0


class RIFS(FeatureSelector):
    """Random-injection feature selection.

    Parameters
    ----------
    eta:
        Fraction of random features to inject relative to the number of real
        features (the paper uses 0.2).
    n_rounds:
        Number of injection rounds ``k`` (the paper uses 10).
    nu:
        Weight of the Random-Forest ranking in the aggregate (Sparse
        Regression gets ``1 - nu``).
    thresholds:
        Increasing thresholds ``tau`` swept by the wrapper (Algorithm 3).
    injection_strategy:
        ``"moment_matched"`` (Algorithm 2) or ``"standard"`` distributions.
    tree_method / max_bins:
        Split kernel of the default Random-Forest ranker and the sharing of a
        :class:`~repro.ml.binning.BinnedMatrix` across rounds (``None``
        resolves via ``ARDA_TREE_METHOD``, default histogram).
    executor / n_jobs:
        Backend and worker count for fanning the injection rounds out; all
        backends return byte-identical selections.
    """

    name = "RIFS"
    accepts_binned = True

    def __init__(
        self,
        eta: float = 0.2,
        n_rounds: int = 10,
        nu: float = 0.5,
        thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
        injection_strategy: str = "moment_matched",
        rankers: list[FeatureRanker] | None = None,
        random_state: int = 0,
        min_keep: int = 1,
        tree_method: str | None = None,
        max_bins: int = 255,
        executor: str | JoinExecutor = "serial",
        n_jobs: int | None = None,
    ):
        if not 0 <= nu <= 1:
            raise ValueError("nu must be in [0, 1]")
        if n_rounds < 1:
            raise ValueError("n_rounds must be at least 1")
        self.eta = eta
        self.n_rounds = n_rounds
        self.nu = nu
        self.thresholds = tuple(sorted(thresholds))
        self.injection_strategy = injection_strategy
        self.rankers = rankers
        self.random_state = random_state
        self.min_keep = min_keep
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.executor = executor
        self.n_jobs = n_jobs
        self.diagnostics_: RIFSDiagnostics | None = None

    # -- Algorithm 1: noise-beat fractions -------------------------------------

    def noise_beat_fractions(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        binned: BinnedMatrix | None = None,
    ) -> np.ndarray:
        """Fraction of rounds each real feature out-ranks all injected noise.

        ``binned`` may carry a prebuilt quantisation of ``X`` (e.g. straight
        from :func:`repro.relational.encoding.to_binned_matrix`); otherwise
        the real features are binned here, once, when any ranker runs on the
        histogram kernel.  A passed ``binned`` must quantise exactly the
        columns of ``X`` in order — it is shared read-only across rounds and
        never mutated.

        RNG contract: round ``i`` consumes only the ``i``-th child of
        ``SeedSequence(random_state).spawn(n_rounds)`` (noise draw first,
        then one per-ranker seed per configured ranker); the selector-level
        RNG state is untouched.  Rounds are summed in round order, so
        serial/thread/process executors return bit-identical fractions.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        rankers, weights = self._resolve_rankers(task)
        wants_binned = any(getattr(r, "uses_binned_matrix", False) for r in rankers)
        if not wants_binned:
            binned = None
        elif binned is None:
            binned = BinnedMatrix.from_matrix(X, max_bins=self.max_bins)
        seeds = np.random.SeedSequence(self.random_state).spawn(self.n_rounds)
        shared = (X, y, task, rankers, weights, self.eta, self.injection_strategy, binned)
        executor = make_executor(self.executor, self.n_jobs)
        try:
            rounds = executor.map_with_shared(_run_injection_round, shared, seeds)
        finally:
            executor.shutdown()
        totals = np.zeros(X.shape[1], dtype=np.float64)
        for fractions in rounds:  # fixed round order: executor-independent sums
            totals += fractions
        return totals / self.n_rounds

    def uses_binned_matrix(self, task: str) -> bool:
        """Whether any configured ranker would consume a shared BinnedMatrix.

        Callers (the ARDA batch loop) probe this before paying for a
        table-level binning pass that a custom all-exact ranker list would
        just throw away.
        """
        rankers, _ = self._resolve_rankers(task)
        return any(getattr(ranker, "uses_binned_matrix", False) for ranker in rankers)

    def _resolve_rankers(self, task: str) -> tuple[list[FeatureRanker], list[float]]:
        if self.rankers is not None:
            return list(self.rankers), [1.0] * len(self.rankers)
        return (
            [
                RandomForestRanker(
                    random_state=self.random_state,
                    tree_method=self.tree_method,
                    max_bins=self.max_bins,
                ),
                SparseRegressionRanker(),
            ],
            [self.nu, 1.0 - self.nu],
        )

    # -- Algorithm 3: threshold wrapper ------------------------------------------

    def select(
        self, X, y, task=None, estimator=None, binned: BinnedMatrix | None = None
    ) -> SelectionResult:
        """Run the full RIFS procedure and return the selected feature indices.

        ``binned`` (optional) is the shared :class:`BinnedMatrix` fast path —
        see :meth:`noise_beat_fractions` for its contract; callers should
        probe :meth:`uses_binned_matrix` first so an all-exact ranker list
        does not pay for a binning pass.  Inputs are never mutated; the
        threshold wrapper's holdout splits derive from ``random_state`` (via
        :func:`~repro.selection.base.holdout_score`), so repeated calls with
        the same arguments return identical selections.  Diagnostics of the
        last call are exposed on ``self.diagnostics_`` (the only attribute
        ``select`` writes).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        task = task or infer_task(y)

        def run() -> SelectionResult:
            diagnostics = RIFSDiagnostics(rounds=self.n_rounds)
            fractions = self.noise_beat_fractions(X, y, task, binned=binned)
            diagnostics.noise_beat_fraction = fractions

            best_subset: np.ndarray | None = None
            best_score = -np.inf
            previous_score = -np.inf
            for tau in self.thresholds:
                subset = np.nonzero(fractions >= tau)[0]
                if len(subset) < self.min_keep:
                    break
                score = holdout_score(
                    X[:, subset], y, task, estimator=estimator,
                    random_state=self.random_state,
                    stratify=task == CLASSIFICATION,
                )
                diagnostics.thresholds_tried.append(tau)
                diagnostics.threshold_scores.append(score)
                if score > best_score:
                    best_score = score
                    best_subset = subset
                    diagnostics.chosen_threshold = tau
                if score < previous_score:
                    # accuracy stopped increasing monotonically: keep previous subset
                    break
                previous_score = score
            if best_subset is None or len(best_subset) == 0:
                # fall back to the highest-fraction features so we never return nothing
                order = np.argsort(-fractions, kind="stable")
                best_subset = order[: max(self.min_keep, 1)]
                diagnostics.chosen_threshold = None
            self.diagnostics_ = diagnostics
            return SelectionResult(
                selected=np.sort(best_subset),
                scores=fractions,
                details={
                    "chosen_threshold": diagnostics.chosen_threshold,
                    "threshold_scores": dict(
                        zip(diagnostics.thresholds_tried, diagnostics.threshold_scores)
                    ),
                },
            )

        return self._timed(run)


class NoiseInjectionRankingSelector(FeatureSelector):
    """A single-ranker variant of RIFS (e.g. "Random Forest ranker with our noise injection rule").

    Uses one ranker's scores, the same noise-beat-fraction statistic and the
    same threshold wrapper, but no ensemble.  The paper notes this variant is
    marginally faster than full RIFS and still achieves augmentation.
    """

    accepts_binned = True

    def __init__(
        self,
        ranker: FeatureRanker,
        name: str | None = None,
        eta: float = 0.2,
        n_rounds: int = 5,
        thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
        injection_strategy: str = "moment_matched",
        random_state: int = 0,
        executor: str | JoinExecutor = "serial",
        n_jobs: int | None = None,
    ):
        self.ranker = ranker
        self.name = name or f"{ranker.name}+noise"
        self.eta = eta
        self.n_rounds = n_rounds
        self.thresholds = thresholds
        self.injection_strategy = injection_strategy
        self.random_state = random_state
        self._rifs = RIFS(
            eta=eta,
            n_rounds=n_rounds,
            thresholds=thresholds,
            injection_strategy=injection_strategy,
            rankers=[ranker],
            random_state=random_state,
            executor=executor,
            n_jobs=n_jobs,
        )

    def uses_binned_matrix(self, task: str) -> bool:
        """Whether the wrapped ranker consumes a shared BinnedMatrix."""
        return self._rifs.uses_binned_matrix(task)

    def select(self, X, y, task=None, estimator=None, binned=None) -> SelectionResult:
        """Delegate to a single-ranker RIFS instance.

        Accepts the same optional shared ``binned`` matrix as
        :meth:`RIFS.select` (forwarded untouched) and inherits its
        determinism contract: results depend only on the constructor
        arguments and inputs, never on the executor backend.
        """
        result = self._rifs.select(X, y, task=task, estimator=estimator, binned=binned)
        result.method = self.name
        return result


__all__ = [
    "RIFS",
    "RIFSDiagnostics",
    "NoiseInjectionRankingSelector",
    "DEFAULT_THRESHOLDS",
]
