"""The Tuple-Ratio decision rule of Kumar et al. (SIGMOD 2016).

The Tuple Ratio of a candidate join is ``n_S / n_R`` where ``n_S`` is the
number of training examples in the base table and ``n_R`` is the size of the
foreign-key domain (the number of distinct join-key values in the foreign
table).  Based on a VC-dimension argument for binary classification, a foreign
table is "safe to avoid" when the ratio exceeds a threshold (Kumar et al.
suggest tuning the threshold per model; the paper finds slight gains from
per-dataset tuning and reports the threshold used per dataset in Table 4).

ARDA uses the rule in two ways:

* as a **table pre-filter** before feature selection (drop tables whose tuple
  ratio exceeds ``tau``), trading a little accuracy for speed (Table 4), and
* as a **stand-alone augmentation baseline** ("TR rule" in Figure 3 /
  Table 1): join only the tables the rule keeps and use all of their features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.aggregate import column_group_codes
from repro.relational.schema import CATEGORICAL
from repro.relational.table import Table


@dataclass
class TupleRatioDecision:
    """The rule's verdict for one candidate table."""

    table_name: str
    tuple_ratio: float
    keep: bool


def foreign_key_domain_size(table: Table, key_columns: list[str]) -> int:
    """Number of distinct (non-missing) join-key tuples in a foreign table.

    Key columns are reduced to integer codes (dictionary codes for
    categoricals) and composite keys are packed mixed-radix into one ``int64``
    per row, so counting the domain is a single ``np.unique`` over integers.
    """
    if not key_columns:
        return 0
    columns = [table.column(k) for k in key_columns]
    n = table.num_rows
    if n == 0:
        return 0
    packed = np.zeros(n, dtype=np.int64)
    complete = np.ones(n, dtype=bool)
    span = 1
    for col in columns:
        codes, domain = column_group_codes(col)
        span *= domain + 1
        if span > 2**62:
            return _domain_size_fallback(columns, n)
        complete &= codes >= 0
        packed = packed * (domain + 1) + (codes + 1)
    return len(np.unique(packed[complete]))


def _domain_size_fallback(columns, n_rows: int) -> int:
    """Object-tuple domain count (reference path / packed-key overflow)."""
    seen: set[tuple] = set()
    for i in range(n_rows):
        parts = []
        missing = False
        for col in columns:
            value = col.value_at(i)
            if col.ctype is CATEGORICAL:
                if value is None:
                    missing = True
                    break
                parts.append(value)
            else:
                if np.isnan(value):
                    missing = True
                    break
                parts.append(float(value))
        if not missing:
            seen.add(tuple(parts))
    return len(seen)


def tuple_ratio(base_rows: int, foreign_table: Table, key_columns: list[str]) -> float:
    """Tuple ratio n_S / n_R of one candidate join (inf when the domain is empty)."""
    domain = foreign_key_domain_size(foreign_table, key_columns)
    if domain == 0:
        return float("inf")
    return base_rows / domain


class TupleRatioFilter:
    """Filter candidate tables by the Tuple-Ratio rule.

    ``tau`` is the threshold above which a table is considered safe to drop.
    """

    def __init__(self, tau: float = 20.0):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau

    def decide(
        self, base_rows: int, foreign_table: Table, key_columns: list[str]
    ) -> TupleRatioDecision:
        """Return the keep/drop decision for one candidate table."""
        ratio = tuple_ratio(base_rows, foreign_table, key_columns)
        return TupleRatioDecision(
            table_name=foreign_table.name, tuple_ratio=ratio, keep=ratio <= self.tau
        )

    def filter_candidates(
        self,
        base_rows: int,
        candidates: list[tuple[Table, list[str]]],
    ) -> tuple[list[int], list[TupleRatioDecision]]:
        """Apply the rule to a list of ``(table, key_columns)`` candidates.

        Returns the indices of the candidates to keep and all decisions.
        """
        keep_indices: list[int] = []
        decisions: list[TupleRatioDecision] = []
        for index, (table, key_columns) in enumerate(candidates):
            decision = self.decide(base_rows, table, key_columns)
            decisions.append(decision)
            if decision.keep:
                keep_indices.append(index)
        return keep_indices, decisions
