"""One coherent metrics surface for every subsystem counter.

Before this module, operational counters were scattered: byte accounting
lived in :func:`repro.relational.persist.bytes_read_detail`, cache
hit/miss/invalidation counts on
:class:`~repro.discovery.repository.ProfileCache`, streaming-join pruning
ratios on :class:`~repro.relational.join.StreamJoinStats`, and stage timings
on :meth:`~repro.core.results.AugmentationReport.stage_breakdown`.  Each kept
its own ad-hoc ``stats()``/``detail()`` shape, and nothing could serve them
from one endpoint.

:class:`MetricsRegistry` is that one surface.  It holds three kinds of
instrument:

* :class:`Counter` — a monotonically increasing value (``inc``), for request
  and row counts, reloads, errors;
* :class:`Histogram` — streaming count/sum/min/max plus fixed bucket counts
  (``observe``), with quantile estimates interpolated from the buckets — this
  is what latency percentiles are served from;
* **sources** — pull-based callbacks registered with
  :meth:`MetricsRegistry.register_source`.  A source owns its own state and
  is only *read* at :meth:`MetricsRegistry.snapshot` time.  This is how the
  pre-existing subsystem counters joined the registry **without changing
  their return values or call sites**: ``persist`` registers
  ``bytes_read_detail`` as a process-wide source on import, a
  :class:`~repro.discovery.repository.ProfileCache` registers its ``stats``
  via :meth:`~repro.discovery.repository.ProfileCache.register_metrics`, and
  :class:`~repro.core.results.AugmentationReport` /
  :class:`~repro.relational.join.StreamJoinStats` push their figures through
  ``record_metrics`` / ``record_to``.

Everything is thread-safe (one lock per registry, one per instrument);
``snapshot()`` returns a plain-JSON-serialisable dict, which is exactly what
the serving server's ``/metrics`` endpoint emits.

The module-level :func:`get_registry` returns the process-wide default
registry most components register into; independent registries can be
created for isolation (tests, multiple servers in one process).

This module is stdlib-only on purpose — every subsystem may import it
without creating an import cycle.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RATIO_BUCKETS",
]

# upper bounds (seconds) chosen for request latencies: sub-millisecond to
# tens of seconds, roughly x2.5 per step; the trailing +inf bucket is implicit
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

# upper bounds for [0, 1] ratio metrics (recall, precision, uplift fractions):
# a fine-grained top end distinguishes "nearly perfect" from "perfect"
DEFAULT_RATIO_BUCKETS: tuple[float, ...] = (
    0.1,
    0.2,
    0.3,
    0.4,
    0.5,
    0.6,
    0.7,
    0.8,
    0.9,
    0.95,
    0.99,
    1.0,
)


class Counter:
    """A named, thread-safe, monotonically increasing value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0; counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """Streaming distribution summary: count/sum/min/max plus bucket counts.

    Buckets are cumulative-style upper bounds (like Prometheus ``le``); an
    implicit +inf bucket catches the tail.  :meth:`quantile` interpolates
    linearly within the winning bucket — an estimate whose error is bounded
    by the bucket width, which is the standard trade for O(1) memory under
    concurrent observation.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        self.name = name
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name!r}: needs at least one bucket bound")
        self.buckets: tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # linear scan: bucket lists are short (~16) and observation must not
        # allocate; bisect would win only for much larger bucket sets
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Returns ``nan`` with no observations.  The estimate interpolates
        within the winning bucket; values beyond the last finite bound are
        clamped to the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            target = q * self._count
            seen = 0
            for i, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= target and bucket_count:
                    if i >= len(self.buckets):
                        return self._max
                    lower = self.buckets[i - 1] if i else min(self._min, self.buckets[i])
                    upper = self.buckets[i]
                    fraction = 1.0 - (seen - target) / bucket_count
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self._min), self._max)
            return self._max

    def to_dict(self) -> dict:
        """Plain-dict summary (the ``snapshot()`` form)."""
        with self._lock:
            count, total = self._count, self._sum
            counts = list(self._counts)
            minimum = None if count == 0 else self._min
            maximum = None if count == 0 else self._max
        out = {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "mean": (total / count) if count else None,
            "buckets": {str(b): c for b, c in zip(self.buckets, counts)},
            "buckets_inf": counts[-1],
        }
        if count:
            out["p50"] = self.quantile(0.50)
            out["p99"] = self.quantile(0.99)
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Named counters, histograms and pull-based sources, snapshot-to-dict.

    Instruments are created on first request and returned on every subsequent
    call with the same name (get-or-create), so independent subsystems can
    share one instrument by name without coordinating construction order.
    Requesting an existing name as a different instrument kind raises.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, Callable[[], object]] = {}
        self._lock = threading.Lock()
        self._created = time.time()

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            self._check_free(name, allow="counter")
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` only applies on creation; a later call with different
        buckets returns the existing instrument unchanged.
        """
        with self._lock:
            self._check_free(name, allow="histogram")
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, buckets)
            return histogram

    def register_source(self, name: str, fn: Callable[[], object]) -> None:
        """Register a pull-based source evaluated at :meth:`snapshot` time.

        ``fn`` must return a JSON-serialisable value (typically a dict of
        numbers — e.g. ``ProfileCache.stats`` or
        ``persist.bytes_read_detail``).  Re-registering a name replaces the
        previous callback (the common case: a server re-binding to a new
        repository re-registers its cache source).
        """
        with self._lock:
            self._check_free(name, allow="source")
            self._sources[name] = fn

    def unregister_source(self, name: str) -> bool:
        """Drop a source; returns whether it existed."""
        with self._lock:
            return self._sources.pop(name, None) is not None

    def _check_free(self, name: str, allow: str) -> None:
        # caller holds the lock
        kinds = {
            "counter": self._counters,
            "histogram": self._histograms,
            "source": self._sources,
        }
        for kind, table in kinds.items():
            if kind != allow and name in table:
                raise ValueError(
                    f"metric name {name!r} is already registered as a {kind}"
                )

    # -- read side -------------------------------------------------------------

    def snapshot(self) -> dict:
        """One plain dict of everything: counters, histograms, sources.

        Safe against concurrent instrument updates and registrations; a
        source whose callback raises is reported as an ``{"error": ...}``
        entry instead of failing the whole snapshot (a metrics endpoint must
        not go down because one subsystem is mid-teardown).
        """
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            sources = dict(self._sources)
        doc: dict = {
            "uptime_s": time.time() - self._created,
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "histograms": {name: h.to_dict() for name, h in sorted(histograms.items())},
        }
        pulled: dict = {}
        for name, fn in sorted(sources.items()):
            try:
                pulled[name] = fn()
            except Exception as exc:
                pulled[name] = {"error": f"{type(exc).__name__}: {exc}"}
        doc["sources"] = pulled
        return doc

    def record_timings(self, prefix: str, timings: Mapping[str, float]) -> None:
        """Observe a ``{stage name -> seconds}`` mapping into histograms.

        Convenience for pushing :meth:`AugmentationReport.stage_breakdown`
        style breakdowns: each key becomes ``{prefix}.{key}``.
        """
        for key, seconds in timings.items():
            self.histogram(f"{prefix}.{key}").observe(float(seconds))

    def reset(self) -> None:
        """Drop every instrument and source (tests and bench isolation)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._sources.clear()
            self._created = time.time()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"histograms={len(self._histograms)}, sources={len(self._sources)})"
            )


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry subsystems register into."""
    return _default_registry
