"""repro — a reproduction of ARDA: Automatic Relational Data Augmentation (VLDB 2020).

The public surface mirrors the paper's system decomposition:

* :mod:`repro.core` — the ARDA pipeline (:class:`~repro.core.ARDA`,
  :class:`~repro.core.ARDAConfig`).
* :mod:`repro.selection` — RIFS and every baseline feature selector.
* :mod:`repro.relational` — the columnar table / join / soft-join substrate.
* :mod:`repro.discovery` — join discovery over a table repository.
* :mod:`repro.coreset` — uniform / stratified sampling and sketching.
* :mod:`repro.ml` — the model substrate (forests, linear models, SVMs, ...).
* :mod:`repro.datasets` — synthetic scenario and micro-benchmark generators.
* :mod:`repro.evaluation` — the experiment harness behind the benchmarks.
* :mod:`repro.serving` — fitted-pipeline artifacts and batch/streaming
  inference (:class:`~repro.serving.FittedPipeline`).
"""

from repro.core import ARDA, ARDAConfig, AugmentationReport
from repro.datasets import AugmentationDataset, load_dataset
from repro.selection import RIFS, make_selector
from repro.serving import FittedPipeline

__version__ = "1.0.0"

__all__ = [
    "ARDA",
    "ARDAConfig",
    "AugmentationReport",
    "AugmentationDataset",
    "load_dataset",
    "RIFS",
    "make_selector",
    "FittedPipeline",
    "__version__",
]
