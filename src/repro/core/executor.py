"""Pluggable execution backends for batches of independent join tasks.

The joins inside one join-plan batch are independent of each other: every
candidate is LEFT-joined against the same base snapshot and only *adds*
columns, so a batch can be executed concurrently and merged in candidate
order.  This module provides the execution strategy only; the decomposition
and merge live in :mod:`repro.core.join_execution`.

Three backends:

* :class:`SerialJoinExecutor` — plain in-process loop, zero overhead; the
  reference implementation every other backend must match byte-for-byte.
* :class:`ThreadJoinExecutor` — ``concurrent.futures.ThreadPoolExecutor``.
  Join kernels spend most of their time in NumPy, which releases the GIL,
  so threads are the default parallel choice (no pickling, shared arrays).
* :class:`ProcessJoinExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  for CPU-bound pure-Python joins; tasks and results must pickle.

``make_executor`` resolves a config name to a backend and falls back to the
serial executor whenever ``n_jobs`` resolves to one worker, so configuring
``executor="thread", n_jobs=1`` costs nothing over the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")
S = TypeVar("S")

# shared payload slot for process workers (set once per worker by the pool
# initializer of map_with_shared, read by _call_with_shared)
_worker_shared = None


def _init_worker_shared(shared) -> None:
    global _worker_shared
    _worker_shared = shared


def _call_with_shared(task):
    fn, item = task
    return fn(_worker_shared, item)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Turn a config ``n_jobs`` into a concrete worker count.

    ``None`` and non-positive values mean "use all available cores".
    """
    if n_jobs is None or n_jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return int(n_jobs)


class JoinExecutor:
    """Strategy interface: run independent tasks, preserving input order.

    Implementations must return results positionally aligned with ``items`` —
    the merge step in :func:`repro.core.join_execution.join_candidates` relies
    on that to keep parallel output identical to serial output.
    """

    name = "serial"
    n_jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order."""
        raise NotImplementedError

    def map_with_shared(
        self, fn: Callable[[S, T], R], shared: S, items: Iterable[T]
    ) -> list[R]:
        """Apply ``fn(shared, item)`` to every item, results in input order.

        ``shared`` is a read-only payload common to all tasks (a training
        matrix, say).  In-process backends close over it for free; the process
        backend ships it to each *worker* exactly once via a pool initializer
        instead of pickling it into every task.
        """
        return self.map(partial(fn, shared), items)

    def shutdown(self) -> None:
        """Release any pooled workers (no-op for poolless executors)."""

    def __enter__(self) -> "JoinExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


class SerialJoinExecutor(JoinExecutor):
    """Execute tasks one after another in the calling thread."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class _PoolJoinExecutor(JoinExecutor):
    """Shared machinery for the ``concurrent.futures`` pool backends.

    The pool is created lazily on the first multi-item ``map`` and reused
    across calls (one ``ARDA.augment`` run maps once per batch, so per-call
    pools would pay worker startup once per batch); ``shutdown`` releases it.
    Both pool classes spawn workers on demand, so idle capacity is cheap.
    """

    pool_class: type

    def __init__(self, n_jobs: int | None = None):
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._pool = None

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1 or self.n_jobs == 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = self.pool_class(max_workers=self.n_jobs)
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ThreadJoinExecutor(_PoolJoinExecutor):
    """Execute tasks on a thread pool (default parallel backend)."""

    name = "thread"
    pool_class = ThreadPoolExecutor


class ProcessJoinExecutor(_PoolJoinExecutor):
    """Execute tasks on a process pool (tasks and results must pickle)."""

    name = "process"
    pool_class = ProcessPoolExecutor

    def map_with_shared(
        self, fn: Callable[[S, T], R], shared: S, items: Iterable[T]
    ) -> list[R]:
        items = list(items)
        if len(items) <= 1 or self.n_jobs == 1:
            return [fn(shared, item) for item in items]
        # a dedicated pool whose initializer delivers the shared payload once
        # per worker; worth the worker spawns whenever the payload is large
        # (a 200k-row matrix) relative to the per-item arguments
        with ProcessPoolExecutor(
            max_workers=min(self.n_jobs, len(items)),
            initializer=_init_worker_shared,
            initargs=(shared,),
        ) as pool:
            return list(pool.map(_call_with_shared, [(fn, item) for item in items]))


EXECUTOR_NAMES: tuple[str, ...] = ("serial", "thread", "process")


def make_executor(name: str | JoinExecutor = "serial", n_jobs: int | None = None) -> JoinExecutor:
    """Build a :class:`JoinExecutor` from a config name.

    A ready-made executor instance passes through unchanged.  A parallel
    backend with ``n_jobs=1`` falls back to the serial executor, since a
    one-worker pool only adds overhead.
    """
    if isinstance(name, JoinExecutor):
        return name
    if name not in EXECUTOR_NAMES:
        raise ValueError(f"executor must be one of {EXECUTOR_NAMES}, got {name!r}")
    if name == "serial":
        return SerialJoinExecutor()
    if n_jobs is not None and resolve_n_jobs(n_jobs) == 1:
        return SerialJoinExecutor()
    if name == "thread":
        return ThreadJoinExecutor(n_jobs)
    return ProcessJoinExecutor(n_jobs)


def longest_first_order(weights: Sequence[int]) -> list[int]:
    """Indices sorted by descending weight (ties keep input order).

    Submitting the widest joins first approximates longest-processing-time
    scheduling, which minimises pool makespan; callers must restore result
    order afterwards.
    """
    return sorted(range(len(weights)), key=lambda i: (-weights[i], i))
