"""ARDA core: the end-to-end automatic relational data augmentation pipeline."""

from repro.core.config import ARDAConfig, ServingConfig, SweepConfig
from repro.core.executor import (
    JoinExecutor,
    ProcessJoinExecutor,
    SerialJoinExecutor,
    ThreadJoinExecutor,
    make_executor,
)
from repro.core.join_plan import JoinBatch, build_join_plan
from repro.core.join_execution import execute_join, join_candidates, replay_kept_joins
from repro.core.arda import ARDA
from repro.core.results import AugmentationReport, BatchReport

__all__ = [
    "ARDA",
    "ARDAConfig",
    "ServingConfig",
    "SweepConfig",
    "AugmentationReport",
    "BatchReport",
    "JoinBatch",
    "JoinExecutor",
    "SerialJoinExecutor",
    "ThreadJoinExecutor",
    "ProcessJoinExecutor",
    "make_executor",
    "build_join_plan",
    "execute_join",
    "join_candidates",
    "replay_kept_joins",
]
