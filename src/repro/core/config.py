"""Configuration of the ARDA pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ARDAConfig:
    """All knobs of the augmentation pipeline, with the paper's defaults.

    The canonical knob reference (one row per field, grouped by subsystem)
    lives in ``docs/API.md``; this docstring is the source of truth for
    semantics.

    Determinism contract: for a fixed config, ``ARDA.augment`` is fully
    deterministic — every random draw (coreset sampling, soft-join
    tie-breaks, categorical imputation, noise injection, tree seeds and
    bootstraps) descends from ``random_state`` via per-component
    ``np.random.default_rng`` / ``SeedSequence.spawn`` streams, and the
    ``executor`` / ``n_jobs`` / ``selection_n_jobs`` knobs change wall-clock
    only, never results.  A config instance is never mutated by the pipeline;
    the same instance can drive concurrent ``ARDA`` objects.

    Attributes
    ----------
    coreset_strategy:
        ``"uniform"`` (default), ``"stratified"`` or ``"none"``; row sampling
        applied to the base table before joining.
    coreset_size:
        Target number of coreset rows; ``None`` picks a heuristic size.
    join_plan:
        ``"budget"`` (default), ``"table"`` or ``"full"`` table grouping.
    budget:
        Maximum number of foreign feature columns considered per batch in the
        budget join plan; ``None`` defaults to the coreset size.
    soft_join:
        ``"two_way_nearest"`` (default), ``"nearest"`` or ``"hard"`` strategy
        for soft keys.
    time_resample:
        Whether to aggregate finer-grained time keys to the base granularity
        before a soft/hard time join.
    selector:
        Feature-selection method name (paper-table label); ``"RIFS"`` default.
    selector_options:
        Extra keyword arguments forwarded to the selector factory.
    tuple_ratio_tau:
        If set, candidate tables whose tuple ratio exceeds this threshold are
        dropped before joining (the TR-rule pre-filter of Table 4).
    estimator:
        ``"random_forest"`` (default) or ``"automl"`` final estimator.
    estimator_options:
        Extra keyword arguments for the final estimator (e.g. ``n_estimators``).
    max_categories:
        One-hot encoding cap per categorical column.
    test_size / random_state:
        Holdout fraction and seed used for evaluation splits throughout.
    executor:
        ``"serial"`` (default), ``"thread"`` or ``"process"`` backend used to
        execute the independent joins of each join-plan batch.  All backends
        produce identical results; parallel backends speed up multi-candidate
        batches.
    n_jobs:
        Worker count for parallel executors; ``None`` or non-positive values
        use all cores, ``1`` falls back to the serial executor.
    cache_profiles:
        Whether join discovery reuses the repository's profile cache
        (:class:`~repro.discovery.repository.ProfileCache`), so repeated
        ``augment`` runs over the same repository skip re-profiling.
    repository_dir:
        Directory of native binary table files to open as a lazy disk-backed
        :class:`~repro.discovery.repository.DataRepository` when
        ``augment_tables`` is called without an explicit repository.
    lru_tables:
        How many decoded tables a disk-backed repository keeps alive
        (``None`` = unbounded).  Only used for repositories the pipeline
        opens itself via ``repository_dir``.
    persist_profiles:
        After running join discovery over a disk-backed repository, write the
        profile cache to the repository's sidecar so the next process skips
        profiling entirely.
    pin_snapshot:
        Pin one repository manifest generation
        (:meth:`~repro.discovery.repository.DataRepository.snapshot`) for the
        whole of ``augment_tables``, so discovery, joining and training all
        read one consistent ``{table → fingerprint}`` view even while other
        threads publish new generations.  Disable to read the live repository
        (pre-snapshot behaviour; only sensible when nothing mutates it
        concurrently).
    tree_method:
        Split kernel of every tree model the pipeline trains (RIFS' forest
        ranker, holdout estimators, the final estimator): ``"hist"``
        (histogram bins, the fast default), ``"exact"`` (sorted exhaustive
        search, the reference), or ``None`` to defer to the
        ``ARDA_TREE_METHOD`` environment variable (falling back to hist).
    max_bins:
        Bin budget per feature for the histogram kernel (2..255; codes are
        uint8).
    selection_n_jobs:
        Worker count for parallel feature selection (RIFS injection rounds
        fanned out over the ``executor`` backend).  ``None`` inherits
        ``n_jobs``; the executor kind is shared with the join engine, and all
        backends produce byte-identical selections.
    chunk_rows:
        Row-group target for table files the pipeline writes (repositories it
        opens via ``repository_dir``, streamed augmented outputs): tables
        larger than the target are stored chunked with per-chunk zone maps.
        ``None`` defers to the ``ARDA_CHUNK_ROWS`` environment variable (no
        chunking when unset); ``0`` forces monolithic files.  Reading is
        layout-transparent either way.
    memory_budget:
        Soft cap, in bytes, on how much chunk data the streaming join engine
        holds at once: chunks of an out-of-core base table are processed in
        waves whose summed (page bytes + projected output) estimate stays
        under the budget, and a build (right) side whose estimated size
        exceeds the budget runs in Grace spill mode (hash-partitioned to
        disk, joined partition by partition — identical output, peak heap
        bounded by one partition).  ``None`` (default) sizes waves at one
        chunk per worker and never spills; it then defers to the
        ``ARDA_MEMORY_BUDGET`` environment variable (bytes) when that is
        set.  This bounds the pipeline's working set; it never changes
        results.
    discovery_n_jobs:
        Worker count for sharded discovery profiling: repository tables are
        profiled as per-(table, chunk-range) shards fanned over the
        ``executor`` backend and merged back into canonical profiles
        (byte-identical to serial, so candidate rankings never change).
        ``None`` inherits ``n_jobs``; ``1`` keeps the serial per-table path.
    spill_partitions:
        Explicit Grace spill fan-out for the streaming join's build side.
        ``None`` (default) derives the partition count from the build-side
        size and ``memory_budget`` and only spills oversized builds; a value
        ``> 1`` forces partitioned spilling regardless of size (testing and
        tiny-budget CI legs).
    spill_dir:
        Directory for Grace spill files (a uniquely-named subdirectory is
        created per join and removed afterwards).  ``None`` uses the system
        temp dir.
    capture_pipeline:
        Capture a servable :class:`~repro.serving.pipeline.FittedPipeline`
        (accepted join plan, fitted encoders/imputers, selected features,
        trained estimator) on :attr:`AugmentationReport.pipeline` at the end
        of ``augment``.  Costs one extra estimator fit on the full augmented
        table; the serving estimator is always a random forest (the paper's
        estimator — with ``estimator="automl"`` the AutoML search still
        drives the *reported* scores, but the artifact serialises a forest).
        Disable for pure evaluation sweeps that never serve.
    """

    coreset_strategy: str = "uniform"
    coreset_size: int | None = None
    join_plan: str = "budget"
    budget: int | None = None
    soft_join: str = "two_way_nearest"
    time_resample: bool = True
    selector: str = "RIFS"
    selector_options: dict = field(default_factory=dict)
    tuple_ratio_tau: float | None = None
    estimator: str = "random_forest"
    estimator_options: dict = field(default_factory=dict)
    max_categories: int = 12
    test_size: float = 0.25
    random_state: int = 0
    executor: str = "serial"
    n_jobs: int | None = None
    cache_profiles: bool = True
    repository_dir: str | None = None
    lru_tables: int | None = 16
    persist_profiles: bool = True
    pin_snapshot: bool = True
    tree_method: str | None = None
    max_bins: int = 255
    selection_n_jobs: int | None = None
    chunk_rows: int | None = None
    memory_budget: int | None = None
    discovery_n_jobs: int | None = None
    spill_partitions: int | None = None
    spill_dir: str | None = None
    capture_pipeline: bool = True

    def __post_init__(self):
        import os

        from repro.core.executor import EXECUTOR_NAMES
        from repro.ml.binning import TREE_METHODS, check_max_bins

        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(f"executor must be one of {EXECUTOR_NAMES}")
        if self.tree_method is not None and self.tree_method not in TREE_METHODS:
            raise ValueError(f"tree_method must be None or one of {TREE_METHODS}")
        check_max_bins(self.max_bins)
        valid_plans = ("budget", "table", "full")
        if self.join_plan not in valid_plans:
            raise ValueError(f"join_plan must be one of {valid_plans}")
        valid_soft = ("two_way_nearest", "nearest", "hard")
        if self.soft_join not in valid_soft:
            raise ValueError(f"soft_join must be one of {valid_soft}")
        valid_coreset = ("uniform", "stratified", "none")
        if self.coreset_strategy not in valid_coreset:
            raise ValueError(f"coreset_strategy must be one of {valid_coreset}")
        valid_estimators = ("random_forest", "automl")
        if self.estimator not in valid_estimators:
            raise ValueError(f"estimator must be one of {valid_estimators}")
        if self.lru_tables is not None and self.lru_tables < 1:
            raise ValueError("lru_tables must be None or >= 1")
        if self.chunk_rows is not None and self.chunk_rows < 0:
            raise ValueError("chunk_rows must be None, 0 (monolithic) or positive")
        if self.memory_budget is None:
            env_budget = os.environ.get("ARDA_MEMORY_BUDGET", "").strip()
            if env_budget:
                try:
                    self.memory_budget = int(env_budget)
                except ValueError:
                    raise ValueError(
                        f"ARDA_MEMORY_BUDGET must be an integer byte count, "
                        f"got {env_budget!r}"
                    ) from None
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValueError("memory_budget must be None or a positive byte count")
        if self.spill_partitions is not None and self.spill_partitions < 1:
            raise ValueError("spill_partitions must be None or >= 1")


@dataclass
class SweepConfig:
    """Knobs of the planted-ground-truth scenario sweep (``repro sweep``).

    The canonical knob table lives in ``docs/API.md``; this docstring is the
    source of truth for semantics.

    Attributes
    ----------
    n_scenarios:
        How many scenarios to sample and score; scenario ``i`` is a pure
        function of ``(seed, i, profile)``.
    seed:
        Root seed of every sampler stream (``SeedSequence(seed,
        spawn_key=(i,))`` per scenario).
    profile:
        Size envelope name: ``"quick"`` (CI scale, the default) or
        ``"full"`` (larger schemas and key domains).
    layout:
        Persisted repository layout scenarios are materialised into:
        ``"monolithic"`` (version-1 files), ``"chunked"`` (row groups of
        ``chunk_rows``), or ``"memory"`` (no disk; fastest, used by unit
        tests).  Content fingerprints — and therefore every sweep score —
        are identical across all three.
    chunk_rows:
        Row-group target for the ``chunked`` layout.
    executor / n_jobs / tree_method:
        Forwarded into each scenario's :class:`ARDAConfig`; all executor
        backends produce byte-identical sweep scores.
    min_discovery_recall:
        Per-scenario floor on planted-join recall in discovery; a scenario
        below it fails the sweep.
    require_ranking:
        Whether every planted table must outrank every decoy table in the
        discovery candidate ranking (metamorphic check; on by default).
    repro_dir:
        Where failing scenarios serialize their JSON repro files
        (``repro sweep --replay FILE`` replays one standalone).  ``None``
        disables repro-file emission.
    """

    n_scenarios: int = 20
    seed: int = 0
    profile: str = "quick"
    layout: str = "monolithic"
    chunk_rows: int = 64
    executor: str = "serial"
    n_jobs: int | None = None
    tree_method: str | None = None
    min_discovery_recall: float = 0.9
    require_ranking: bool = True
    repro_dir: str | None = None

    def __post_init__(self):
        from repro.core.executor import EXECUTOR_NAMES

        if self.n_scenarios < 1:
            raise ValueError("n_scenarios must be >= 1")
        valid_layouts = ("monolithic", "chunked", "memory")
        if self.layout not in valid_layouts:
            raise ValueError(f"layout must be one of {valid_layouts}")
        if self.chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(f"executor must be one of {EXECUTOR_NAMES}")
        if not 0.0 <= self.min_discovery_recall <= 1.0:
            raise ValueError("min_discovery_recall must be within [0, 1]")


@dataclass
class ServingConfig:
    """Knobs of the resident serving server (:mod:`repro.serving.server`).

    The canonical knob table lives in ``docs/API.md``; this docstring is the
    source of truth for semantics.

    Attributes
    ----------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port (tests and
        benchmarks); :attr:`~repro.serving.server.PredictionServer.address`
        reports the bound one.
    workers:
        Scorer worker threads.  Each worker independently pulls from the
        admission queue, coalesces a micro-batch and scores it against the
        live pipeline generation; workers share one memory-mapped artifact
        and one pinned repository snapshot.
    max_batch_rows:
        Micro-batch coalescing cap: a worker stops gathering requests once
        the coalesced row count reaches this.  Larger batches amortise join
        replay and estimator dispatch; smaller ones bound per-request
        latency.
    max_wait_ms:
        How long a worker waits for more requests to coalesce after its
        first, in milliseconds.  The wait only happens while the queue is
        empty — a backed-up queue coalesces without waiting.  ``0`` disables
        coalescing-by-waiting entirely (each batch is whatever is already
        queued).
    queue_depth:
        Admission queue capacity in *requests*.  A full queue rejects new
        predict requests with HTTP 503 instead of letting latency grow
        without bound (backpressure beats collapse).
    max_request_rows:
        Per-request row cap; larger batch requests are rejected with HTTP
        413 (the one-shot ``score`` CLI is the right tool for bulk scoring).
    reload_interval_s:
        How often the watcher thread checks the artifact file's content
        fingerprint and the repository manifest generation for hot reload;
        ``0`` disables the watcher (reloads then only happen via an explicit
        :meth:`~repro.serving.server.PredictionServer.check_reload`).
    drain_timeout_s:
        Upper bound on graceful shutdown: how long to wait for queued and
        in-flight requests to finish before stopping the workers anyway.
        Also bounds how long one request handler waits for its result before
        answering HTTP 504.
    executor / n_jobs:
        Join-replay backend used by each scorer worker (see
        :attr:`ARDAConfig.executor`); results are identical across backends.
        The default serial executor is right for micro-batches — worker
        threads already provide the concurrency.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    max_batch_rows: int = 1024
    max_wait_ms: float = 2.0
    queue_depth: int = 1024
    max_request_rows: int = 100_000
    reload_interval_s: float = 2.0
    drain_timeout_s: float = 30.0
    executor: str = "serial"
    n_jobs: int | None = None

    def __post_init__(self):
        from repro.core.executor import EXECUTOR_NAMES

        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_request_rows < 1:
            raise ValueError("max_request_rows must be >= 1")
        if self.reload_interval_s < 0:
            raise ValueError("reload_interval_s must be >= 0 (0 disables the watcher)")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.port < 0 or self.port > 65535:
            raise ValueError("port must be in [0, 65535] (0 = ephemeral)")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(f"executor must be one of {EXECUTOR_NAMES}")
