"""Join planning: grouping candidate tables into batches (paper section 4).

Three grouping strategies:

* **table** — one candidate table per batch.  Cheapest to evaluate per batch
  but cannot discover co-predicting features split across tables.
* **budget** (default) — as many tables per batch as fit within a feature
  budget (by default the coreset size).  A single table wider than the budget
  still gets its own batch.
* **full** — every candidate in one batch (full materialisation).

Candidates are processed in descending discovery-score order, so the most
promising joins are considered first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discovery.candidates import JoinCandidate
from repro.discovery.repository import DataRepository


@dataclass
class JoinBatch:
    """One group of candidate joins evaluated together by feature selection.

    ``feature_counts`` holds the per-candidate width estimates (aligned with
    ``candidates``) the planner computed while building the batch; the join
    layer uses them to schedule the widest joins first on parallel executors.
    """

    candidates: list[JoinCandidate] = field(default_factory=list)
    estimated_features: int = 0
    feature_counts: list[int] = field(default_factory=list)

    @property
    def table_names(self) -> list[str]:
        """Names of the foreign tables in this batch."""
        return [candidate.foreign_table for candidate in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)


def estimate_feature_count(candidate: JoinCandidate, repository: DataRepository) -> int:
    """Number of feature columns a candidate join would contribute.

    Every foreign column except the join keys becomes a feature column (one-hot
    expansion is ignored here; the budget is a coarse control, not an exact
    accounting).
    """
    # repository.schema serves disk-backed tables from catalog headers, so
    # planning over a lazy repository never materialises a candidate table
    schema = repository.schema(candidate.foreign_table)
    key_columns = set(candidate.foreign_columns)
    return max(0, len(schema) - len(key_columns))


def build_join_plan(
    candidates: list[JoinCandidate],
    repository: DataRepository,
    strategy: str = "budget",
    budget: int = 200,
) -> list[JoinBatch]:
    """Group candidates into ordered batches according to the strategy."""
    ordered = sorted(candidates, key=lambda c: -c.score)
    if strategy == "table":
        widths = [estimate_feature_count(c, repository) for c in ordered]
        return [
            JoinBatch([candidate], width, [width])
            for candidate, width in zip(ordered, widths)
        ]
    if strategy == "full":
        widths = [estimate_feature_count(c, repository) for c in ordered]
        return [JoinBatch(list(ordered), sum(widths), widths)] if ordered else []
    if strategy != "budget":
        raise ValueError(f"unknown join plan strategy {strategy!r}")

    batches: list[JoinBatch] = []
    current = JoinBatch()
    for candidate in ordered:
        width = estimate_feature_count(candidate, repository)
        fits = current.estimated_features + width <= budget
        if current.candidates and not fits:
            batches.append(current)
            current = JoinBatch()
        current.candidates.append(candidate)
        current.estimated_features += width
        current.feature_counts.append(width)
        # a single table wider than the budget ships alone ("an exception to
        # this rule happens when a single table has more features than rows")
        if current.estimated_features >= budget:
            batches.append(current)
            current = JoinBatch()
    if current.candidates:
        batches.append(current)
    return batches
