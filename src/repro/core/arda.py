"""The ARDA system: end-to-end automatic relational data augmentation.

Given a base table (with a prediction target), a repository of candidate
tables and a collection of candidate joins, :class:`ARDA` produces an augmented
table containing all original columns plus the foreign columns that actually
improve a predictive model, following the workflow of section 3 of the paper:

1. (optional) discover candidate joins if none are supplied,
2. (optional) pre-filter candidates with the Tuple-Ratio rule,
3. build a coreset of base-table rows,
4. build a join plan (budget batching by default),
5. for each batch: execute the joins, impute, encode, and run feature
   selection (RIFS by default) to decide which foreign columns to keep,
6. materialise the kept columns onto the full base table and train the final
   estimator to measure the achieved augmentation.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.coreset import make_coreset_builder
from repro.coreset.base import default_coreset_size
from repro.core.config import ARDAConfig
from repro.core.executor import make_executor
from repro.core.join_execution import join_candidates_detailed, replay_kept_joins
from repro.core.join_plan import build_join_plan
from repro.core.results import AugmentationReport, BatchReport
from repro.datasets.bundle import AugmentationDataset
from repro.discovery.candidates import JoinCandidate
from repro.discovery.discovery import JoinDiscovery
from repro.discovery.repository import DataRepository, RepositorySnapshot
from repro.ml.automl import AutoMLSearch
from repro.relational.column import Column
from repro.relational.encoding import encode_features_binned, to_design_matrix
from repro.relational.imputation import impute_table
from repro.relational.join import (
    StreamingHashJoin,
    StreamJoinStats,
    _output_names,
    as_chunk_source,
    estimate_source_nbytes,
    iter_grace_left_join,
)
from repro.relational.persist import write_table_stream
from repro.relational.schema import CATEGORICAL, NUMERIC
from repro.relational.table import Table, unique_name
from repro.selection import make_selector
from repro.selection.base import default_estimator, holdout_score, infer_task
from repro.selection.tuple_ratio import TupleRatioFilter


class ARDA:
    """Automatic relational data augmentation system."""

    def __init__(self, config: ARDAConfig | None = None):
        self.config = config or ARDAConfig()
        # the repository opened from config.repository_dir, kept across
        # augment calls so sweeps reuse the warm catalog, LRU and profiles
        self._opened_repository: DataRepository | None = None
        self._opened_repository_key: tuple | None = None

    # -- public API -----------------------------------------------------------------

    def augment(self, dataset: AugmentationDataset) -> AugmentationReport:
        """Run the full pipeline on a prepared :class:`AugmentationDataset`."""
        return self.augment_tables(
            base_table=dataset.base_table,
            repository=dataset.repository,
            target=dataset.target,
            candidates=dataset.candidates or None,
            task=dataset.task,
            soft_key_columns=dataset.soft_key_columns,
            dataset_name=dataset.name,
        )

    def augment_tables(
        self,
        base_table: Table,
        repository: DataRepository | RepositorySnapshot | None,
        target: str,
        candidates: list[JoinCandidate] | None = None,
        task: str | None = None,
        soft_key_columns: list[str] | None = None,
        dataset_name: str = "",
        augmented_path: str | Path | None = None,
    ) -> AugmentationReport:
        """Run the full pipeline on raw tables.

        ``candidates`` may be omitted, in which case join discovery is run over
        the repository first (the paper's normal mode is to consume an external
        discovery system's output).  ``repository`` may also be omitted
        (``None``) when ``config.repository_dir`` names a directory of binary
        table files: the pipeline then opens it as a lazy disk-backed
        repository with ``config.lru_tables`` decoded tables kept alive.

        With ``config.pin_snapshot`` on (the default), the whole run reads one
        pinned manifest generation
        (:meth:`~repro.discovery.repository.DataRepository.snapshot`): a
        concurrent ``replace``/``remove`` on the repository can never hand
        discovery one version of a table and the final materialisation
        another.  Pass a :class:`~repro.discovery.repository.RepositorySnapshot`
        directly to control the pinned generation yourself.

        Out-of-core mode: ``base_table`` may be a chunked table source
        (:class:`~repro.relational.persist.ChunkedTableReader`, anything with
        ``iter_chunks``) instead of a :class:`Table`.  The pipeline then never
        materialises the base: the coreset is gathered with a chunk-pruned
        :meth:`~repro.relational.persist.ChunkedTableReader.take`, feature
        selection runs on the coreset exactly as before, and the final
        materialisation streams base chunks through build-once hash joins with
        zone-map pruning, writing the augmented table chunk-by-chunk to
        ``augmented_path`` (no full output is written when the path is
        omitted).  Peak memory is bounded by the coreset plus one chunk wave
        (``config.memory_budget``) plus the build sides.  In this mode the
        report's ``augmented_table`` holds the *coreset* materialisation, the
        scores are coreset-level, ``augmented_path``/``stream_stats`` record
        the streamed output and the per-table pruning ratios, and a kept
        *soft* join falls back to materialising the base (soft joins need
        global nearest-neighbour context).
        """
        config = self.config
        start = time.perf_counter()
        base_source = None
        if not isinstance(base_table, Table) and hasattr(base_table, "iter_chunks"):
            base_source = as_chunk_source(base_table)
        repository = self._resolve_repository(repository)
        if config.pin_snapshot and isinstance(repository, DataRepository):
            # the pin is dropped when this snapshot goes out of scope at the
            # end of the call (weakref-finalised), or — if a pipeline capture
            # binds it — when the captured pipeline is dropped
            repository = repository.snapshot()
        if target not in base_table:
            raise KeyError(f"target column {target!r} not found in base table")
        if task is None:
            from repro.relational.encoding import encode_target

            task = infer_task(encode_target(base_table.column(target)))

        discovery_time = 0.0
        if candidates is None:
            discovery_start = time.perf_counter()
            discovery = JoinDiscovery(use_cache=config.cache_profiles)
            # sharded profiling: fan per-(table, chunk-range) work over the
            # configured executor backend; rankings are byte-identical to
            # serial, so this knob changes wall-clock only
            discovery_jobs = (
                config.discovery_n_jobs
                if config.discovery_n_jobs is not None
                else config.n_jobs
            )
            discovery_executor = (
                make_executor(config.executor, discovery_jobs)
                if config.executor != "serial"
                else None
            )
            try:
                candidates = discovery.discover(
                    base_table,
                    repository,
                    target=target,
                    soft_key_columns=soft_key_columns,
                    executor=discovery_executor,
                )
            finally:
                if discovery_executor is not None:
                    discovery_executor.shutdown()
            if config.persist_profiles and repository.is_disk_backed:
                # the next process serves every discovery profile from the
                # sidecar without reading a single table body; a repository
                # on read-only storage just skips the save (best effort)
                try:
                    repository.save_profiles()
                except OSError:
                    pass
            discovery_time = time.perf_counter() - discovery_start
        candidates = list(candidates)
        tables_considered = len(candidates)

        # Tuple-Ratio pre-filter (Table 4)
        tables_filtered = 0
        if config.tuple_ratio_tau is not None:
            tr_filter = TupleRatioFilter(tau=config.tuple_ratio_tau)
            keep, _decisions = tr_filter.filter_candidates(
                base_table.num_rows,
                [
                    (repository.get(c.foreign_table), c.foreign_columns)
                    for c in candidates
                ],
            )
            tables_filtered = len(candidates) - len(keep)
            candidates = [candidates[i] for i in keep]

        # coreset construction
        coreset_start = time.perf_counter()
        if base_source is not None:
            coreset = self._build_coreset_streamed(base_source, target)
        else:
            coreset = self._build_coreset(base_table, target)
        coreset_time = time.perf_counter() - coreset_start

        # join plan
        budget = config.budget if config.budget is not None else max(coreset.num_rows, 50)
        batches = build_join_plan(
            candidates, repository, strategy=config.join_plan, budget=budget
        )
        executor = make_executor(config.executor, config.n_jobs)

        estimator = self._make_selection_estimator(task)
        rng = np.random.default_rng(config.random_state)

        # baseline on the coreset (used for batch-level comparisons only)
        selector = make_selector(
            config.selector, random_state=config.random_state, **self._selector_options()
        )
        # selectors that advertise accepts_binned get the table's quantised
        # design matrix alongside the float one (same feature layout), so the
        # histogram kernel reads categorical dictionary codes straight into
        # bin codes without ever materialising decoded strings; the probe asks
        # the configured instance so an all-exact custom ranker list doesn't
        # pay for a binning pass it would discard
        binned_probe = getattr(selector, "uses_binned_matrix", None)
        share_binned = (
            getattr(selector, "accepts_binned", False)
            and callable(binned_probe)
            and binned_probe(task)
        )

        kept_columns: list[str] = []
        kept_tables: list[str] = []
        # (candidate, kept positions within its added columns, loop-time names)
        kept_specs: list[tuple[JoinCandidate, list[int], list[str]]] = []
        kept_spec_batches: list[int] = []  # batch index that kept each spec
        batch_reports: list[BatchReport] = []
        working = coreset
        join_time = 0.0
        selection_time = 0.0
        try:
            for batch_index, batch in enumerate(batches):
                join_start = time.perf_counter()
                joined, added_per_candidate = join_candidates_detailed(
                    working,
                    repository,
                    batch.candidates,
                    soft_strategy=config.soft_join,
                    time_resample=config.time_resample,
                    rng=rng,
                    executor=executor,
                    widths=batch.feature_counts,
                )
                batch_join_time = time.perf_counter() - join_start
                join_time += batch_join_time
                foreign_columns = [name for names in added_per_candidate for name in names]
                if not foreign_columns:
                    continue

                imputed = impute_table(joined, seed=config.random_state)
                X, y, encoding = to_design_matrix(
                    imputed,
                    target,
                    max_categories=config.max_categories,
                    seed=config.random_state,
                )
                foreign_set = set(foreign_columns)
                selection_start = time.perf_counter()
                if share_binned:
                    # the table is imputed two lines up, so the binning pass
                    # skips its own (idempotent) imputation
                    binned = encode_features_binned(
                        imputed,
                        exclude=[target],
                        max_categories=config.max_categories,
                        impute=False,
                        seed=config.random_state,
                        max_bins=config.max_bins,
                    )
                    result = selector.select(
                        X, y, task=task, estimator=estimator, binned=binned
                    )
                else:
                    result = selector.select(X, y, task=task, estimator=estimator)
                selection_time += time.perf_counter() - selection_start

                selected_sources = {encoding.source_columns[i] for i in result.selected}
                newly_kept = [name for name in foreign_columns if name in selected_sources]
                batch_score = holdout_score(
                    X[:, result.selected], y, task, estimator=estimator,
                    random_state=config.random_state,
                ) if len(result.selected) else -np.inf
                batch_reports.append(
                    BatchReport(
                        batch_index=batch_index,
                        table_names=batch.table_names,
                        columns_considered=len(foreign_columns),
                        columns_kept=newly_kept,
                        selection_time=result.elapsed,
                        holdout_score=float(batch_score),
                        join_time=batch_join_time,
                    )
                )
                if newly_kept:
                    kept_columns.extend(newly_kept)
                    newly_kept_set = set(newly_kept)
                    for candidate, added in zip(batch.candidates, added_per_candidate):
                        positions = [
                            index
                            for index, name in enumerate(added)
                            if name in newly_kept_set
                        ]
                        if positions:
                            kept_tables.append(candidate.foreign_table)
                            kept_specs.append(
                                (candidate, positions, [added[i] for i in positions])
                            )
                            kept_spec_batches.append(batch_index)
                    # carry the kept columns forward so later batches can find
                    # co-predictors that span tables
                    carry = [c for c in joined.column_names if c not in foreign_set or c in newly_kept]
                    working = joined.select(carry)

            # final materialisation on the full base table.  In streamed mode
            # the full output goes chunk-by-chunk to augmented_path and the
            # in-memory materialisation (scores, pipeline capture) is done on
            # the coreset, keeping the working set bounded.
            join_start = time.perf_counter()
            stream_stats: dict[str, StreamJoinStats] | None = None
            out_path: Path | None = None
            if base_source is not None:
                augmented_full = self._materialise_kept(
                    coreset, repository, kept_specs, executor
                )
                out_path, stream_stats = self._materialise_kept_streamed(
                    base_source, repository, kept_specs, executor, augmented_path
                )
            else:
                augmented_full = self._materialise_kept(
                    base_table, repository, kept_specs, executor
                )
            join_time += time.perf_counter() - join_start
        finally:
            executor.shutdown()

        fit_start = time.perf_counter()
        score_base = coreset if base_source is not None else base_table
        base_score = self._final_score(score_base, target, task)
        pipeline = None
        has_features = any(name != target for name in augmented_full.column_names)
        if config.capture_pipeline and has_features:
            # the capture path fits imputer/encoder through the serving
            # kernels, which reproduce impute_table + to_design_matrix
            # byte-for-byte — the holdout score below is therefore identical
            # to the pre-capture _final_score(augmented_full, ...) result
            from repro.serving.pipeline import fit_pipeline_from_training

            pipeline, X_full, y_full = fit_pipeline_from_training(
                target=target,
                task=task,
                base_table=score_base,
                augmented_table=augmented_full,
                kept_specs=kept_specs,
                repository=repository,
                estimator=self._make_serving_estimator(task),
                seed=config.random_state,
                soft_strategy=config.soft_join,
                time_resample=config.time_resample,
                max_categories=config.max_categories,
                batch_of_spec=dict(enumerate(kept_spec_batches)),
                metadata={"dataset": dataset_name or base_table.name},
            )
            augmented_score = holdout_score(
                X_full,
                y_full,
                task,
                estimator=self._make_final_estimator(task),
                test_size=config.test_size,
                random_state=config.random_state,
            )
        else:
            augmented_score = self._final_score(augmented_full, target, task)
        fit_time = time.perf_counter() - fit_start

        report = AugmentationReport(
            dataset_name=dataset_name or base_table.name,
            task=task,
            base_score=base_score,
            augmented_score=augmented_score,
            augmented_table=augmented_full,
            kept_columns=kept_columns,
            kept_tables=sorted(set(kept_tables)),
            batches=batch_reports,
            tables_considered=tables_considered,
            tables_filtered_out=tables_filtered,
            total_time=time.perf_counter() - start,
            selection_time=selection_time,
            join_time=join_time,
            discovery_time=discovery_time,
            coreset_time=coreset_time,
            fit_time=fit_time,
            executor=executor.name,
            pipeline=pipeline,
            augmented_path=out_path if base_source is not None else None,
            stream_stats=stream_stats,
        )
        report.record_metrics()
        return report

    # -- helpers ----------------------------------------------------------------------

    def _resolve_repository(
        self, repository: DataRepository | RepositorySnapshot | None
    ) -> DataRepository | RepositorySnapshot:
        """Use the given repository, or open the configured disk-backed one.

        The opened repository is cached on this instance, so repeated
        ``augment`` calls in one process reuse the warm catalog, decoded-table
        LRU and profile cache instead of re-reading headers and sidecar.
        """
        if repository is not None:
            return repository
        if self.config.repository_dir is None:
            raise ValueError(
                "no repository given and ARDAConfig.repository_dir is not set"
            )
        key = (str(self.config.repository_dir), self.config.lru_tables)
        if self._opened_repository is None or self._opened_repository_key != key:
            self._opened_repository = DataRepository.open(
                self.config.repository_dir, lru_tables=self.config.lru_tables
            )
            self._opened_repository_key = key
        return self._opened_repository

    def _materialise_kept(
        self,
        base_table: Table,
        repository: DataRepository | RepositorySnapshot,
        kept_specs: list[tuple[JoinCandidate, list[int], list[str]]],
        executor,
    ) -> Table:
        """Re-execute the kept joins on the full base table.

        Delegates to :func:`repro.core.join_execution.replay_kept_joins` —
        the same positional-match/pinned-name replay kernel serving uses
        (see its docstring for why matching by position is required).
        """
        config = self.config
        return replay_kept_joins(
            base_table,
            repository,
            kept_specs,
            soft_strategy=config.soft_join,
            time_resample=config.time_resample,
            rng=np.random.default_rng(config.random_state),
            executor=executor,
        )

    def _build_coreset_streamed(self, source, target: str) -> Table:
        """Coreset of an out-of-core base without materialising it.

        The configured coreset builder runs on a two-column skeleton (target
        plus a row-index column), so its sampling decisions — strategy,
        stratification, RNG stream — are exactly the in-memory builder's; the
        sampled row indices are then gathered from the chunk source with
        :meth:`~repro.relational.persist.ChunkedTableReader.take`, which reads
        only the chunks that hold sampled rows.  Peak memory is one full
        column (the target) plus the gathered coreset.  ``"none"`` (or a
        coreset at least as large as the base) has to materialise everything
        — that is what the caller asked for.
        """
        config = self.config
        size = config.coreset_size or default_coreset_size(source.num_rows)
        if config.coreset_strategy == "none" or size >= source.num_rows:
            return source.table()
        row_name = unique_name("__arda_row__", set(source.column_names))
        skeleton = Table(
            [
                source.column(target),
                Column.from_array(
                    row_name,
                    np.arange(source.num_rows, dtype=np.float64),
                    NUMERIC,
                ),
            ],
            name=source.name,
        )
        builder = make_coreset_builder(
            config.coreset_strategy, random_state=config.random_state
        )
        reduced = builder.reduce_table(skeleton, size, target=target)
        indices = reduced.column(row_name).values.astype(np.int64)
        return source.take(indices)

    def _materialise_kept_streamed(
        self,
        source,
        repository: DataRepository | RepositorySnapshot,
        kept_specs: list[tuple[JoinCandidate, list[int], list[str]]],
        executor,
        augmented_path: str | Path | None,
    ) -> tuple[Path | None, dict[str, StreamJoinStats]]:
        """Stream the kept joins over every base chunk into ``augmented_path``.

        Each kept hard join becomes one build-once
        :class:`~repro.relational.join.StreamingHashJoin`; base chunks are
        then consumed sequentially, each chunk's zone map is tested against
        every build side (a chunk that cannot match gets that join's NULL
        columns without probing), and the kept columns — matched by position
        within the join's output, renamed to their pinned names, exactly as
        :func:`~repro.core.join_execution.replay_kept_joins` does — are
        appended to the chunk before it is written out through
        :func:`~repro.relational.persist.write_table_stream`.  Concatenating
        the output chunks equals the in-memory replay on ``source.table()``.

        A kept *soft* join needs global nearest-neighbour context, so its
        presence falls back to one in-memory replay of the whole base
        (streamed back out afterwards); hard joins — the common case — keep
        peak memory at one chunk plus the prepared build sides.  Every build
        side is first projected to its keys plus the kept output columns
        (dropped columns are never aggregated or decoded), and a projected
        build that still exceeds ``config.memory_budget`` (or when
        ``config.spill_partitions`` forces it) runs as a Grace spill join
        (:func:`~repro.relational.join.iter_grace_left_join`) advanced in
        chunk lockstep with the fused loop — identical output, peak heap
        bounded by one partition.

        Returns the written path (``None`` when no path was given) and
        per-foreign-table pruning stats.
        """
        config = self.config
        stats: dict[str, StreamJoinStats] = {}
        if augmented_path is None:
            return None, stats
        augmented_path = Path(augmented_path)
        if any(spec[0].is_soft for spec in kept_specs):
            full = replay_kept_joins(
                source.table(),
                repository,
                kept_specs,
                soft_strategy=config.soft_join,
                time_resample=config.time_resample,
                rng=np.random.default_rng(config.random_state),
                executor=executor,
            )
            write_table_stream(
                augmented_path,
                as_chunk_source(full, chunk_rows=config.chunk_rows).iter_chunks(),
                name=source.name,
                chunk_rows=config.chunk_rows,
            )
            return augmented_path, stats

        schema = source.schema()
        num_source_columns = len(schema.names)
        # ("hash", joiner, ...) probes in the fused chunk loop below;
        # ("grace", iterator, ...) is a build side too big for the memory
        # budget, hash-partitioned to spill files and advanced in lockstep
        # (iter_grace_left_join yields exactly one output table per source
        # chunk, so the fused loop and the spill joins stay chunk-aligned)
        joiners: list[tuple[str, object, list[int], list[str], str]] = []
        force_spill = (
            config.spill_partitions is not None and config.spill_partitions > 1
        )
        for candidate, positions, names in kept_specs:
            foreign = repository.get(candidate.foreign_table)
            foreign = foreign.prefix_columns(
                f"{foreign.name}.", exclude=candidate.foreign_columns
            )
            key_pairs = candidate.key_pairs()
            right_keys = [pair[1] for pair in key_pairs]
            # project the build side to keys + kept output columns: columns
            # the selector dropped are never aggregated, hashed, or decoded
            pairs_full = _output_names(foreign, right_keys, schema.names, "_r")
            kept_right = [pairs_full[position][0] for position in positions]
            needed = list(dict.fromkeys(list(right_keys) + kept_right))
            projected = foreign.select(needed)
            table_stats = stats.setdefault(candidate.foreign_table, StreamJoinStats())
            build_bytes = estimate_source_nbytes(as_chunk_source(projected))
            if force_spill or (
                config.memory_budget is not None
                and build_bytes > config.memory_budget
            ):
                grace = iter_grace_left_join(
                    source,
                    as_chunk_source(projected, chunk_rows=config.chunk_rows),
                    on=key_pairs,
                    num_partitions=config.spill_partitions,
                    memory_budget=config.memory_budget,
                    spill_dir=config.spill_dir,
                    stats=table_stats,
                )
                # kept columns by position inside the grace output chunk:
                # source columns first, then the projected build's outputs
                pairs_projected = _output_names(
                    projected, right_keys, schema.names, "_r"
                )
                projected_order = [pair[0] for pair in pairs_projected]
                grace_positions = [
                    num_source_columns + projected_order.index(right_name)
                    for right_name in kept_right
                ]
                joiners.append(
                    ("grace", grace, grace_positions, names, candidate.foreign_table)
                )
                continue
            joiner = StreamingHashJoin(projected, key_pairs, schema)
            # positions within the projected joiner's output: its non-key
            # columns are exactly kept_right, in first-appearance order
            output_order = [pair[0] for pair in joiner.output]
            hash_positions = [
                output_order.index(right_name) for right_name in kept_right
            ]
            joiners.append(
                ("hash", joiner, hash_positions, names, candidate.foreign_table)
            )
            table_stats.chunks_total += source.num_chunks
            table_stats.rows_total += source.num_rows

        def augmented_chunks():
            for index in range(source.num_chunks):
                chunk = source.chunk(index)
                zones = source.zones(index)
                columns = list(chunk.columns())
                for kind, engine, positions, names, foreign_name in joiners:
                    if kind == "grace":
                        out_chunk = next(engine)
                        out_columns = out_chunk.columns()
                        for position, name in zip(positions, names):
                            columns.append(out_columns[position].rename(name))
                        continue
                    joiner = engine
                    dictionaries = {
                        key: source.dictionary(key)
                        for key in joiner.left_keys
                        if schema.type_of(key) is CATEGORICAL
                    }
                    table_stats = stats[foreign_name]
                    if not joiner.chunk_may_match(zones, dictionaries):
                        gathered = joiner.null_columns(chunk.num_rows)
                    else:
                        match_index = joiner.probe_chunk(chunk)
                        table_stats.chunks_probed += 1
                        table_stats.rows_probed += chunk.num_rows
                        table_stats.rows_matched += int((match_index >= 0).sum())
                        gathered = joiner.gather(match_index)
                    for position, name in zip(positions, names):
                        columns.append(gathered[position].rename(name))
                yield Table(columns, name=source.name)

        write_table_stream(
            augmented_path,
            augmented_chunks(),
            name=source.name,
            chunk_rows=config.chunk_rows,
        )
        return augmented_path, stats

    def _build_coreset(self, base_table: Table, target: str) -> Table:
        config = self.config
        if config.coreset_strategy == "none":
            return base_table
        size = config.coreset_size or default_coreset_size(base_table.num_rows)
        if size >= base_table.num_rows:
            return base_table
        builder = make_coreset_builder(
            config.coreset_strategy, random_state=config.random_state
        )
        return builder.reduce_table(base_table, size, target=target)

    def _selector_options(self) -> dict:
        """Selector kwargs from config; RIFS inherits the engine-level knobs.

        Explicit ``selector_options`` always win; the executor kind is shared
        with the join engine and ``selection_n_jobs`` (falling back to
        ``n_jobs``) sizes the round fan-out.
        """
        config = self.config
        options = dict(config.selector_options)
        key = config.selector.strip().lower()
        if key in ("rifs", "random forest"):
            # forest-backed selectors train on the configured split kernel;
            # other selectors' holdout scoring already gets it via the
            # estimator this class builds
            options.setdefault("tree_method", config.tree_method)
            options.setdefault("max_bins", config.max_bins)
        if key == "rifs":
            options.setdefault("executor", config.executor)
            options.setdefault(
                "n_jobs",
                config.selection_n_jobs
                if config.selection_n_jobs is not None
                else config.n_jobs,
            )
        return options

    def _make_selection_estimator(self, task: str):
        """The (cheap) estimator used inside feature-selection search loops."""
        options = dict(self.config.estimator_options)
        n_estimators = options.get("n_estimators", 20)
        return default_estimator(
            task,
            random_state=self.config.random_state,
            n_estimators=n_estimators,
            tree_method=self.config.tree_method,
            max_bins=self.config.max_bins,
        )

    def _make_serving_estimator(self, task: str):
        """The estimator serialised into the captured serving pipeline.

        Always a random forest (the paper's estimator): forests round-trip
        through the binary artifact bit-exactly via
        :mod:`repro.ml.persistence`.  With ``estimator="automl"`` the AutoML
        search still produces the *reported* scores, but the artifact carries
        the forest — AutoML's winner can be any model family, which would
        make artifacts unserialisable in the general case.
        """
        return self._make_selection_estimator(task)

    def _make_final_estimator(self, task: str):
        """The final estimator used for the reported scores."""
        if self.config.estimator == "automl":
            automl_task = "classification" if task == "classification" else "regression"
            options = {"time_budget": 15.0, "max_trials": 8}
            options.update(self.config.estimator_options)
            return AutoMLSearch(
                task=automl_task, random_state=self.config.random_state, **options
            )
        return self._make_selection_estimator(task)

    def _final_score(self, table: Table, target: str, task: str) -> float:
        """Holdout score of the final estimator on a materialised table."""
        X, y, _encoding = to_design_matrix(
            impute_table(table, seed=self.config.random_state),
            target,
            max_categories=self.config.max_categories,
            seed=self.config.random_state,
        )
        return holdout_score(
            X,
            y,
            task,
            estimator=self._make_final_estimator(task),
            test_size=self.config.test_size,
            random_state=self.config.random_state,
        )
