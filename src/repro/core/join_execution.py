"""Join execution: bring one candidate table's columns onto the base table.

Execution handles everything section 4 of the paper describes:

* hard keys via hash LEFT joins (pre-aggregating the foreign table when the
  join would otherwise be one-to-many / many-to-many),
* soft keys via nearest-neighbour or two-way nearest-neighbour joins,
* time-granularity mismatches via resampling of the finer-grained table,
* column-name collisions via per-table prefixes, and
* missing values produced by unmatched rows via the imputation layer.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import JoinExecutor, SerialJoinExecutor, longest_first_order
from repro.discovery.candidates import JoinCandidate
from repro.discovery.repository import DataRepository
from repro.relational.column import Column
from repro.relational.join import left_join
from repro.relational.resample import align_time_granularity
from repro.relational.schema import DATETIME
from repro.relational.soft_join import nearest_join, two_way_nearest_join
from repro.relational.table import Table, unique_name


def execute_join(
    base: Table,
    foreign: Table,
    candidate: JoinCandidate,
    soft_strategy: str = "two_way_nearest",
    time_resample: bool = True,
    prefix_columns: bool = True,
    rng: np.random.Generator | None = None,
) -> Table:
    """LEFT-join one candidate's columns onto ``base`` and return the result.

    All base-table rows are preserved.  Foreign columns are prefixed with the
    foreign table's name so features can be traced back to their source table.
    """
    if prefix_columns:
        foreign = foreign.prefix_columns(
            f"{foreign.name}.", exclude=candidate.foreign_columns
        )
    if candidate.is_soft:
        return _execute_soft_join(
            base, foreign, candidate, soft_strategy, time_resample, rng
        )
    return left_join(base, foreign, on=candidate.key_pairs())


def _execute_soft_join(
    base: Table,
    foreign: Table,
    candidate: JoinCandidate,
    soft_strategy: str,
    time_resample: bool,
    rng: np.random.Generator | None,
) -> Table:
    """Soft-join on the (single) soft key of a candidate."""
    soft_keys = [key for key in candidate.keys if key.soft]
    hard_keys = [key for key in candidate.keys if not key.soft]
    if len(soft_keys) != 1 or hard_keys:
        # mixed composite keys: fall back to a hard join on all keys, after
        # aligning time granularity on the soft components
        working = foreign
        if time_resample:
            for key in soft_keys:
                working = align_time_granularity(
                    base, working, key.base_column, key.foreign_column
                )
        return left_join(base, working, on=candidate.key_pairs())

    key = soft_keys[0]
    working = foreign
    is_time_key = (
        base.column(key.base_column).ctype is DATETIME
        or foreign.column(key.foreign_column).ctype is DATETIME
    )
    if time_resample and is_time_key:
        working = align_time_granularity(
            base, working, key.base_column, key.foreign_column
        )
    if soft_strategy == "hard":
        return left_join(base, working, on=[(key.base_column, key.foreign_column)])
    if soft_strategy == "nearest":
        return nearest_join(base, working, key.base_column, key.foreign_column)
    if soft_strategy == "two_way_nearest":
        return two_way_nearest_join(
            base, working, key.base_column, key.foreign_column, rng=rng
        )
    raise ValueError(f"unknown soft join strategy {soft_strategy!r}")


def _contributed_columns(
    task: tuple[Table, Table, JoinCandidate, str, bool, np.random.Generator | None],
) -> list[Column]:
    """Worker: run one candidate join and return only the columns it added.

    Module-level (not a closure) so the process-pool backend can pickle it.
    The base handed in is a projection onto the candidate's key columns and
    only the new foreign columns travel back, so a process worker never
    pickles base feature data in either direction.  Categorical columns
    serialise as int32 code arrays plus their string dictionary (see
    ``Column.__getstate__``), so even the foreign payload ships no per-row
    strings.
    """
    base, foreign, candidate, soft_strategy, time_resample, rng = task
    joined = execute_join(
        base,
        foreign,
        candidate,
        soft_strategy=soft_strategy,
        time_resample=time_resample,
        rng=rng,
    )
    base_names = set(base.column_names)
    return [col for col in joined.columns() if col.name not in base_names]


def replay_kept_joins(
    base: Table,
    repository: DataRepository,
    specs: list[tuple[JoinCandidate, list[int], list[str]]],
    soft_strategy: str = "two_way_nearest",
    time_resample: bool = True,
    rng: np.random.Generator | None = None,
    executor: JoinExecutor | None = None,
) -> Table:
    """Re-execute a list of kept joins on ``base`` under pinned output names.

    ``specs`` pairs each candidate with the *positions* (within the columns
    that candidate adds, in foreign-table column order) and the output names
    of the columns to keep.  Collision suffixes depend on which other columns
    are present when a batch is joined, so a kept column's freshly-joined
    name can differ from the name feature selection saw — matching by
    position and renaming to the pinned name guarantees the result carries
    exactly the chosen columns under the recorded names, on any base table
    that provides the key columns.

    This is the single replay kernel behind both the training-time final
    materialisation (:meth:`repro.core.arda.ARDA.augment_tables`) and the
    serving-time :meth:`repro.serving.FittedPipeline.transform` — train and
    serve cannot drift because they run the same code.  Determinism matches
    :func:`join_candidates_detailed`: per-candidate RNGs are spawned from
    ``rng``, so results are byte-identical across executor backends.
    """
    joined, added_per_candidate = join_candidates_detailed(
        base,
        repository,
        [spec[0] for spec in specs],
        soft_strategy=soft_strategy,
        time_resample=time_resample,
        rng=rng,
        executor=executor,
    )
    out_columns = list(base.columns())
    for (candidate, positions, names), added in zip(specs, added_per_candidate):
        for position, name in zip(positions, names):
            out_columns.append(joined.column(added[position]).rename(name))
    return Table(out_columns, name=base.name)


def join_candidates(
    base: Table,
    repository: DataRepository,
    candidates: list[JoinCandidate],
    soft_strategy: str = "two_way_nearest",
    time_resample: bool = True,
    rng: np.random.Generator | None = None,
    executor: JoinExecutor | None = None,
    suffix: str = "_r",
    widths: list[int] | None = None,
) -> tuple[Table, dict[str, list[str]]]:
    """Join every candidate in a batch onto ``base``.

    Returns the joined table and a mapping from foreign table name to the list
    of column names it contributed, which the pipeline uses to trace selected
    features back to tables.  See :func:`join_candidates_detailed` for the
    execution model; this wrapper only aggregates its per-candidate column
    lists by foreign table.
    """
    candidates = list(candidates)
    joined, added_per_candidate = join_candidates_detailed(
        base,
        repository,
        candidates,
        soft_strategy=soft_strategy,
        time_resample=time_resample,
        rng=rng,
        executor=executor,
        suffix=suffix,
        widths=widths,
    )
    contributed: dict[str, list[str]] = {}
    for candidate, added in zip(candidates, added_per_candidate):
        contributed.setdefault(candidate.foreign_table, []).extend(added)
    return joined, contributed


def join_candidates_detailed(
    base: Table,
    repository: DataRepository,
    candidates: list[JoinCandidate],
    soft_strategy: str = "two_way_nearest",
    time_resample: bool = True,
    rng: np.random.Generator | None = None,
    executor: JoinExecutor | None = None,
    suffix: str = "_r",
    widths: list[int] | None = None,
) -> tuple[Table, list[list[str]]]:
    """Join every candidate onto ``base``, tracking added columns per candidate.

    Every join is a LEFT join that preserves base rows and order and only adds
    columns, and candidate keys always reference base-table columns, so the
    batch decomposes into independent per-candidate tasks: each candidate is
    joined against a projection of ``base`` onto its key columns (optionally
    in parallel on ``executor``), and the contributed columns are spliced back
    in candidate order.  Column-name collisions between candidates are
    resolved at merge time with ``suffix``, and each candidate gets its own
    generator spawned deterministically from ``rng`` — both choices make the
    output identical regardless of the executor backend.

    ``widths`` optionally supplies the planner's per-candidate feature
    estimates (``JoinBatch.feature_counts``) used to schedule the widest joins
    first on a parallel executor.

    Returns the joined table and, aligned with ``candidates``, the list of
    column names each candidate added.  A candidate's columns keep a stable
    order (the foreign table's column order) even when collision suffixing
    renames them, so position within the list identifies a column across
    differently-named joins of the same candidate.
    """
    candidates = list(candidates)
    if not candidates:
        return base, []
    if executor is None:
        executor = SerialJoinExecutor()
    child_rngs = rng.spawn(len(candidates)) if rng is not None else [None] * len(candidates)
    foreigns = [repository.get(c.foreign_table) for c in candidates]
    tasks = []
    for foreign, candidate, child_rng in zip(foreigns, candidates, child_rngs):
        # ship only the key columns of the base: the join match depends on
        # nothing else, and a process worker then never pickles feature data
        base_view = base.select(list(dict.fromkeys(candidate.base_columns)))
        tasks.append((base_view, foreign, candidate, soft_strategy, time_resample, child_rng))
    # submit widest tables first (LPT scheduling) to minimise pool makespan;
    # results are mapped back to candidate order before merging
    if widths is None or len(widths) != len(candidates):
        widths = [foreign.num_columns for foreign in foreigns]
    order = longest_first_order(widths)
    mapped = executor.map(_contributed_columns, [tasks[i] for i in order])
    results: list[list[Column]] = [[] for _ in tasks]
    for rank, index in enumerate(order):
        results[index] = mapped[rank]

    out_columns = list(base.columns())
    existing = set(base.column_names)
    added_per_candidate: list[list[str]] = []
    for new_columns in results:
        added = []
        for col in new_columns:
            name = unique_name(col.name, existing, suffix)
            if name != col.name:
                col = col.rename(name)
            existing.add(name)
            out_columns.append(col)
            added.append(name)
        added_per_candidate.append(added)
    return Table(out_columns, name=base.name), added_per_candidate
