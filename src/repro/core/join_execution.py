"""Join execution: bring one candidate table's columns onto the base table.

Execution handles everything section 4 of the paper describes:

* hard keys via hash LEFT joins (pre-aggregating the foreign table when the
  join would otherwise be one-to-many / many-to-many),
* soft keys via nearest-neighbour or two-way nearest-neighbour joins,
* time-granularity mismatches via resampling of the finer-grained table,
* column-name collisions via per-table prefixes, and
* missing values produced by unmatched rows via the imputation layer.
"""

from __future__ import annotations

import numpy as np

from repro.discovery.candidates import JoinCandidate
from repro.discovery.repository import DataRepository
from repro.relational.join import left_join
from repro.relational.resample import align_time_granularity
from repro.relational.schema import DATETIME
from repro.relational.soft_join import nearest_join, two_way_nearest_join
from repro.relational.table import Table


def execute_join(
    base: Table,
    foreign: Table,
    candidate: JoinCandidate,
    soft_strategy: str = "two_way_nearest",
    time_resample: bool = True,
    prefix_columns: bool = True,
    rng: np.random.Generator | None = None,
) -> Table:
    """LEFT-join one candidate's columns onto ``base`` and return the result.

    All base-table rows are preserved.  Foreign columns are prefixed with the
    foreign table's name so features can be traced back to their source table.
    """
    if prefix_columns:
        foreign = foreign.prefix_columns(
            f"{foreign.name}.", exclude=candidate.foreign_columns
        )
    if candidate.is_soft:
        return _execute_soft_join(
            base, foreign, candidate, soft_strategy, time_resample, rng
        )
    return left_join(base, foreign, on=candidate.key_pairs())


def _execute_soft_join(
    base: Table,
    foreign: Table,
    candidate: JoinCandidate,
    soft_strategy: str,
    time_resample: bool,
    rng: np.random.Generator | None,
) -> Table:
    """Soft-join on the (single) soft key of a candidate."""
    soft_keys = [key for key in candidate.keys if key.soft]
    hard_keys = [key for key in candidate.keys if not key.soft]
    if len(soft_keys) != 1 or hard_keys:
        # mixed composite keys: fall back to a hard join on all keys, after
        # aligning time granularity on the soft components
        working = foreign
        if time_resample:
            for key in soft_keys:
                working = align_time_granularity(
                    base, working, key.base_column, key.foreign_column
                )
        return left_join(base, working, on=candidate.key_pairs())

    key = soft_keys[0]
    working = foreign
    is_time_key = (
        base.column(key.base_column).ctype is DATETIME
        or foreign.column(key.foreign_column).ctype is DATETIME
    )
    if time_resample and is_time_key:
        working = align_time_granularity(
            base, working, key.base_column, key.foreign_column
        )
    if soft_strategy == "hard":
        return left_join(base, working, on=[(key.base_column, key.foreign_column)])
    if soft_strategy == "nearest":
        return nearest_join(base, working, key.base_column, key.foreign_column)
    if soft_strategy == "two_way_nearest":
        return two_way_nearest_join(
            base, working, key.base_column, key.foreign_column, rng=rng
        )
    raise ValueError(f"unknown soft join strategy {soft_strategy!r}")


def join_candidates(
    base: Table,
    repository: DataRepository,
    candidates: list[JoinCandidate],
    soft_strategy: str = "two_way_nearest",
    time_resample: bool = True,
    rng: np.random.Generator | None = None,
) -> tuple[Table, dict[str, list[str]]]:
    """Join every candidate in a batch onto ``base``.

    Returns the joined table and a mapping from foreign table name to the list
    of column names it contributed, which the pipeline uses to trace selected
    features back to tables.
    """
    working = base
    contributed: dict[str, list[str]] = {}
    for candidate in candidates:
        foreign = repository.get(candidate.foreign_table)
        before = set(working.column_names)
        working = execute_join(
            working,
            foreign,
            candidate,
            soft_strategy=soft_strategy,
            time_resample=time_resample,
            rng=rng,
        )
        added = [name for name in working.column_names if name not in before]
        contributed[candidate.foreign_table] = added
    return working, contributed
