"""Result objects returned by the ARDA pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.relational.table import Table

if TYPE_CHECKING:  # avoid a runtime core <-> serving import cycle
    from repro.relational.join import StreamJoinStats
    from repro.serving.pipeline import FittedPipeline


@dataclass
class BatchReport:
    """What happened when one join-plan batch was evaluated."""

    batch_index: int
    table_names: list[str]
    columns_considered: int
    columns_kept: list[str]
    selection_time: float
    holdout_score: float
    join_time: float = 0.0


@dataclass
class AugmentationReport:
    """The full outcome of one ARDA run.

    Scores are "higher is better" (accuracy for classification, R^2 for
    regression) measured on a holdout split of the *full* base table with the
    final estimator; error metrics for regression reporting are derived by the
    evaluation harness.

    ``pipeline`` carries the fitted serving artifact
    (:class:`~repro.serving.pipeline.FittedPipeline`) when
    ``ARDAConfig.capture_pipeline`` is on: the accepted join plan, fitted
    encoders/imputers, selected features with provenance and the trained
    estimator, ready for ``save()`` and out-of-process inference.
    """

    dataset_name: str
    task: str
    base_score: float
    augmented_score: float
    augmented_table: Table
    kept_columns: list[str] = field(default_factory=list)
    kept_tables: list[str] = field(default_factory=list)
    batches: list[BatchReport] = field(default_factory=list)
    tables_considered: int = 0
    tables_filtered_out: int = 0
    total_time: float = 0.0
    selection_time: float = 0.0
    join_time: float = 0.0
    discovery_time: float = 0.0
    coreset_time: float = 0.0
    fit_time: float = 0.0
    executor: str = "serial"
    pipeline: "FittedPipeline | None" = None
    # out-of-core runs only: where the full augmented table was streamed to
    # (a chunked .tbl file), and per-foreign-table streaming-join accounting
    # (chunks probed vs pruned).  ``augmented_table`` then holds the coreset
    # materialisation, and the scores are coreset-level.
    augmented_path: Path | None = None
    stream_stats: "dict[str, StreamJoinStats] | None" = None

    @property
    def improvement(self) -> float:
        """Absolute score improvement of augmentation over the base table."""
        return self.augmented_score - self.base_score

    @property
    def relative_improvement(self) -> float:
        """Score improvement relative to the base-table score (paper's % metric)."""
        if self.base_score == 0:
            return 0.0
        return (self.augmented_score - self.base_score) / abs(self.base_score)

    def stage_breakdown(self) -> dict[str, float]:
        """Wall-clock seconds per pipeline stage.

        ``selection_s`` is feature selection (RIFS) over the coreset batches,
        ``fit_s`` is training/scoring the final estimator on the full base and
        augmented tables, and ``other_s`` is the remainder of the total not
        attributed to a named stage (imputation, encoding, bookkeeping).
        """
        accounted = (
            self.discovery_time
            + self.coreset_time
            + self.join_time
            + self.selection_time
            + self.fit_time
        )
        return {
            "discovery_s": self.discovery_time,
            "coreset_s": self.coreset_time,
            "join_s": self.join_time,
            "selection_s": self.selection_time,
            "fit_s": self.fit_time,
            "other_s": max(0.0, self.total_time - accounted),
            "total_s": self.total_time,
        }

    def record_metrics(self, registry=None) -> None:
        """Record this run into a metrics registry.

        Stage wall-clock times go into ``arda.stage.*`` histograms (one
        observation per stage per run), the run itself increments
        ``arda.runs``, and any streaming-join accounting is added via
        :meth:`~repro.relational.join.StreamJoinStats.record_to`.  The
        registry defaults to the process-wide
        :func:`repro.observability.get_registry`; ``ARDA.augment`` calls this
        once per run, so a resident server's ``/metrics`` endpoint reports
        training activity alongside serving traffic.  The report's own
        fields and :meth:`stage_breakdown` are unchanged by this.
        """
        from repro.observability import get_registry

        registry = registry if registry is not None else get_registry()
        registry.counter("arda.runs").inc()
        registry.record_timings("arda.stage", self.stage_breakdown())
        if self.stream_stats:
            for stats in self.stream_stats.values():
                stats.record_to(registry)

    def summary(self) -> dict:
        """Compact dictionary used by reports and tests."""
        return {
            "dataset": self.dataset_name,
            "task": self.task,
            "base_score": round(self.base_score, 4),
            "augmented_score": round(self.augmented_score, 4),
            "improvement": round(self.improvement, 4),
            "kept_columns": len(self.kept_columns),
            "kept_tables": len(self.kept_tables),
            "tables_considered": self.tables_considered,
            "total_time_s": round(self.total_time, 2),
            "join_time_s": round(self.join_time, 2),
            "selection_time_s": round(self.selection_time, 2),
            "executor": self.executor,
        }
