"""MinHash signatures for estimating value-set overlap between columns."""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_hash(value: str, seed: int) -> int:
    """Deterministic 64-bit hash of a string under a seed."""
    digest = hashlib.blake2b(
        value.encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class MinHashSignature:
    """MinHash signature of a set of string values."""

    def __init__(self, values, num_hashes: int = 64):
        self.num_hashes = num_hashes
        signature = np.full(num_hashes, np.iinfo(np.uint64).max, dtype=np.uint64)
        self.set_size = 0
        seen = set()
        for value in values:
            if value is None:
                continue
            text = str(value)
            if text in seen:
                continue
            seen.add(text)
            for i in range(num_hashes):
                h = _stable_hash(text, i)
                if h < signature[i]:
                    signature[i] = h
        self.set_size = len(seen)
        self.signature = signature

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity with another signature."""
        if self.num_hashes != other.num_hashes:
            raise ValueError("signatures must use the same number of hash functions")
        if self.set_size == 0 or other.set_size == 0:
            return 0.0
        return float(np.mean(self.signature == other.signature))

    def containment_in(self, other: "MinHashSignature") -> float:
        """Estimated containment |A ∩ B| / |A| of this set in the other set."""
        jaccard = self.jaccard(other)
        if jaccard == 0.0 or self.set_size == 0:
            return 0.0
        union_estimate = (self.set_size + other.set_size) / (1.0 + jaccard)
        intersection_estimate = jaccard * union_estimate
        return float(min(1.0, intersection_estimate / self.set_size))


def jaccard_estimate(values_a, values_b, num_hashes: int = 64) -> float:
    """Convenience: estimated Jaccard similarity of two value collections."""
    return MinHashSignature(values_a, num_hashes).jaccard(
        MinHashSignature(values_b, num_hashes)
    )
