"""MinHash signatures for estimating value-set overlap between columns.

Each distinct value is hashed **once** with a keyed blake2b into a 64-bit base
hash; the ``num_hashes`` per-function hashes are then derived from the base
hash with a vectorised splitmix64 finalizer over per-function seeds.  This
replaces the old scheme of ``num_hashes`` separate blake2b calls per value —
the signature of a column's dictionary now costs one digest per entry plus a
handful of numpy passes, which is what makes repository profiling cheap.
"""

from __future__ import annotations

import hashlib

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def _stable_hash(value: str, seed: int) -> int:
    """Deterministic 64-bit hash of a string under a seed."""
    digest = hashlib.blake2b(
        value.encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finalizer (uint64 in, uint64 out)."""
    z = (x ^ (x >> np.uint64(30))) * _MIX_1
    z = (z ^ (z >> np.uint64(27))) * _MIX_2
    return z ^ (z >> np.uint64(31))


class MinHashSignature:
    """MinHash signature of a set of string values."""

    def __init__(self, values, num_hashes: int = 64):
        self.num_hashes = num_hashes
        seen: set[str] = set()
        for value in values:
            if value is None:
                continue
            seen.add(str(value))
        self.set_size = len(seen)
        if not seen:
            self.signature = np.full(num_hashes, np.iinfo(np.uint64).max, dtype=np.uint64)
            return
        base = np.fromiter(
            (_stable_hash(text, 0) for text in seen), dtype=np.uint64, count=len(seen)
        )
        with np.errstate(over="ignore"):
            seeds = _splitmix64(
                _splitmix64(np.arange(1, num_hashes + 1, dtype=np.uint64) * _GOLDEN)
            )
            table = _splitmix64(base[:, None] ^ seeds[None, :])
        self.signature = table.min(axis=0)

    @classmethod
    def from_parts(
        cls, signature: np.ndarray, set_size: int, num_hashes: int
    ) -> "MinHashSignature":
        """Rebuild a signature from its stored parts (no re-hashing)."""
        obj = cls.__new__(cls)
        obj.num_hashes = int(num_hashes)
        obj.set_size = int(set_size)
        obj.signature = np.asarray(signature, dtype=np.uint64)
        return obj

    def to_state(self) -> dict:
        """Plain-types state for sidecar persistence (see profiles.py)."""
        return {
            "num_hashes": self.num_hashes,
            "set_size": self.set_size,
            "signature": self.signature.tobytes(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinHashSignature":
        """Inverse of :meth:`to_state`."""
        signature = np.frombuffer(state["signature"], dtype=np.uint64).copy()
        return cls.from_parts(signature, state["set_size"], state["num_hashes"])

    def merge(self, other: "MinHashSignature") -> "MinHashSignature":
        """Signature of the union of the two underlying value sets.

        Because every per-function hash is a pure function of the value, the
        elementwise minimum of two signatures **is** the signature of the
        union — merging partial signatures built over disjoint chunks is
        exact.  The stored ``set_size`` of the merge is estimated from the
        overlap the signatures imply (clamped between the larger input and
        the sum), since the true union cardinality is not recoverable from
        signatures alone; chunk-exact profiling
        (:class:`~repro.discovery.profiles.ColumnProfileAccumulator`) tracks
        distinct values directly and does not rely on this estimate.
        """
        if self.num_hashes != other.num_hashes:
            raise ValueError("signatures must use the same number of hash functions")
        if self.set_size == 0:
            return MinHashSignature.from_parts(
                other.signature.copy(), other.set_size, other.num_hashes
            )
        if other.set_size == 0:
            return MinHashSignature.from_parts(
                self.signature.copy(), self.set_size, self.num_hashes
            )
        merged = np.minimum(self.signature, other.signature)
        jaccard = self.jaccard(other)
        union_estimate = (self.set_size + other.set_size) / (1.0 + jaccard)
        set_size = int(round(union_estimate))
        set_size = max(set_size, self.set_size, other.set_size)
        set_size = min(set_size, self.set_size + other.set_size)
        return MinHashSignature.from_parts(merged, set_size, self.num_hashes)

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity with another signature."""
        if self.num_hashes != other.num_hashes:
            raise ValueError("signatures must use the same number of hash functions")
        if self.set_size == 0 or other.set_size == 0:
            return 0.0
        return float(np.mean(self.signature == other.signature))

    def containment_in(self, other: "MinHashSignature") -> float:
        """Estimated containment |A ∩ B| / |A| of this set in the other set."""
        jaccard = self.jaccard(other)
        if jaccard == 0.0 or self.set_size == 0:
            return 0.0
        union_estimate = (self.set_size + other.set_size) / (1.0 + jaccard)
        intersection_estimate = jaccard * union_estimate
        return float(min(1.0, intersection_estimate / self.set_size))


def jaccard_estimate(values_a, values_b, num_hashes: int = 64) -> float:
    """Convenience: estimated Jaccard similarity of two value collections."""
    return MinHashSignature(values_a, num_hashes).jaccard(
        MinHashSignature(values_b, num_hashes)
    )
