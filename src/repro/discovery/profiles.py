"""Column profiling used by join discovery.

Profiles can be computed whole-table (:func:`profile_table`) or streamed
chunk-by-chunk with mergeable partial states
(:class:`ColumnProfileAccumulator` / :func:`profile_table_chunks`): the
accumulator merges each chunk's distinct values, null counts and
first-appearance order into one running state, and ``finish()`` produces a
:class:`ColumnProfile` **identical** (MinHash signature bytes included) to
what the monolithic path computes — so a table too large for RAM profiles
under a chunk-sized memory bound without perturbing discovery scores, and the
fingerprint-keyed profile cache stores one canonical profile regardless of
how the table was laid out on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.discovery.minhash import MinHashSignature
from repro.relational.column import Column, remap_dictionary
from repro.relational.schema import CATEGORICAL, ColumnType
from repro.relational.table import Table


@dataclass
class ColumnProfile:
    """Summary statistics of one column used to score join candidates."""

    table_name: str
    column_name: str
    ctype: ColumnType
    num_rows: int
    num_distinct: int
    null_fraction: float
    min_value: float | None
    max_value: float | None
    minhash: MinHashSignature | None

    @property
    def uniqueness(self) -> float:
        """Distinct values divided by non-null rows (1.0 means key-like)."""
        non_null = self.num_rows * (1.0 - self.null_fraction)
        if non_null <= 0:
            return 0.0
        return min(1.0, self.num_distinct / non_null)

    @property
    def looks_like_key(self) -> bool:
        """Heuristic: mostly distinct and mostly non-null."""
        return self.uniqueness > 0.5 and self.null_fraction < 0.5

    def to_state(self) -> dict:
        """Plain-types state (builtin types + bytes) for sidecar persistence.

        The persisted profile cache stores these instead of pickled class
        instances so that renaming or moving the classes never invalidates an
        on-disk cache that a version check would otherwise accept.  A ``"v"``
        field versions the state layout itself: :meth:`from_state` rejects
        states written by a newer, incompatible layout instead of
        misinterpreting them.
        """
        return {
            "v": 1,
            "table_name": self.table_name,
            "column_name": self.column_name,
            "ctype": self.ctype.value,
            "num_rows": self.num_rows,
            "num_distinct": self.num_distinct,
            "null_fraction": self.null_fraction,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "minhash": None if self.minhash is None else self.minhash.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ColumnProfile":
        """Inverse of :meth:`to_state`.

        Accepts version-1 states (states written before the ``"v"`` field
        existed are version 1 by definition); raises ``ValueError`` on states
        from a newer layout.
        """
        version = state.get("v", 1)
        if version != 1:
            raise ValueError(
                f"unsupported ColumnProfile state version {version!r} "
                f"(this build reads version 1)"
            )
        minhash = state["minhash"]
        return cls(
            table_name=state["table_name"],
            column_name=state["column_name"],
            ctype=ColumnType(state["ctype"]),
            num_rows=state["num_rows"],
            num_distinct=state["num_distinct"],
            null_fraction=state["null_fraction"],
            min_value=state["min_value"],
            max_value=state["max_value"],
            minhash=None if minhash is None else MinHashSignature.from_state(minhash),
        )


def profile_column(
    table_name: str, column: Column, num_hashes: int = 64, max_minhash_values: int = 2000
) -> ColumnProfile:
    """Profile one column (distinct counts, range, MinHash signature).

    Categorical columns are profiled off their dictionary: ``unique()`` is the
    dictionary itself for a freshly built column, ``null_count`` is a vector
    compare on the code array, and the MinHash signature hashes each dictionary
    entry once — profiling cost scales with the dictionary, not the rows.
    """
    n = len(column)
    null_count = column.null_count()
    distinct = column.unique()
    min_value = max_value = None
    if column.ctype is not CATEGORICAL and len(distinct):
        min_value = float(np.min(distinct))
        max_value = float(np.max(distinct))
    minhash_values = distinct[:max_minhash_values]
    if column.ctype is not CATEGORICAL:
        minhash_values = [f"{float(v):.6g}" for v in minhash_values]
    signature = MinHashSignature(minhash_values, num_hashes=num_hashes)
    return ColumnProfile(
        table_name=table_name,
        column_name=column.name,
        ctype=column.ctype,
        num_rows=n,
        num_distinct=len(distinct),
        null_fraction=null_count / n if n else 0.0,
        min_value=min_value,
        max_value=max_value,
        minhash=signature,
    )


def profile_table(table: Table, num_hashes: int = 64) -> dict[str, ColumnProfile]:
    """Profile every column of a table, keyed by column name."""
    return {
        col.name: profile_column(table.name, col, num_hashes=num_hashes)
        for col in table.columns()
    }


class ColumnProfileAccumulator:
    """Mergeable partial profiling state for one column, fed chunk-by-chunk.

    ``update`` folds one chunk in; ``finish`` emits a profile equal — field
    for field, signature bytes included — to :func:`profile_column` over the
    concatenated column.  Numeric distinct sets merge as sorted unions
    (``Column.unique`` is sorted for float-backed types); categorical chunks
    are remapped into one shared code space and ordered by global first
    appearance, reproducing the full column's first-appearance ``unique()``
    regardless of how rows were split into chunks.  Peak memory is one
    chunk plus the running distinct set.
    """

    def __init__(
        self,
        table_name: str,
        column_name: str,
        ctype: ColumnType,
        num_hashes: int = 64,
        max_minhash_values: int = 2000,
    ):
        self.table_name = table_name
        self.column_name = column_name
        self.ctype = ctype
        self.num_hashes = num_hashes
        self.max_minhash_values = max_minhash_values
        self.num_rows = 0
        self.null_count = 0
        self._distinct: np.ndarray | None = None  # sorted (numeric path)
        self._dict_index: dict[str, int] = {}  # shared code space (categorical)
        self._first_row: np.ndarray = np.empty(0, dtype=np.int64)

    def update(self, column: Column, row_start: int | None = None) -> None:
        """Fold one chunk in.  ``row_start`` is the chunk's global row offset
        (defaults to the rows accumulated so far, i.e. sequential feeding)."""
        if column.ctype is not self.ctype:
            raise ValueError(
                f"column {self.column_name!r} changed type across chunks "
                f"({self.ctype.value} vs {column.ctype.value})"
            )
        if row_start is None:
            row_start = self.num_rows
        self.num_rows += len(column)
        self.null_count += column.null_count()
        if self.ctype is CATEGORICAL:
            translate = remap_dictionary(column.dictionary, self._dict_index)
            if len(self._first_row) < len(self._dict_index):
                grown = np.full(len(self._dict_index), -1, dtype=np.int64)
                grown[: len(self._first_row)] = self._first_row
                self._first_row = grown
            codes = translate[column.codes]
            present = codes[codes >= 0]
            if not len(present):
                return
            distinct, first_seen = np.unique(present, return_index=True)
            global_first = first_seen + row_start
            current = self._first_row[distinct]
            unseen = current < 0
            self._first_row[distinct[unseen]] = global_first[unseen]
            improved = ~unseen & (global_first < current)
            self._first_row[distinct[improved]] = global_first[improved]
        else:
            values = column.values
            chunk_distinct = np.unique(values[~np.isnan(values)])
            if self._distinct is None:
                self._distinct = chunk_distinct
            elif len(chunk_distinct):
                self._distinct = np.union1d(self._distinct, chunk_distinct)

    def merge(self, other: "ColumnProfileAccumulator") -> None:
        """Fold another accumulator's partial state into this one.

        The other accumulator must cover a *disjoint* row range of the same
        column, fed with global ``row_start`` offsets — then merging is
        order-independent: numeric distinct sets union (sorted either way),
        categorical first-appearance rows take the minimum per value, and
        ``finish()`` equals the serial chunk-by-chunk result byte for byte.
        This is what lets discovery fan per-(table, chunk-range) shards over
        an executor pool and still produce canonical profiles.
        """
        if other.ctype is not self.ctype or other.column_name != self.column_name:
            raise ValueError(
                f"cannot merge accumulator of {other.column_name!r} "
                f"({other.ctype.value}) into {self.column_name!r} ({self.ctype.value})"
            )
        self.num_rows += other.num_rows
        self.null_count += other.null_count
        if self.ctype is CATEGORICAL:
            other_dict = np.empty(len(other._dict_index), dtype=object)
            for text, code in other._dict_index.items():
                other_dict[code] = text
            translate = remap_dictionary(other_dict, self._dict_index)
            if len(self._first_row) < len(self._dict_index):
                grown = np.full(len(self._dict_index), -1, dtype=np.int64)
                grown[: len(self._first_row)] = self._first_row
                self._first_row = grown
            seen = np.nonzero(other._first_row >= 0)[0]
            if not len(seen):
                return
            mapped = translate[seen]
            rows = other._first_row[seen]
            current = self._first_row[mapped]
            unseen = current < 0
            self._first_row[mapped[unseen]] = rows[unseen]
            improved = ~unseen & (rows < current)
            self._first_row[mapped[improved]] = rows[improved]
        else:
            if other._distinct is None:
                return
            if self._distinct is None:
                self._distinct = other._distinct
            elif len(other._distinct):
                self._distinct = np.union1d(self._distinct, other._distinct)

    def distinct_values(self) -> list:
        """The merged distinct values, ordered as ``Column.unique`` would."""
        if self.ctype is CATEGORICAL:
            dictionary = np.empty(len(self._dict_index), dtype=object)
            for text, code in self._dict_index.items():
                dictionary[code] = text
            seen = np.nonzero(self._first_row >= 0)[0]
            order = np.argsort(self._first_row[seen], kind="stable")
            return [dictionary[code] for code in seen[order]]
        if self._distinct is None:
            return []
        return list(self._distinct)

    def finish(self) -> ColumnProfile:
        """Emit the profile of everything folded in so far."""
        distinct = self.distinct_values()
        min_value = max_value = None
        if self.ctype is not CATEGORICAL and len(distinct):
            min_value = float(np.min(distinct))
            max_value = float(np.max(distinct))
        minhash_values = distinct[: self.max_minhash_values]
        if self.ctype is not CATEGORICAL:
            minhash_values = [f"{float(v):.6g}" for v in minhash_values]
        signature = MinHashSignature(minhash_values, num_hashes=self.num_hashes)
        return ColumnProfile(
            table_name=self.table_name,
            column_name=self.column_name,
            ctype=self.ctype,
            num_rows=self.num_rows,
            num_distinct=len(distinct),
            null_fraction=self.null_count / self.num_rows if self.num_rows else 0.0,
            min_value=min_value,
            max_value=max_value,
            minhash=signature,
        )


def profile_shard(
    path,
    table_name: str,
    chunk_lo: int,
    chunk_hi: int,
    num_hashes: int = 64,
    mmap: bool = True,
) -> tuple[str | None, dict[str, ColumnProfileAccumulator]]:
    """Profile one contiguous chunk range ``[chunk_lo, chunk_hi)`` of a table
    file into per-column accumulators.

    Module-level and picklable so it can run as a process-pool job: each shard
    opens its own reader, feeds accumulators with *global* row offsets (from
    ``chunk_row_range``), and returns them with the file's fingerprint.  Any
    subset of a table's chunks, profiled in any order across any number of
    shards and merged with :meth:`ColumnProfileAccumulator.merge`, finishes to
    the same profiles the serial pass produces.
    """
    from repro.relational.persist import ChunkedTableReader

    reader = ChunkedTableReader(path, mmap=mmap)
    schema = reader.schema()
    accumulators = {
        spec.name: ColumnProfileAccumulator(
            table_name, spec.name, spec.ctype, num_hashes=num_hashes
        )
        for spec in schema
    }
    for index in range(chunk_lo, chunk_hi):
        row_start, _ = reader.chunk_row_range(index)
        chunk = reader.chunk(index)
        for name, accumulator in accumulators.items():
            accumulator.update(chunk.column(name), row_start)
    return reader.header.fingerprint, accumulators


def profile_table_chunks(source, num_hashes: int = 64) -> dict[str, ColumnProfile]:
    """Profile a chunked source column-by-column without materialising it.

    ``source`` is a :class:`~repro.relational.persist.ChunkedTableReader` (or
    anything with ``iter_chunks``/``schema``/``name``).  Returns profiles
    identical to ``profile_table(source.table())`` while holding one chunk at
    a time.
    """
    from repro.relational.join import as_chunk_source

    source = as_chunk_source(source)
    schema = source.schema()
    accumulators = {
        spec.name: ColumnProfileAccumulator(
            source.name, spec.name, spec.ctype, num_hashes=num_hashes
        )
        for spec in schema
    }
    row_start = 0
    for chunk in source.iter_chunks():
        for name, accumulator in accumulators.items():
            accumulator.update(chunk.column(name), row_start)
        row_start += chunk.num_rows
    return {name: accumulator.finish() for name, accumulator in accumulators.items()}
