"""Column profiling used by join discovery."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.discovery.minhash import MinHashSignature
from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL, ColumnType
from repro.relational.table import Table


@dataclass
class ColumnProfile:
    """Summary statistics of one column used to score join candidates."""

    table_name: str
    column_name: str
    ctype: ColumnType
    num_rows: int
    num_distinct: int
    null_fraction: float
    min_value: float | None
    max_value: float | None
    minhash: MinHashSignature | None

    @property
    def uniqueness(self) -> float:
        """Distinct values divided by non-null rows (1.0 means key-like)."""
        non_null = self.num_rows * (1.0 - self.null_fraction)
        if non_null <= 0:
            return 0.0
        return min(1.0, self.num_distinct / non_null)

    @property
    def looks_like_key(self) -> bool:
        """Heuristic: mostly distinct and mostly non-null."""
        return self.uniqueness > 0.5 and self.null_fraction < 0.5

    def to_state(self) -> dict:
        """Plain-types state (builtin types + bytes) for sidecar persistence.

        The persisted profile cache stores these instead of pickled class
        instances so that renaming or moving the classes never invalidates an
        on-disk cache that a version check would otherwise accept.  A ``"v"``
        field versions the state layout itself: :meth:`from_state` rejects
        states written by a newer, incompatible layout instead of
        misinterpreting them.
        """
        return {
            "v": 1,
            "table_name": self.table_name,
            "column_name": self.column_name,
            "ctype": self.ctype.value,
            "num_rows": self.num_rows,
            "num_distinct": self.num_distinct,
            "null_fraction": self.null_fraction,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "minhash": None if self.minhash is None else self.minhash.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ColumnProfile":
        """Inverse of :meth:`to_state`.

        Accepts version-1 states (states written before the ``"v"`` field
        existed are version 1 by definition); raises ``ValueError`` on states
        from a newer layout.
        """
        version = state.get("v", 1)
        if version != 1:
            raise ValueError(
                f"unsupported ColumnProfile state version {version!r} "
                f"(this build reads version 1)"
            )
        minhash = state["minhash"]
        return cls(
            table_name=state["table_name"],
            column_name=state["column_name"],
            ctype=ColumnType(state["ctype"]),
            num_rows=state["num_rows"],
            num_distinct=state["num_distinct"],
            null_fraction=state["null_fraction"],
            min_value=state["min_value"],
            max_value=state["max_value"],
            minhash=None if minhash is None else MinHashSignature.from_state(minhash),
        )


def profile_column(
    table_name: str, column: Column, num_hashes: int = 64, max_minhash_values: int = 2000
) -> ColumnProfile:
    """Profile one column (distinct counts, range, MinHash signature).

    Categorical columns are profiled off their dictionary: ``unique()`` is the
    dictionary itself for a freshly built column, ``null_count`` is a vector
    compare on the code array, and the MinHash signature hashes each dictionary
    entry once — profiling cost scales with the dictionary, not the rows.
    """
    n = len(column)
    null_count = column.null_count()
    distinct = column.unique()
    min_value = max_value = None
    if column.ctype is not CATEGORICAL and len(distinct):
        min_value = float(np.min(distinct))
        max_value = float(np.max(distinct))
    minhash_values = distinct[:max_minhash_values]
    if column.ctype is not CATEGORICAL:
        minhash_values = [f"{float(v):.6g}" for v in minhash_values]
    signature = MinHashSignature(minhash_values, num_hashes=num_hashes)
    return ColumnProfile(
        table_name=table_name,
        column_name=column.name,
        ctype=column.ctype,
        num_rows=n,
        num_distinct=len(distinct),
        null_fraction=null_count / n if n else 0.0,
        min_value=min_value,
        max_value=max_value,
        minhash=signature,
    )


def profile_table(table: Table, num_hashes: int = 64) -> dict[str, ColumnProfile]:
    """Profile every column of a table, keyed by column name."""
    return {
        col.name: profile_column(table.name, col, num_hashes=num_hashes)
        for col in table.columns()
    }
