"""Candidate joins produced by discovery and consumed by ARDA."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KeyPair:
    """One base-column / foreign-column key pairing.

    ``soft`` marks keys (such as timestamps or GPS coordinates) whose values
    may not match exactly and therefore need a soft-join strategy.
    """

    base_column: str
    foreign_column: str
    soft: bool = False


@dataclass
class JoinCandidate:
    """A candidate join between the base table and one repository table.

    ``score`` is the discovery system's relevance estimate (higher = more
    promising); ARDA uses it only to prioritise its search, never to decide
    whether a join actually helps the model.
    """

    foreign_table: str
    keys: list[KeyPair] = field(default_factory=list)
    score: float = 0.0

    @property
    def is_soft(self) -> bool:
        """Whether any key in the candidate requires a soft join."""
        return any(key.soft for key in self.keys)

    @property
    def base_columns(self) -> list[str]:
        """Base-table key columns."""
        return [key.base_column for key in self.keys]

    @property
    def foreign_columns(self) -> list[str]:
        """Foreign-table key columns."""
        return [key.foreign_column for key in self.keys]

    def key_pairs(self) -> list[tuple[str, str]]:
        """Key pairs in the ``(base, foreign)`` tuple form the join layer expects."""
        return [(key.base_column, key.foreign_column) for key in self.keys]

    def __repr__(self) -> str:
        keys = ", ".join(
            f"{k.base_column}->{k.foreign_column}{'~' if k.soft else ''}" for k in self.keys
        )
        return f"JoinCandidate({self.foreign_table!r}, [{keys}], score={self.score:.3f})"
