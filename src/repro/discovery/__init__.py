"""Join discovery: the Aurum / NYU Auctus stand-in.

ARDA's input is a *ranked, noisy* collection of candidate joins produced by a
data-discovery system.  This package provides:

* :class:`~repro.discovery.repository.DataRepository` — an in-memory
  collection of named tables.
* Column profiling (types, distinct values, MinHash signatures) used to find
  columns that plausibly join with base-table columns.
* :class:`~repro.discovery.discovery.JoinDiscovery` — enumerates and scores
  candidate joins (hard and soft keys) against a base table, returning
  :class:`~repro.discovery.candidates.JoinCandidate` objects ARDA consumes.
"""

from repro.discovery.candidates import JoinCandidate, KeyPair
from repro.discovery.discovery import JoinDiscovery
from repro.discovery.minhash import MinHashSignature, jaccard_estimate
from repro.discovery.profiles import (
    ColumnProfile,
    ColumnProfileAccumulator,
    profile_column,
    profile_table,
    profile_table_chunks,
)
from repro.discovery.repository import DataRepository, ProfileCache, RepositorySnapshot

__all__ = [
    "DataRepository",
    "RepositorySnapshot",
    "ProfileCache",
    "JoinDiscovery",
    "JoinCandidate",
    "KeyPair",
    "ColumnProfile",
    "ColumnProfileAccumulator",
    "profile_column",
    "profile_table",
    "profile_table_chunks",
    "MinHashSignature",
    "jaccard_estimate",
]
