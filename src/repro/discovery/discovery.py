"""Join discovery over a repository (the Aurum / NYU Auctus stand-in).

Discovery enumerates, for every base-table column that looks like a possible
foreign key, the repository columns it could join with, and scores each
candidate.  Scores combine:

* value overlap (MinHash containment of base values in the foreign column,
  or numeric range overlap for soft keys),
* name similarity between the two columns, and
* how "key-like" the foreign column is (uniqueness).

Like real discovery systems the output is deliberately noisy — candidates only
need a plausible overlap to be emitted; deciding whether a join actually helps
the predictive model is ARDA's job, not discovery's.
"""

from __future__ import annotations


from repro.discovery.candidates import JoinCandidate, KeyPair
from repro.discovery.profiles import ColumnProfile, profile_table, profile_table_chunks
from repro.discovery.repository import DataRepository
from repro.relational.schema import CATEGORICAL, DATETIME
from repro.relational.table import Table


def _name_similarity(a: str, b: str) -> float:
    """Crude token-overlap similarity between two column names."""
    tokens_a = set(a.lower().replace("-", "_").split("_"))
    tokens_b = set(b.lower().replace("-", "_").split("_"))
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def _range_overlap(a: ColumnProfile, b: ColumnProfile) -> float:
    """Fractional overlap of the numeric ranges of two profiled columns."""
    if a.min_value is None or b.min_value is None:
        return 0.0
    low = max(a.min_value, b.min_value)
    high = min(a.max_value, b.max_value)
    if high <= low:
        return 0.0
    span_a = a.max_value - a.min_value
    if span_a <= 0:
        return 1.0
    return float(min(1.0, (high - low) / span_a))


class JoinDiscovery:
    """Enumerate and score candidate joins between a base table and a repository."""

    def __init__(
        self,
        min_score: float = 0.05,
        num_hashes: int = 64,
        max_candidates_per_table: int = 2,
        use_cache: bool = True,
    ):
        self.min_score = min_score
        self.num_hashes = num_hashes
        self.max_candidates_per_table = max_candidates_per_table
        self.use_cache = use_cache

    def discover(
        self,
        base: Table,
        repository: DataRepository,
        target: str | None = None,
        soft_key_columns: list[str] | None = None,
        executor=None,
    ) -> list[JoinCandidate]:
        """Return candidate joins sorted by descending relevance score.

        ``soft_key_columns`` optionally forces specific base columns (e.g. a
        timestamp) to be treated as soft keys; datetime columns are treated as
        soft automatically.

        When ``use_cache`` is on (the default) repository columns are profiled
        through the repository's :class:`~repro.discovery.repository.ProfileCache`,
        so repeated discovery over the same repository skips re-profiling.  The
        base table is always profiled fresh (it changes between pipelines).

        ``executor`` (a :class:`~repro.core.executor.JoinExecutor`) shards the
        repository profiling across per-(table, chunk-range) jobs via
        :meth:`DataRepository.profiles_many
        <repro.discovery.repository.DataRepository.profiles_many>`.  Sharded
        profiles are byte-identical to serial ones and the scoring loop below
        is untouched, so the candidate set *and* its ranking order are
        identical to the serial path no matter the backend — parallelism only
        changes wall-clock time.
        """
        soft_set = set(soft_key_columns or ())
        if isinstance(base, Table):
            base_profiles = profile_table(base, num_hashes=self.num_hashes)
        else:
            # an out-of-core chunked base profiles chunk-by-chunk with
            # mergeable states; the resulting profiles (and therefore the
            # candidate scores) are identical to the in-memory path
            base_profiles = profile_table_chunks(base, num_hashes=self.num_hashes)
        if target is not None and target in base_profiles:
            del base_profiles[target]

        foreign_names = [n for n in repository.table_names if n != base.name]
        prefetched: dict[str, dict[str, ColumnProfile]] | None = None
        if (
            executor is not None
            and self.use_cache
            and hasattr(repository, "profiles_many")
        ):
            prefetched = repository.profiles_many(
                foreign_names, num_hashes=self.num_hashes, executor=executor
            )

        candidates: list[JoinCandidate] = []
        for foreign_table in foreign_names:
            if prefetched is not None:
                foreign_profiles = prefetched[foreign_table]
            elif self.use_cache:
                # served from the profile cache; for a disk-backed repository
                # with a warm sidecar this never reads a table body
                foreign_profiles = repository.profiles(
                    foreign_table, num_hashes=self.num_hashes
                )
            else:
                foreign_profiles = profile_table(
                    repository.get(foreign_table), num_hashes=self.num_hashes
                )
            scored: list[tuple[float, KeyPair]] = []
            for base_name, base_profile in base_profiles.items():
                for foreign_name, foreign_profile in foreign_profiles.items():
                    pair_score, soft = self._score_pair(
                        base_profile, foreign_profile, base_name in soft_set
                    )
                    if pair_score >= self.min_score:
                        scored.append(
                            (pair_score, KeyPair(base_name, foreign_name, soft=soft))
                        )
            scored.sort(key=lambda item: -item[0])
            for pair_score, key in scored[: self.max_candidates_per_table]:
                candidates.append(
                    JoinCandidate(foreign_table=foreign_table, keys=[key], score=pair_score)
                )
        candidates.sort(key=lambda c: -c.score)
        return candidates

    def _score_pair(
        self,
        base_profile: ColumnProfile,
        foreign_profile: ColumnProfile,
        force_soft: bool,
    ) -> tuple[float, bool]:
        """Score one (base column, foreign column) pairing; returns (score, soft)."""
        # incompatible logical types never join
        base_is_cat = base_profile.ctype is CATEGORICAL
        foreign_is_cat = foreign_profile.ctype is CATEGORICAL
        if base_is_cat != foreign_is_cat:
            return 0.0, False
        name_score = _name_similarity(base_profile.column_name, foreign_profile.column_name)
        soft = force_soft or (
            not base_is_cat
            and (
                base_profile.ctype is DATETIME
                or foreign_profile.ctype is DATETIME
            )
        )
        if base_is_cat:
            overlap = base_profile.minhash.containment_in(foreign_profile.minhash)
        elif soft:
            overlap = _range_overlap(base_profile, foreign_profile)
        else:
            overlap = base_profile.minhash.containment_in(foreign_profile.minhash)
            # numeric hard keys with essentially no exact overlap may still be
            # joinable softly if their ranges overlap strongly
            if overlap < 0.05:
                range_score = _range_overlap(base_profile, foreign_profile)
                if range_score > 0.5 and name_score > 0:
                    overlap, soft = range_score * 0.5, True
        if overlap <= 0.0:
            return 0.0, soft
        key_bonus = 0.2 * foreign_profile.uniqueness
        score = 0.6 * overlap + 0.2 * name_score + key_bonus
        return float(score), soft
