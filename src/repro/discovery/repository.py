"""An in-memory repository of named tables (the "data lake") and its profile cache."""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterable, Iterator

from repro.discovery.profiles import ColumnProfile, profile_table
from repro.relational.io import read_csv
from repro.relational.table import Table


class ProfileCache:
    """Memoised column profiles (including MinHash signatures) per table.

    Join discovery profiles every repository column on every run; on repeated
    :meth:`ARDA.augment` calls or multi-scenario sweeps over the same
    repository this dominates discovery time.  The cache stores the full
    per-table profile dictionary keyed by ``(table name, num_hashes)`` and
    validates entries by table *object identity*: tables are immutable by
    convention, so as long as a repository slot still holds the same object the
    cached profiles are exact.  Replacing or removing a table invalidates its
    entries.

    ``hits`` / ``misses`` / ``invalidations`` counters are exposed so callers
    (and tests) can assert that re-profiling was actually skipped.  Entry and
    counter updates take an internal lock: the cache is shared with
    :class:`~repro.core.executor.ThreadJoinExecutor` workers, and unlocked
    ``+= 1`` counter updates from several threads lose increments.  Profiling
    itself runs outside the lock so concurrent misses on different tables
    don't serialise; two simultaneous misses on the *same* table may both
    profile, and the last store wins (profiles are deterministic, so both are
    identical).
    """

    def __init__(self):
        self._entries: dict[tuple[str, int], tuple[Table, dict[str, ColumnProfile]]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def get_or_profile(self, table: Table, num_hashes: int = 64) -> dict[str, ColumnProfile]:
        """Return cached profiles for ``table``, profiling it on first sight."""
        key = (table.name, num_hashes)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is table:
                self.hits += 1
                return entry[1]
            self.misses += 1
        profiles = profile_table(table, num_hashes=num_hashes)
        with self._lock:
            self._entries[key] = (table, profiles)
        return profiles

    def invalidate(self, table_name: str | None = None) -> int:
        """Drop cached profiles for one table (or all); returns entries dropped."""
        with self._lock:
            if table_name is None:
                stale = list(self._entries)
            else:
                stale = [key for key in self._entries if key[0] == table_name]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def reset_counters(self) -> None:
        """Zero the hit/miss/invalidation counters (entries are kept)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def stats(self) -> dict[str, int]:
        """Counters plus current size, for reports and debugging."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DataRepository:
    """A collection of candidate tables keyed by name.

    The repository plays the role of the heterogeneous data pool a data
    discovery system indexes; ARDA never scans it directly, it only receives
    candidate joins referencing tables by name.

    Every repository owns a :class:`ProfileCache` so that discovery profiles
    (distinct counts, ranges, MinHash signatures) are computed once per table
    and reused across runs; mutating the repository through :meth:`replace` or
    :meth:`remove` invalidates the affected entries.
    """

    def __init__(self, tables: Iterable[Table] = (), profile_cache: ProfileCache | None = None):
        self._tables: dict[str, Table] = {}
        self.profile_cache = profile_cache if profile_cache is not None else ProfileCache()
        for table in tables:
            self.add(table)

    def add(self, table: Table) -> None:
        """Register a table; its ``name`` must be unique and non-empty."""
        if not table.name:
            raise ValueError("repository tables must have a non-empty name")
        if table.name in self._tables:
            raise ValueError(f"a table named {table.name!r} is already registered")
        self._tables[table.name] = table

    def replace(self, table: Table) -> None:
        """Register or overwrite a table, invalidating any cached profiles."""
        if not table.name:
            raise ValueError("repository tables must have a non-empty name")
        self._tables[table.name] = table
        self.profile_cache.invalidate(table.name)

    def remove(self, name: str) -> None:
        """Unregister a table, invalidating any cached profiles."""
        if name not in self._tables:
            raise KeyError(
                f"no table named {name!r} in repository; available: {self.table_names}"
            )
        del self._tables[name]
        self.profile_cache.invalidate(name)

    def get(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r} in repository; available: {self.table_names}"
            ) from None

    def profiles(self, name: str, num_hashes: int = 64) -> dict[str, ColumnProfile]:
        """Column profiles of one table, served from the profile cache."""
        return self.profile_cache.get_or_profile(self.get(name), num_hashes=num_hashes)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)

    @classmethod
    def from_csv_directory(cls, directory: str | Path) -> "DataRepository":
        """Load every ``*.csv`` file in a directory as a repository table."""
        directory = Path(directory)
        repository = cls()
        for path in sorted(directory.glob("*.csv")):
            repository.add(read_csv(path, name=path.stem))
        return repository
