"""The repository of named tables (the "data lake"): in-memory or disk-backed.

A :class:`DataRepository` can hold its tables fully decoded in RAM (the
original behaviour, still what ``DataRepository(tables)`` gives you) or be
opened over a directory of native binary table files
(:meth:`DataRepository.open`).  A disk-backed repository builds its catalog
from file *headers* only — names, schemas, row counts, content fingerprints —
and materialises tables lazily on first :meth:`get`, memory-mapped so even a
"loaded" table only pages in the columns that are actually read.  Decoded
tables are kept alive in a small LRU so hot candidates stay warm while a
100-table repository never holds 100 decoded tables.

Concurrency model (snapshot isolation)
--------------------------------------

Mutations (:meth:`add` / :meth:`replace` / :meth:`remove`) are safe to call
from multiple threads of one process while other threads read.  Each mutation:

1. **stages** the table file under a content-addressed name
   (``<name>-<fingerprint16>.tbl``), so two concurrent writers never rewrite
   each other's bytes in place;
2. **publishes** the next catalog as a new manifest generation — one atomic
   ``os.replace`` of the ``_manifest.arda`` file plus one atomic swap of the
   in-process catalog reference, both under the writer lock.  Every mutation
   returns the generation it published.

Readers call :meth:`DataRepository.snapshot` to pin one generation: the
returned :class:`RepositorySnapshot` resolves every ``get()`` / ``header()``
against that frozen catalog, so a multi-table read never observes half of a
concurrent publish.  Files that fall out of the current catalog are
garbage-collected by reference count: a superseded table file is deleted only
once no live snapshot references it (release a snapshot explicitly, via the
context-manager protocol, or just drop it — a ``weakref.finalize`` hook
releases abandoned snapshots).  Cross-*process* writers are not coordinated:
one process owns the writes to a directory, any number of processes may open
read snapshots of it.

The :class:`ProfileCache` rides along: besides the identity-validated
in-memory entries it has always had, entries can now be validated by a
table's *content fingerprint* (stored in every table file header) and
persisted to a sidecar file, so a repeated ``ARDA`` run over the same
repository serves every discovery profile from disk without touching a single
table body.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.executor import longest_first_order
from repro.discovery.profiles import (
    ColumnProfile,
    profile_shard,
    profile_table,
    profile_table_chunks,
)
from repro.relational.io import read_csv
from repro.relational.schema import CATEGORICAL
from repro.relational.persist import (
    DEFAULT_STREAM_CHUNK_ROWS,
    ChunkedTableReader,
    ManifestEntry,
    ManifestFormatError,
    RepositoryManifest,
    TableFormatError,
    TableHeader,
    atomic_replace,
    open_chunks,
    read_manifest,
    read_table,
    read_table_header,
    resolve_chunk_rows,
    table_fingerprint,
    write_manifest,
    write_table,
    write_table_stream,
)
from repro.relational.table import Table

TABLE_SUFFIX = ".tbl"
MANIFEST_NAME = "_manifest.arda"
PROFILE_SIDECAR = "_profiles.cache"
_SIDECAR_FORMAT = "arda-profile-cache"
_SIDECAR_VERSION = 1


class ProfileCache:
    """Memoised column profiles (including MinHash signatures) per table.

    Join discovery profiles every repository column on every run; on repeated
    :meth:`ARDA.augment` calls or multi-scenario sweeps over the same
    repository this dominates discovery time.  The cache stores the full
    per-table profile dictionary keyed by ``(table name, num_hashes)``.

    Entries are validated two ways:

    * **object identity** — tables are immutable by convention, so as long as
      a repository slot still holds the same object the cached profiles are
      exact (the original scheme, used for in-memory tables);
    * **content fingerprint** — the hex fingerprint stored in every binary
      table file header (see :func:`repro.relational.persist.table_fingerprint`).
      Fingerprint-validated entries survive process restarts: :meth:`save`
      writes them to a sidecar file and :meth:`load` brings them back, and an
      entry whose fingerprint no longer matches the table on disk is simply a
      miss (then dropped by :meth:`prune_fingerprints` on the next open).

    ``hits`` / ``misses`` / ``invalidations`` counters are exposed so callers
    (and tests) can assert that re-profiling was actually skipped.  Entry and
    counter updates take an internal lock: the cache is shared with
    :class:`~repro.core.executor.ThreadJoinExecutor` workers, and unlocked
    ``+= 1`` counter updates from several threads lose increments.  Profiling
    itself runs outside the lock so concurrent misses on different tables
    don't serialise; two simultaneous misses on the *same* table may both
    profile, and the last store wins (profiles are deterministic, so both are
    identical).
    """

    def __init__(self):
        # (table name, num_hashes) -> (table or None, fingerprint or None, profiles)
        self._entries: dict[
            tuple[str, int], tuple[Table | None, str | None, dict[str, ColumnProfile]]
        ] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # generation stamp of the last sidecar loaded (informational)
        self.sidecar_generation: int | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("sidecar_generation", None)
        self._lock = threading.Lock()

    def get_or_profile(self, table: Table, num_hashes: int = 64) -> dict[str, ColumnProfile]:
        """Return cached profiles for ``table``, profiling it on first sight.

        A fingerprint-validated entry (e.g. loaded from a sidecar) is checked
        by fingerprinting ``table``; on a match the entry is re-bound to the
        object so subsequent lookups take the O(1) identity path.
        """
        key = (table.name, num_hashes)
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            cached_table, cached_fp, profiles = entry
            if cached_table is table:
                with self._lock:
                    self.hits += 1
                return profiles
            if cached_table is None and cached_fp is not None:
                if table_fingerprint(table) == cached_fp:
                    with self._lock:
                        self.hits += 1
                        self._entries[key] = (table, cached_fp, profiles)
                    return profiles
        with self._lock:
            self.misses += 1
        profiles = profile_table(table, num_hashes=num_hashes)
        with self._lock:
            self._entries[key] = (table, None, profiles)
        return profiles

    def get_or_profile_keyed(
        self,
        name: str,
        fingerprint: str,
        loader: Callable[[], Table],
        num_hashes: int = 64,
    ) -> dict[str, ColumnProfile]:
        """Fingerprint-validated lookup that only loads the table on a miss.

        This is the disk-backed repository's path: on a hit the table body is
        never read — the catalog header supplies the fingerprint and the
        profiles come straight from the cache.

        On a miss, the loaded table is re-fingerprinted before the profiles
        are stored: if a concurrent ``replace`` republished the table between
        the caller reading its catalog entry and ``loader()`` reading the
        body, the profiles describe the *new* content and are cached under
        its actual fingerprint — never under the requested one.  Without this
        check the window would poison the cache (and any sidecar it is saved
        to) with wrong profiles for the old fingerprint.
        """
        key = (name, num_hashes)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[1] == fingerprint:
                self.hits += 1
                return entry[2]
            self.misses += 1
        table = loader()
        actual = table_fingerprint(table)
        profiles = profile_table(table, num_hashes=num_hashes)
        with self._lock:
            self._entries[key] = (None, actual, profiles)
        return profiles

    def get_or_profile_chunked(
        self,
        name: str,
        fingerprint: str,
        opener: Callable[[], ChunkedTableReader],
        num_hashes: int = 64,
    ) -> dict[str, ColumnProfile]:
        """Fingerprint-validated lookup that streams chunk-by-chunk on a miss.

        The out-of-core sibling of :meth:`get_or_profile_keyed`: a miss opens
        a chunk reader and profiles it with mergeable per-chunk states
        (:func:`~repro.discovery.profiles.profile_table_chunks`) instead of
        materialising the table.  Chunked profiles are identical — signature
        bytes included — to monolithic ones, and a chunked file stores the
        same whole-table fingerprint a monolithic layout of the same content
        would, so the cache holds one canonical entry per table content no
        matter how the file is laid out or which path computed the profiles.

        As with the keyed path, profiles are stored under the fingerprint the
        opened file *actually* carries, so racing a concurrent ``replace``
        can only cause a miss, never a poisoned entry.
        """
        key = (name, num_hashes)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[1] == fingerprint:
                self.hits += 1
                return entry[2]
            self.misses += 1
        reader = opener()
        actual = reader.header.fingerprint
        profiles = profile_table_chunks(reader, num_hashes=num_hashes)
        with self._lock:
            self._entries[key] = (None, actual, profiles)
        return profiles

    def peek(
        self, name: str, fingerprint: str, num_hashes: int = 64
    ) -> dict[str, ColumnProfile] | None:
        """Fingerprint-validated lookup that never profiles; ``None`` on miss.

        Sharded discovery uses this to split cache resolution from profile
        computation: tables whose profiles are already cached are answered
        here, and only the remainder turns into shard jobs.  Counts a hit or
        miss exactly like the ``get_or_*`` paths.
        """
        key = (name, num_hashes)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[1] == fingerprint:
                self.hits += 1
                return entry[2]
            self.misses += 1
            return None

    def store(
        self,
        name: str,
        fingerprint: str,
        profiles: dict[str, ColumnProfile],
        num_hashes: int = 64,
    ) -> None:
        """Deposit externally computed profiles under a fingerprint key.

        The sharded-discovery counterpart of the ``get_or_*`` stores: callers
        merge shard accumulators themselves and store the finished profiles
        with the fingerprint the file *actually* carried.  Last store wins —
        profiles are deterministic, so concurrent stores are identical.
        """
        with self._lock:
            self._entries[(name, num_hashes)] = (None, fingerprint, profiles)

    def invalidate(self, table_name: str | None = None) -> int:
        """Drop cached profiles for one table (or all); returns entries dropped."""
        with self._lock:
            if table_name is None:
                stale = list(self._entries)
            else:
                stale = [key for key in self._entries if key[0] == table_name]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def prune_fingerprints(self, live: dict[str, str]) -> int:
        """Drop fingerprint-validated entries that no longer match ``live``.

        ``live`` maps table name to current on-disk fingerprint; entries for
        unknown names or stale fingerprints are removed (counted as
        invalidations).  Identity-validated entries are left alone.
        """
        with self._lock:
            stale = [
                key
                for key, (table, fp, _profiles) in self._entries.items()
                if table is None and fp is not None and live.get(key[0]) != fp
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    # -- sidecar persistence ---------------------------------------------------

    def save(self, path: str | Path, generation: int | None = None) -> int:
        """Persist all entries to a sidecar file; returns entries written.

        Identity-validated entries are fingerprinted on the way out (one pass
        over the table bytes) so they can be re-validated by a future process
        that holds different objects.  The write is atomic (uniquely-named
        temp file + ``os.replace``, so concurrent savers never interleave).
        ``generation`` optionally stamps the sidecar with the repository
        manifest generation it was saved at, for debugging stale caches —
        correctness never depends on it (every entry is fingerprint-validated
        on load and lookup).
        """
        path = Path(path)
        with self._lock:
            snapshot = dict(self._entries)
        records = []
        for (name, num_hashes), (table, fingerprint, profiles) in snapshot.items():
            if fingerprint is None:
                if table is None:
                    continue
                fingerprint = table_fingerprint(table)
            records.append(
                {
                    "table": name,
                    "num_hashes": num_hashes,
                    "fingerprint": fingerprint,
                    "profiles": {
                        col: profile.to_state() for col, profile in profiles.items()
                    },
                }
            )
        payload = {
            "format": _SIDECAR_FORMAT,
            "version": _SIDECAR_VERSION,
            "generation": generation,
            "entries": records,
        }
        atomic_replace(
            path,
            lambda handle: pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL),
        )
        return len(records)

    def load(self, path: str | Path) -> int:
        """Load sidecar entries written by :meth:`save`; returns entries loaded.

        Raises ``ValueError`` on a file that is not a profile sidecar or was
        written by an incompatible version.  Loaded entries are
        fingerprint-validated, so a stale sidecar only costs cache misses,
        never wrong profiles.
        """
        path = Path(path)
        with path.open("rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or payload.get("format") != _SIDECAR_FORMAT:
            raise ValueError(f"{path}: not a profile-cache sidecar")
        if payload.get("version") != _SIDECAR_VERSION:
            raise ValueError(
                f"{path}: unsupported sidecar version {payload.get('version')!r} "
                f"(this build reads version {_SIDECAR_VERSION})"
            )
        loaded = 0
        with self._lock:
            self.sidecar_generation = payload.get("generation")
            for record in payload["entries"]:
                key = (record["table"], record["num_hashes"])
                profiles = {
                    col: ColumnProfile.from_state(state)
                    for col, state in record["profiles"].items()
                }
                self._entries[key] = (None, record["fingerprint"], profiles)
                loaded += 1
        return loaded

    def register_metrics(self, registry=None, name: str = "profile_cache") -> str:
        """Expose :meth:`stats` as a pull-based source on a metrics registry.

        The registry (default: the process-wide
        :func:`repro.observability.get_registry`) evaluates :meth:`stats` at
        snapshot time, so ``/metrics``-style consumers see the same counters
        this class has always kept — nothing about the counters themselves
        changes.  Registering again under the same name replaces the previous
        source (the serving server re-registers on every repository rebind);
        the registry holds a strong reference to this cache until the source
        is replaced or unregistered.  Returns the registered source name.
        """
        from repro.observability import get_registry

        registry = registry if registry is not None else get_registry()
        registry.register_source(name, self.stats)
        return name

    def reset_counters(self) -> None:
        """Zero the hit/miss/invalidation counters (entries are kept)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def stats(self) -> dict[str, int]:
        """Counters plus current size, for reports and debugging."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _CatalogEntry:
    """One disk-backed table: its file path and header (no row data)."""

    __slots__ = ("path", "header")

    def __init__(self, path: Path, header: TableHeader):
        self.path = path
        self.header = header


def _unlink_quietly(path: Path) -> bool:
    try:
        path.unlink(missing_ok=True)
    except OSError:
        return False
    return True


# -- sharded corpus profiling --------------------------------------------------


def _profile_shard_job(shared, item):
    """Run one (table, chunk-range) profiling shard; pool-friendly.

    ``shared`` is ``(num_hashes, mmap)``; ``item`` is
    ``(path, name, chunk_lo, chunk_hi)``.  Returns
    ``(name, chunk_lo, elapsed_seconds, fingerprint, accumulators)``, or
    ``None`` when the file vanished or turned unreadable mid-run (a
    concurrent ``replace`` reclaimed it) — the caller then falls back to the
    serial per-table path for that table.
    """
    num_hashes, mmap = shared
    path, name, chunk_lo, chunk_hi = item
    start = time.perf_counter()
    try:
        fingerprint, accumulators = profile_shard(
            path, name, chunk_lo, chunk_hi, num_hashes=num_hashes, mmap=mmap
        )
    except (FileNotFoundError, TableFormatError):
        return None
    return (name, chunk_lo, time.perf_counter() - start, fingerprint, accumulators)


def _plan_shards(
    entries: list[tuple[str, _CatalogEntry]], n_jobs: int
) -> list[tuple[str, str, int, int]]:
    """Split tables into ``(path, name, chunk_lo, chunk_hi)`` shard jobs.

    With at least as many tables as workers, one job per table keeps jobs
    coarse (parallelism comes from the corpus width).  With fewer tables than
    workers, each table splits into up to ``ceil(n_jobs / tables)`` contiguous
    chunk ranges so a handful of huge tables still saturates the pool.  The
    plan is a pure function of catalog state and ``n_jobs`` — determinism of
    the merged profiles never depends on it (merge is order-independent), it
    only shapes the parallel schedule.
    """
    per_table = 1
    if entries and len(entries) < n_jobs:
        per_table = -(-n_jobs // len(entries))
    jobs: list[tuple[str, str, int, int]] = []
    for name, entry in entries:
        chunks = entry.header.num_chunks
        shards = max(1, min(per_table, chunks))
        bounds = [round(i * chunks / shards) for i in range(shards + 1)]
        for lo, hi in zip(bounds, bounds[1:]):
            if hi > lo:
                jobs.append((str(entry.path), name, lo, hi))
    return jobs


def _profiles_many(
    cache: ProfileCache,
    entry_for: Callable[[str], _CatalogEntry | None],
    serial: Callable[[str], dict[str, ColumnProfile]],
    in_memory: dict[str, Table],
    mmap: bool,
    names: list[str],
    num_hashes: int,
    executor,
) -> dict[str, dict[str, ColumnProfile]]:
    """Profile many tables, sharding chunk work over a ``JoinExecutor``.

    Cache hits (fingerprint-validated) are answered without touching table
    bodies; the remaining disk-backed tables fan out as chunk-range shards
    whose accumulators merge back — per table, in chunk order — into profiles
    byte-identical to the serial path.  In-memory tables, serial executors,
    and any shard that hits a concurrent republish fall back to the one-table
    ``serial`` callable.  Shard timings and counts land on the process
    metrics registry under ``discovery.*``.
    """
    results: dict[str, dict[str, ColumnProfile]] = {}
    shardable: list[tuple[str, _CatalogEntry]] = []
    for name in names:
        entry = entry_for(name)
        if entry is None or name in in_memory:
            results[name] = serial(name)
            continue
        cached = cache.peek(name, entry.header.fingerprint, num_hashes=num_hashes)
        if cached is not None:
            results[name] = cached
            continue
        shardable.append((name, entry))
    if not shardable:
        return results
    if executor is None or executor.n_jobs <= 1:
        for name, _entry in shardable:
            results[name] = serial(name)
        return results

    jobs = _plan_shards(shardable, executor.n_jobs)
    # LPT order: widest chunk ranges first minimises pool makespan; results
    # are restored to plan order before merging
    order = longest_first_order([hi - lo for (_p, _n, lo, hi) in jobs])
    submitted = [jobs[i] for i in order]
    wall_start = time.perf_counter()
    raw = executor.map_with_shared(_profile_shard_job, (num_hashes, mmap), submitted)
    wall_seconds = time.perf_counter() - wall_start
    outputs: list = [None] * len(jobs)
    for pos, index in enumerate(order):
        outputs[index] = raw[pos]

    by_table: dict[str, list] = {}
    failed: set[str] = set()
    for job, out in zip(jobs, outputs):
        name = job[1]
        if out is None:
            failed.add(name)
        else:
            by_table.setdefault(name, []).append(out)

    shard_count = 0
    shard_timings: list[float] = []
    for name, _entry in shardable:
        outs = by_table.get(name)
        if name in failed or not outs:
            results[name] = serial(name)
            continue
        outs.sort(key=lambda out: out[1])  # chunk order (merge-order invariant)
        fingerprints = {out[3] for out in outs}
        if len(fingerprints) != 1:
            # shards straddled a concurrent replace: torn read, recompute
            results[name] = serial(name)
            continue
        merged = outs[0][4]
        for _name, _lo, _elapsed, _fp, accumulators in outs[1:]:
            for column, accumulator in accumulators.items():
                merged[column].merge(accumulator)
        profiles = {column: acc.finish() for column, acc in merged.items()}
        cache.store(name, next(iter(fingerprints)), profiles, num_hashes=num_hashes)
        results[name] = profiles
        shard_count += len(outs)
        shard_timings.extend(out[2] for out in outs)

    from repro.observability import get_registry

    registry = get_registry()
    registry.counter("discovery.shards").inc(shard_count)
    registry.counter("discovery.tables_sharded").inc(len(shardable) - len(failed))
    histogram = registry.histogram("discovery.shard_seconds")
    for elapsed in shard_timings:
        histogram.observe(elapsed)
    registry.histogram("discovery.profile_wall_seconds").observe(wall_seconds)
    return results


class RepositorySnapshot:
    """A frozen, read-only view of one repository manifest generation.

    Produced by :meth:`DataRepository.snapshot`.  All reads — :meth:`get`,
    :meth:`header`, :meth:`schema`, :meth:`profiles`, :attr:`table_names` —
    resolve against the catalog as it stood at :attr:`generation`, no matter
    what concurrent writers publish afterwards: the snapshot's table files
    are pinned against garbage collection until the snapshot is released,
    and an already-mapped file keeps serving its old bytes even after the
    name is republished (``os.replace`` / ``unlink`` keep the old inode alive
    for existing maps).

    Release a snapshot when done — explicitly (:meth:`release`), as a context
    manager, or implicitly by dropping the last reference (a
    ``weakref.finalize`` hook releases it, including at interpreter exit) —
    so superseded files can be reclaimed.  Reading from an explicitly
    released snapshot raises ``RuntimeError``.

    The snapshot exposes the full read API of :class:`DataRepository`
    (``get`` / ``header`` / ``schema`` / ``profiles`` / ``table_names`` /
    ``in`` / ``len`` / iteration / ``is_disk_backed`` / ``save_profiles``),
    so pipeline code written against a repository can run unchanged against
    a pinned generation.
    """

    def __init__(
        self,
        repository: "DataRepository",
        generation: int,
        catalog: dict[str, _CatalogEntry],
        tables: dict[str, Table],
        token: int,
    ):
        self._repository = repository
        self._generation = generation
        self._catalog = catalog
        self._tables = tables
        self._token = token
        self._loaded: dict[str, Table] = {}
        self._local_lock = threading.Lock()
        # releases the pinned files if the snapshot is dropped without an
        # explicit release() (including at interpreter exit)
        self._finalizer = weakref.finalize(
            self, repository._release_snapshot, token
        )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The manifest generation this snapshot pins."""
        return self._generation

    @property
    def repository(self) -> "DataRepository":
        """The repository this snapshot was taken from."""
        return self._repository

    @property
    def released(self) -> bool:
        """Whether the snapshot has been released (files no longer pinned)."""
        return not self._finalizer.alive

    def release(self) -> None:
        """Release the snapshot's pin on its table files (idempotent).

        Any file superseded since the snapshot was taken becomes eligible for
        garbage collection once the last snapshot referencing it is released.
        """
        self._finalizer()

    def __enter__(self) -> "RepositorySnapshot":
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def _check_live(self) -> None:
        if not self._finalizer.alive:
            raise RuntimeError(
                f"snapshot of generation {self._generation} has been released; "
                f"its files may already be garbage-collected"
            )

    # -- read API ----------------------------------------------------------------

    @property
    def is_disk_backed(self) -> bool:
        """Whether the underlying repository writes through to a directory."""
        return self._repository.is_disk_backed

    @property
    def table_names(self) -> list[str]:
        """Names of all tables in this generation."""
        return list(self._catalog) + [n for n in self._tables if n not in self._catalog]

    def __contains__(self, name: str) -> bool:
        return name in self._catalog or name in self._tables

    def __len__(self) -> int:
        return len(self._catalog) + sum(1 for n in self._tables if n not in self._catalog)

    def __iter__(self) -> Iterator[Table]:
        for name in self.table_names:
            yield self.get(name)

    def header(self, name: str) -> TableHeader:
        """The pinned catalog header of a disk-backed table."""
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no disk-backed table named {name!r} in snapshot generation "
                f"{self._generation}; catalogued: {list(self._catalog)}"
            )
        return entry.header

    def schema(self, name: str):
        """The schema of a table, served without loading when disk-backed."""
        entry = self._catalog.get(name)
        if entry is not None and name not in self._tables:
            return entry.header.schema()
        return self.get(name).schema()

    def fingerprints(self) -> dict[str, str]:
        """``{table name → content fingerprint}`` of this generation.

        Disk-backed tables are served from their pinned catalog headers
        (no body read); in-memory tables are fingerprinted on demand.
        """
        out: dict[str, str] = {}
        for name in self.table_names:
            entry = self._catalog.get(name)
            if entry is not None and name not in self._tables:
                out[name] = entry.header.fingerprint
            else:
                out[name] = table_fingerprint(self._tables[name])
        return out

    def get(self, name: str) -> Table:
        """Look up a table in the pinned generation, materialising it lazily."""
        self._check_live()
        table = self._tables.get(name)
        if table is not None:
            return table
        with self._local_lock:
            table = self._loaded.get(name)
        if table is not None:
            return table
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no table named {name!r} in snapshot generation "
                f"{self._generation}; available: {self.table_names}"
            )
        owner = self._repository
        # reuse the owner's LRU when the live catalog still holds this exact
        # entry (same generation of the table), so repeated snapshots of a
        # quiet repository decode each table once
        table = None
        if owner._catalog.get(name) is entry:
            with owner._lru_lock:
                cached = owner._loaded.get(name)
                if cached is not None and cached[0] == entry.header.fingerprint:
                    owner._loaded.move_to_end(name)
                    table = cached[1]
        if table is None:
            table = read_table(entry.path, mmap=owner._mmap)
            if not table.name:
                table = table.rename(name)
        with self._local_lock:
            self._loaded[name] = table
        return table

    def profiles(self, name: str, num_hashes: int = 64) -> dict[str, ColumnProfile]:
        """Column profiles of one pinned table, via the owner's profile cache.

        Keyed by the pinned fingerprint, so a profile computed for this
        generation is never confused with one of a later republication.
        Multi-chunk tables profile chunk-by-chunk on a miss.
        """
        entry = self._catalog.get(name)
        if entry is not None and name not in self._tables:
            if entry.header.num_chunks > 1:
                path, mmap = entry.path, self._repository._mmap
                return self._repository.profile_cache.get_or_profile_chunked(
                    name,
                    entry.header.fingerprint,
                    opener=lambda: open_chunks(path, mmap=mmap),
                    num_hashes=num_hashes,
                )
            return self._repository.profile_cache.get_or_profile_keyed(
                name,
                entry.header.fingerprint,
                loader=lambda: self.get(name),
                num_hashes=num_hashes,
            )
        return self._repository.profile_cache.get_or_profile(
            self.get(name), num_hashes=num_hashes
        )

    def profiles_many(
        self,
        names: Iterable[str] | None = None,
        num_hashes: int = 64,
        executor=None,
    ) -> dict[str, dict[str, ColumnProfile]]:
        """Profile many pinned tables at once, sharding chunk work over
        ``executor`` (a :class:`~repro.core.executor.JoinExecutor`).

        Byte-identical to calling :meth:`profiles` per table — cache hits,
        serial executors, and in-memory tables take exactly that path, and
        sharded results merge to the same canonical profiles — but a wide
        corpus profiles in parallel from headers + chunk ranges without ever
        materialising a whole table.
        """
        self._check_live()
        names = list(names) if names is not None else self.table_names
        return _profiles_many(
            cache=self._repository.profile_cache,
            entry_for=self._catalog.get,
            serial=lambda name: self.profiles(name, num_hashes=num_hashes),
            in_memory=self._tables,
            mmap=self._repository._mmap,
            names=names,
            num_hashes=num_hashes,
            executor=executor,
        )

    def open_chunks(self, name: str) -> ChunkedTableReader:
        """Open one pinned disk-backed table for chunk-at-a-time streaming.

        Resolves against the pinned generation: a table republished (even
        rechunked) after the snapshot was taken still streams its old bytes.
        """
        self._check_live()
        if name in self._tables:
            raise ValueError(
                f"table {name!r} is in-memory; open_chunks needs a disk-backed table "
                f"(wrap in-memory tables with as_chunk_source)"
            )
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no table named {name!r} in snapshot generation "
                f"{self._generation}; available: {self.table_names}"
            )
        return ChunkedTableReader(
            entry.path, mmap=self._repository._mmap, header=entry.header
        )

    def save_profiles(self, path: str | Path | None = None) -> Path:
        """Persist the owner repository's profile cache (see repository docs)."""
        return self._repository.save_profiles(path)

    def __repr__(self) -> str:
        state = "released" if self.released else "live"
        return (
            f"RepositorySnapshot(generation={self._generation}, "
            f"tables={len(self)}, {state})"
        )


class DataRepository:
    """A collection of candidate tables keyed by name.

    The repository plays the role of the heterogeneous data pool a data
    discovery system indexes; ARDA never scans it directly, it only receives
    candidate joins referencing tables by name.

    Two backing modes share one API:

    * **in-memory** — ``DataRepository(tables)`` holds decoded tables in a
      dict, exactly as before;
    * **disk-backed** — :meth:`open` catalogs a directory of ``.tbl`` files by
      reading only their headers, then loads tables lazily (memory-mapped) on
      first access with an LRU keep-alive of decoded tables.  :meth:`add`,
      :meth:`replace` and :meth:`remove` stage content-addressed table files
      and publish manifest generations (see the module docstring for the
      snapshot-isolation protocol), and the profile cache can be persisted
      next to the tables (:meth:`save_profiles`), so a fresh process serves
      discovery profiles without reading any table body.

    Every mutation returns the manifest generation it published (in-memory
    repositories keep the same counter, so the snapshot machinery and the
    snapshot-isolation checker work against both modes).  Readers that need a
    consistent multi-table view take :meth:`snapshot`.

    Every repository owns a :class:`ProfileCache` so that discovery profiles
    (distinct counts, ranges, MinHash signatures) are computed once per table
    and reused across runs; mutating the repository through :meth:`replace` or
    :meth:`remove` invalidates the affected entries.
    """

    def __init__(self, tables: Iterable[Table] = (), profile_cache: ProfileCache | None = None):
        self._tables: dict[str, Table] = {}
        self._catalog: dict[str, _CatalogEntry] = {}
        # name -> (content fingerprint at load time, decoded table)
        self._loaded: OrderedDict[str, tuple[str, Table]] = OrderedDict()
        self._directory: Path | None = None
        self._manifest_path: Path | None = None
        self._lru_tables: int | None = None
        self._mmap = True
        self._chunk_rows: int | None = None
        self._generation = 0
        self._write_lock = threading.RLock()
        self._lru_lock = threading.Lock()
        self._snapshot_tokens = itertools.count()
        self._snapshot_files: dict[int, frozenset[Path]] = {}
        self._pending_gc: set[Path] = set()
        self.profile_cache = profile_cache if profile_cache is not None else ProfileCache()
        for table in tables:
            self.add(table)

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in ("_write_lock", "_lru_lock", "_snapshot_tokens"):
            state.pop(key, None)
        # live snapshots are process-local pins; they do not travel
        state["_snapshot_files"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._write_lock = threading.RLock()
        self._lru_lock = threading.Lock()
        self._snapshot_tokens = itertools.count()
        self._snapshot_files = {}

    # -- disk backing ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        lru_tables: int | None = 16,
        profile_cache: ProfileCache | None = None,
        mmap: bool = True,
        load_profiles: bool = True,
        chunk_rows: int | None = None,
    ) -> "DataRepository":
        """Open a directory of binary table files as a lazy repository.

        ``chunk_rows`` sets the row-group target for tables staged through
        this repository (:meth:`add` / :meth:`replace`): tables larger than
        the target are written chunked with zone maps (see
        :func:`repro.relational.persist.write_table`).  ``None`` defers to
        the ``ARDA_CHUNK_ROWS`` environment variable (no chunking when that
        is unset too); ``0`` forces monolithic files.  Reading is always
        layout-transparent — both formats load and stream identically.

        With a ``_manifest.arda`` present the catalog comes from the last
        committed manifest generation (headers of the referenced files are
        read for schemas; the files' own headers are authoritative).  Without
        one — a directory never mutated through this class — every readable
        ``.tbl`` file is adopted at generation 0 and the first mutation
        publishes generation 1.

        Opening also sweeps crash debris: ``*.tmp`` files (a writer killed
        between its temp write and the ``os.replace``), staged-but-never-
        published table files, and superseded old-generation files that a
        dying process left behind are removed.  ``.tbl`` files that are
        neither referenced nor marked as staged are adopted when their table
        name is free, and left untouched otherwise.  Do not open a directory
        for writing from a process that is concurrently writing it elsewhere
        (single-writer-process model; see the module docstring).

        Builds the catalog from file headers only (names, schemas, row
        counts, fingerprints); no table body is read until :meth:`get`.
        ``lru_tables`` bounds how many decoded tables are kept alive
        (``None`` = unbounded).  If a profile sidecar is present and
        ``load_profiles`` is on, cached profiles are loaded and entries whose
        fingerprints no longer match the files are dropped.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"repository directory {directory} does not exist")
        if lru_tables is not None and lru_tables < 1:
            raise ValueError("lru_tables must be None or >= 1")
        repository = cls(profile_cache=profile_cache)
        repository._directory = directory
        repository._lru_tables = lru_tables
        repository._mmap = mmap
        repository._chunk_rows = chunk_rows
        repository._manifest_path = directory / MANIFEST_NAME

        # crash debris from a writer killed between its temp-file write and
        # the os.replace: never part of any committed generation
        for debris in directory.glob("*.tmp"):
            _unlink_quietly(debris)

        catalog: dict[str, _CatalogEntry] = {}
        manifest: RepositoryManifest | None = None
        if repository._manifest_path.exists():
            manifest = read_manifest(repository._manifest_path)
            for name in sorted(manifest.tables):
                entry = manifest.tables[name]
                path = directory / entry.file
                if not path.exists():
                    raise TableFormatError(
                        f"{repository._manifest_path}: generation "
                        f"{manifest.generation} references missing table file "
                        f"{entry.file!r}"
                    )
                catalog[name] = _CatalogEntry(path, read_table_header(path))
            repository._generation = manifest.generation

        referenced = {entry.path for entry in catalog.values()}
        for path in sorted(directory.glob(f"*{TABLE_SUFFIX}")):
            if path in referenced:
                continue
            try:
                header = read_table_header(path)
            except (TableFormatError, OSError):
                continue  # unreadable file: not ours to delete or adopt
            name = header.name or path.stem
            staged = bool((header.meta or {}).get("staged"))
            if staged:
                # ours, but not part of the committed generation: either a
                # mutation that crashed before publishing, or a superseded
                # file whose GC was cut short — reclaim either way
                _unlink_quietly(path)
            elif name in catalog:
                if manifest is None:
                    raise ValueError(
                        f"duplicate table name {name!r} in {directory} "
                        f"({path.name} vs {catalog[name].path.name})"
                    )
                # an external file colliding with a manifest-managed name:
                # the committed generation wins; external in-place updates
                # to managed names must go through replace()
                continue
            else:
                catalog[name] = _CatalogEntry(path, header)

        repository._catalog = catalog
        if load_profiles:
            sidecar = directory / PROFILE_SIDECAR
            if sidecar.exists():
                try:
                    repository.profile_cache.load(sidecar)
                except Exception:
                    # a stale/truncated/corrupt sidecar — whatever unpickling
                    # or record decoding raises — is a cold cache, not an
                    # error: the repository itself is healthy
                    pass
                else:
                    repository.profile_cache.prune_fingerprints(
                        {
                            name: entry.header.fingerprint
                            for name, entry in repository._catalog.items()
                        }
                    )
        return repository

    @property
    def is_disk_backed(self) -> bool:
        """Whether this repository writes through to a directory."""
        return self._directory is not None

    @property
    def directory(self) -> Path | None:
        """The backing directory of a disk-backed repository (else ``None``)."""
        return self._directory

    @property
    def generation(self) -> int:
        """The current manifest generation (0 until the first mutation)."""
        return self._generation

    @property
    def live_snapshots(self) -> int:
        """How many unreleased snapshots currently pin table files."""
        return len(self._snapshot_files)

    @property
    def cached_tables(self) -> list[str]:
        """Names of disk-backed tables currently decoded in the LRU."""
        with self._lru_lock:
            return list(self._loaded)

    def header(self, name: str) -> TableHeader:
        """The catalog header of a disk-backed table (schema without loading)."""
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no disk-backed table named {name!r}; catalogued: {list(self._catalog)}"
            )
        return entry.header

    def schema(self, name: str):
        """The schema of a table, served without loading when disk-backed."""
        entry = self._catalog.get(name)
        if entry is not None and name not in self._tables:
            return entry.header.schema()
        return self.get(name).schema()

    def save_profiles(self, path: str | Path | None = None) -> Path:
        """Persist the profile cache to a sidecar next to the tables.

        ``path`` defaults to ``<directory>/_profiles.cache`` for disk-backed
        repositories; in-memory repositories must pass an explicit path.  The
        sidecar is stamped with the current manifest generation.
        """
        if path is None:
            if self._directory is None:
                raise ValueError("in-memory repository: save_profiles needs an explicit path")
            path = self._directory / PROFILE_SIDECAR
        path = Path(path)
        self.profile_cache.save(path, generation=self._generation)
        return path

    def reload(self) -> int:
        """Adopt a newer manifest generation published by another process.

        The write protocol is single-writer-*process*: a resident reader (the
        serving server) must not mutate a directory some other process owns,
        but it may — and this is the hot-reload path — pick up the
        generations that writer publishes.  ``reload`` re-reads the manifest
        and, when its generation is newer than the one currently held, swaps
        in a catalog built from the referenced files' headers.  Everything
        else follows the in-process publish rules: the swap happens under the
        write lock as one reference assignment (readers see the old or the
        new catalog, never a mix), superseded files queue for
        reference-counted GC (the writer usually reclaims them first —
        already-deleted files are skipped quietly), stale LRU entries are
        dropped, and profile-cache entries whose fingerprints no longer match
        are pruned.

        Snapshots taken before the reload keep reading the files they have
        **already opened** — ``os.replace``/``unlink`` keep a mapped inode
        alive — but this process's pins are invisible to the writer process,
        which may delete a superseded file this process never opened.  A
        resident reader that must keep serving an old generation across
        writer GC therefore touches every table it needs right after
        snapshotting (the serving server does exactly this on bind).

        Returns the generation now held (unchanged if the on-disk manifest is
        absent, not newer, or torn mid-write — a torn read is retried on the
        next call).  Raises nothing in the steady state: a manifest
        referencing an already-vanished table file (the writer raced two
        generations ahead) is treated as torn and skipped.  In-memory
        repositories always return the current generation.
        """
        if self._manifest_path is None or not self._manifest_path.exists():
            return self._generation
        try:
            manifest = read_manifest(self._manifest_path)
        except (ManifestFormatError, OSError):
            return self._generation
        if manifest.generation <= self._generation:
            return self._generation
        # build the new catalog fully before taking the lock: header reads do
        # file I/O and must not stall concurrent publishes or snapshots
        new_catalog: dict[str, _CatalogEntry] = {}
        try:
            for name in sorted(manifest.tables):
                path = self._directory / manifest.tables[name].file
                new_catalog[name] = _CatalogEntry(path, read_table_header(path))
        except (TableFormatError, OSError):
            return self._generation
        with self._write_lock:
            if manifest.generation <= self._generation:
                return self._generation  # lost the race to a concurrent reload
            old_catalog = self._catalog
            self._catalog = new_catalog
            self._generation = manifest.generation
            kept = {entry.path for entry in new_catalog.values()}
            for entry in old_catalog.values():
                if entry.path not in kept:
                    self._pending_gc.add(entry.path)
            self._collect_garbage()
        with self._lru_lock:
            for name in list(self._loaded):
                entry = new_catalog.get(name)
                if entry is None or self._loaded[name][0] != entry.header.fingerprint:
                    del self._loaded[name]
        self.profile_cache.prune_fingerprints(
            {name: entry.header.fingerprint for name, entry in new_catalog.items()}
        )
        return self._generation

    def _store_loaded(self, name: str, fingerprint: str, table: Table) -> None:
        # caller holds _lru_lock
        self._loaded[name] = (fingerprint, table)
        self._loaded.move_to_end(name)
        if self._lru_tables is not None:
            while len(self._loaded) > self._lru_tables:
                self._loaded.popitem(last=False)

    # -- snapshots and garbage collection ----------------------------------------

    def snapshot(self) -> RepositorySnapshot:
        """Pin the current generation as a consistent read-only view.

        The returned :class:`RepositorySnapshot` resolves all reads against
        the catalog as of this call; concurrent ``add``/``replace``/``remove``
        publish new generations without disturbing it, and files it references
        are protected from garbage collection until it is released.
        """
        with self._write_lock:
            token = next(self._snapshot_tokens)
            catalog = self._catalog  # publishes swap the reference, never mutate
            tables = dict(self._tables)
            self._snapshot_files[token] = frozenset(
                entry.path for entry in catalog.values()
            )
            generation = self._generation
        return RepositorySnapshot(self, generation, catalog, tables, token)

    def _release_snapshot(self, token: int) -> None:
        with self._write_lock:
            if self._snapshot_files.pop(token, None) is not None:
                self._collect_garbage()

    def _collect_garbage(self) -> int:
        """Reclaim superseded table files not pinned by any live snapshot.

        Caller holds ``_write_lock``.  Files are only ever deleted here (and
        in the crash-debris sweep of :meth:`open`): a path stays in the
        pending set for as long as any live snapshot references it.  Returns
        the number of files reclaimed.
        """
        if not self._pending_gc:
            return 0
        referenced = {entry.path for entry in self._catalog.values()}
        for files in self._snapshot_files.values():
            referenced |= files
        reclaimed = 0
        for path in list(self._pending_gc):
            if path in referenced:
                continue
            if _unlink_quietly(path):
                self._pending_gc.discard(path)
                reclaimed += 1
        return reclaimed

    def _stage_table(self, table: Table, meta: dict | None = None) -> _CatalogEntry:
        """Write ``table`` under its content-addressed staging name.

        The name embeds the content fingerprint, so concurrent writers of the
        same table name never rewrite each other's bytes (identical content
        maps to the identical file, which both write byte-identically).  The
        header carries a ``staged`` mark so :meth:`open` can tell uncommitted
        debris from externally ingested files.  Fingerprinting costs one
        extra pass over the table bytes before serialisation.
        """
        fingerprint = table_fingerprint(table)
        path = self._directory / f"{table.name}-{fingerprint[:16]}{TABLE_SUFFIX}"
        header = write_table(
            table,
            path,
            meta={"staged": True, **(meta or {})},
            chunk_rows=self._chunk_rows,
        )
        return _CatalogEntry(path, header)

    def _publish(self, new_catalog: dict[str, _CatalogEntry]) -> int:
        """Commit ``new_catalog`` as the next manifest generation.

        Caller holds ``_write_lock``.  Writes the manifest atomically, swaps
        the in-process catalog reference (readers see either the old or the
        new dict, never a mix), queues superseded files for reference-counted
        garbage collection, and returns the published generation.
        """
        generation = self._generation + 1
        if self._manifest_path is not None:
            write_manifest(
                self._manifest_path,
                RepositoryManifest(
                    generation=generation,
                    tables={
                        name: ManifestEntry(
                            file=entry.path.name,
                            fingerprint=entry.header.fingerprint,
                            num_rows=entry.header.num_rows,
                        )
                        for name, entry in new_catalog.items()
                    },
                ),
            )
        old_catalog = self._catalog
        self._catalog = new_catalog
        self._generation = generation
        kept = {entry.path for entry in new_catalog.values()}
        for entry in old_catalog.values():
            if entry.path not in kept:
                self._pending_gc.add(entry.path)
        self._collect_garbage()
        return generation

    # -- mutation --------------------------------------------------------------

    def add(self, table: Table, meta: dict | None = None) -> int:
        """Register a table; its ``name`` must be unique and non-empty.

        In a disk-backed repository the table is staged under a
        content-addressed file name and published as the next manifest
        generation.  ``meta`` (optional, disk-backed only) is stored in the
        table file header, e.g. ingestion provenance.  Returns the published
        generation.
        """
        if not table.name:
            raise ValueError("repository tables must have a non-empty name")
        name = table.name
        if self._directory is not None:
            if name in self._tables or name in self._catalog:
                raise ValueError(f"a table named {name!r} is already registered")
            entry = self._stage_table(table, meta)
            with self._write_lock:
                existing = self._catalog.get(name)
                if existing is not None:
                    # lost the race to a concurrent add; drop our staged file
                    # unless the winner staged identical content (same path)
                    if entry.path != existing.path:
                        self._pending_gc.add(entry.path)
                        self._collect_garbage()
                    raise ValueError(f"a table named {name!r} is already registered")
                new_catalog = dict(self._catalog)
                new_catalog[name] = entry
                generation = self._publish(new_catalog)
            with self._lru_lock:
                self._store_loaded(name, entry.header.fingerprint, table)
            return generation
        with self._write_lock:
            if name in self._tables or name in self._catalog:
                raise ValueError(f"a table named {name!r} is already registered")
            self._tables[name] = table
            self._generation += 1
            return self._generation

    def replace(self, table: Table, meta: dict | None = None) -> int:
        """Register or overwrite a table, invalidating any cached profiles.

        Disk-backed: the new content is staged under a fresh content-addressed
        file and published as the next manifest generation; the superseded
        file is garbage-collected once no live snapshot references it, so
        snapshots taken before the replace (and previously loaded
        memory-mapped tables) keep reading the old bytes.  Returns the
        published generation.
        """
        if not table.name:
            raise ValueError("repository tables must have a non-empty name")
        name = table.name
        if self._directory is not None:
            entry = self._stage_table(table, meta)
            with self._write_lock:
                new_catalog = dict(self._catalog)
                new_catalog[name] = entry
                generation = self._publish(new_catalog)
            with self._lru_lock:
                self._loaded.pop(name, None)
                self._store_loaded(name, entry.header.fingerprint, table)
        else:
            with self._write_lock:
                self._tables[name] = table
                self._generation += 1
                generation = self._generation
        self.profile_cache.invalidate(name)
        return generation

    def remove(self, name: str) -> int:
        """Unregister a table, invalidating any cached profiles.

        Disk-backed: the next manifest generation omits the table; its file
        is garbage-collected once no live snapshot references it (a reopened
        repository sees the same contents either way).  Returns the published
        generation.
        """
        with self._write_lock:
            if name in self._tables:
                del self._tables[name]
                self._generation += 1
                generation = self._generation
            elif name in self._catalog:
                new_catalog = dict(self._catalog)
                del new_catalog[name]
                generation = self._publish(new_catalog)
                with self._lru_lock:
                    self._loaded.pop(name, None)
            else:
                raise KeyError(
                    f"no table named {name!r} in repository; available: {self.table_names}"
                )
        self.profile_cache.invalidate(name)
        return generation

    # -- access ----------------------------------------------------------------

    def get(self, name: str) -> Table:
        """Look up a table by name, materialising a disk-backed one lazily.

        Concurrent-safe: the LRU entry records the fingerprint it was decoded
        from, so a ``get`` racing a ``replace`` can never park stale content
        under the new catalog entry, and a file reclaimed mid-read is retried
        against the republished generation.
        """
        table = self._tables.get(name)
        if table is not None:
            return table
        while True:
            entry = self._catalog.get(name)
            if entry is None:
                raise KeyError(
                    f"no table named {name!r} in repository; available: {self.table_names}"
                )
            fingerprint = entry.header.fingerprint
            with self._lru_lock:
                cached = self._loaded.get(name)
                if cached is not None and cached[0] == fingerprint:
                    self._loaded.move_to_end(name)
                    return cached[1]
            try:
                table = read_table(entry.path, mmap=self._mmap)
            except FileNotFoundError:
                # the table was republished (and its old file reclaimed)
                # between the catalog read and the open: retry against the
                # new generation, unless the file is genuinely gone
                if self._catalog.get(name) is entry:
                    raise
                continue
            break
        if not table.name:
            table = table.rename(name)
        with self._lru_lock:
            self._store_loaded(name, fingerprint, table)
        return table

    def profiles(self, name: str, num_hashes: int = 64) -> dict[str, ColumnProfile]:
        """Column profiles of one table, served from the profile cache.

        For a disk-backed table the lookup is fingerprint-validated against
        the catalog header, so a cache hit never reads the table body.  A
        multi-chunk table profiles chunk-by-chunk on a miss (bounded memory,
        identical profiles) instead of materialising.
        """
        entry = self._catalog.get(name)
        if entry is not None and name not in self._tables:
            if entry.header.num_chunks > 1:
                path, mmap = entry.path, self._mmap
                return self.profile_cache.get_or_profile_chunked(
                    name,
                    entry.header.fingerprint,
                    opener=lambda: open_chunks(path, mmap=mmap),
                    num_hashes=num_hashes,
                )
            return self.profile_cache.get_or_profile_keyed(
                name,
                entry.header.fingerprint,
                loader=lambda: self.get(name),
                num_hashes=num_hashes,
            )
        return self.profile_cache.get_or_profile(self.get(name), num_hashes=num_hashes)

    def profiles_many(
        self,
        names: Iterable[str] | None = None,
        num_hashes: int = 64,
        executor=None,
    ) -> dict[str, dict[str, ColumnProfile]]:
        """Profile many tables at once, sharding chunk work over ``executor``.

        The corpus-scale sibling of :meth:`profiles`: fingerprint-validated
        cache hits are answered from headers alone, and the remaining
        disk-backed tables fan out as per-(table, chunk-range) shard jobs on
        the given :class:`~repro.core.executor.JoinExecutor`, merged back with
        :meth:`ColumnProfileAccumulator.merge
        <repro.discovery.profiles.ColumnProfileAccumulator.merge>` into
        profiles **byte-identical** to the serial path (MinHash signatures
        included) regardless of executor backend or shard boundaries.  With
        ``executor=None`` (or a one-worker executor) every table takes the
        plain :meth:`profiles` path.
        """
        names = list(names) if names is not None else self.table_names
        return _profiles_many(
            cache=self.profile_cache,
            entry_for=self._catalog.get,
            serial=lambda name: self.profiles(name, num_hashes=num_hashes),
            in_memory=self._tables,
            mmap=self._mmap,
            names=names,
            num_hashes=num_hashes,
            executor=executor,
        )

    def open_chunks(self, name: str) -> ChunkedTableReader:
        """Open one disk-backed table for chunk-at-a-time streaming.

        Returns a :class:`~repro.relational.persist.ChunkedTableReader` over
        the table's current file — a monolithic file presents as one implicit
        chunk, so callers stream both layouts with one code path.  In-memory
        tables have no backing file; wrap them with
        :func:`repro.relational.join.as_chunk_source` instead.
        """
        if name in self._tables:
            raise ValueError(
                f"table {name!r} is in-memory; open_chunks needs a disk-backed table "
                f"(wrap in-memory tables with as_chunk_source)"
            )
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no table named {name!r} in repository; available: {self.table_names}"
            )
        return open_chunks(entry.path, mmap=self._mmap)

    def rechunk(
        self, name: str, chunk_rows: int | None = None, sort_by: str | None = None
    ) -> int:
        """Rewrite one table's file to a new row-group layout.

        ``chunk_rows`` follows :func:`repro.relational.persist.resolve_chunk_rows`
        semantics: an explicit target splits the table into row groups of that
        size, ``0`` rewrites to a monolithic version-1 file, ``None`` defers
        to ``ARDA_CHUNK_ROWS`` (falling back to the streaming default).  The
        rewrite streams chunk-to-chunk (bounded memory), goes through the same
        staged-publish protocol as :meth:`replace` — the new layout is staged
        under a layout-tagged content-addressed name, published as the next
        manifest generation, and the old file garbage-collected once
        unpinned — so concurrent snapshots keep reading the old bytes.
        Without ``sort_by``, the content fingerprint is invariant (the
        fingerprint is layout-invariant by construction), so cached profiles
        and LRU entries stay valid.  Returns the published generation.

        ``sort_by`` additionally rewrites the rows ordered by that column
        (stable, missing values last — :meth:`Table.sort_by` semantics), so
        zone-map pruning and the streaming join's binary-search chunk window
        hold on a previously unsorted key.  The sort order is recorded in the
        header (validated against monotone zones at write time).  The
        fingerprint *mechanism* stays layout-invariant, but reordering rows
        is a content change — the sorted file carries a new fingerprint and
        stale cached profiles simply miss.  Only non-categorical sort keys
        are supported: categorical zone maps cover dictionary codes, which
        value-ordering does not make monotone.
        """
        if self._directory is None:
            raise ValueError("rechunk requires a disk-backed repository")
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no disk-backed table named {name!r}; catalogued: {list(self._catalog)}"
            )
        resolved = resolve_chunk_rows(chunk_rows)
        if resolved is None and chunk_rows != 0:
            resolved = DEFAULT_STREAM_CHUNK_ROWS
        fingerprint = entry.header.fingerprint
        tag = "m" if chunk_rows == 0 else f"r{resolved}"
        if sort_by is not None:
            if sort_by not in entry.header.column_names:
                raise ValueError(
                    f"sort_by column {sort_by!r} not in table {name!r} "
                    f"(columns: {entry.header.column_names})"
                )
            if entry.header.schema().type_of(sort_by) is CATEGORICAL:
                raise ValueError(
                    f"sort_by column {sort_by!r} is categorical; sort-ordered "
                    f"zone maps need a numeric/datetime/boolean key"
                )
            from hashlib import blake2b

            tag = f"s{blake2b(sort_by.encode('utf-8'), digest_size=4).hexdigest()}{tag}"
        path = self._directory / f"{name}-{fingerprint[:16]}.{tag}{TABLE_SUFFIX}"
        meta = dict(entry.header.meta or {})
        meta["staged"] = True
        reader = open_chunks(entry.path, mmap=self._mmap)
        if sort_by is not None:
            # global sort order from the key column alone (stable, NaN last —
            # exactly Table.sort_by); rows then stream out as take-slices so
            # memory stays bounded by one output chunk plus the key column
            values = reader.column(sort_by).values
            order = np.argsort(values, kind="stable")
            nan_mask = np.isnan(values[order])
            order = np.concatenate([order[~nan_mask], order[nan_mask]])
            if chunk_rows == 0:
                sorted_table = reader.take(order).rename(name)
                meta["sort_by"] = sort_by
                header = write_table(sorted_table, path, meta=meta, chunk_rows=0)
            else:
                starts = range(0, len(order), max(1, resolved)) if len(order) else [0]
                slices = (
                    reader.take(order[lo : lo + resolved]) for lo in starts
                )
                header = write_table_stream(
                    path,
                    slices,
                    name=name,
                    chunk_rows=resolved,
                    meta=meta,
                    sort_by=sort_by,
                )
            if header.num_rows != entry.header.num_rows:
                _unlink_quietly(path)
                raise TableFormatError(
                    f"sort-rechunk of {name!r} changed the row count "
                    f"({entry.header.num_rows} -> {header.num_rows}); original kept"
                )
        elif chunk_rows == 0:
            header = write_table(reader.table(), path, meta=meta, chunk_rows=0)
        else:
            header = write_table_stream(
                path, reader.iter_chunks(), name=name, chunk_rows=resolved, meta=meta
            )
        if sort_by is None and header.fingerprint != fingerprint:
            _unlink_quietly(path)
            raise TableFormatError(
                f"rechunk of {name!r} changed the content fingerprint "
                f"({fingerprint} -> {header.fingerprint}); original kept"
            )
        new_entry = _CatalogEntry(path, header)
        with self._write_lock:
            if self._catalog.get(name) is not entry:
                # lost a race to a concurrent replace/remove: the new content
                # supersedes our relayout, so drop the staged file
                self._pending_gc.add(path)
                self._collect_garbage()
                raise RuntimeError(
                    f"table {name!r} was republished during rechunk; rerun against "
                    f"the new generation"
                )
            new_catalog = dict(self._catalog)
            new_catalog[name] = new_entry
            return self._publish(new_catalog)

    def __contains__(self, name: str) -> bool:
        return name in self._tables or name in self._catalog

    def __len__(self) -> int:
        return len(self._tables) + len(self._catalog)

    def __iter__(self) -> Iterator[Table]:
        for name in self.table_names:
            yield self.get(name)

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._catalog) + [n for n in self._tables if n not in self._catalog]

    # -- ingestion ---------------------------------------------------------------

    @classmethod
    def from_csv_directory(
        cls,
        directory: str | Path,
        ingest: str | Path | None = None,
        lru_tables: int | None = 16,
        mmap: bool = True,
        chunk_rows: int | None = None,
    ) -> "DataRepository":
        """Load every ``*.csv`` file in a directory as a repository table.

        ``chunk_rows`` (ingest mode only) sets the row-group target for the
        ingested table files, as in :meth:`open`.

        Without ``ingest`` this decodes every CSV into memory (the original
        behaviour).  With ``ingest`` set to a directory, each CSV is converted
        **once** through the manifest-publishing write path (skipped when the
        catalogued table already carries the CSV's ``st_mtime_ns`` in its
        ingest provenance) and the result is returned as a lazy disk-backed
        repository — the CSV parse cost is paid on the first run only.  The
        ingest directory mirrors the CSV directory for *ingested* tables: a
        catalogued table whose header carries the CSV-ingest provenance mark
        but whose source CSV has disappeared is removed.  Tables persisted
        into the same directory by other means (``add``/``replace``/``save``)
        carry no mark and are never touched.
        """
        directory = Path(directory)
        if ingest is None:
            repository = cls()
            for path in sorted(directory.glob("*.csv")):
                repository.add(read_csv(path, name=path.stem))
            return repository
        ingest_dir = Path(ingest)
        ingest_dir.mkdir(parents=True, exist_ok=True)
        repository = cls.open(
            ingest_dir, lru_tables=lru_tables, mmap=mmap, chunk_rows=chunk_rows
        )
        stems = set()
        for path in sorted(directory.glob("*.csv")):
            stems.add(path.stem)
            mtime_ns = path.stat().st_mtime_ns
            entry = repository._catalog.get(path.stem)
            if entry is not None:
                provenance = entry.header.meta or {}
                if (
                    provenance.get("source") == "csv-ingest"
                    and provenance.get("src_mtime_ns") == mtime_ns
                ):
                    continue  # up to date: same CSV file version already ingested
            meta = {"source": "csv-ingest", "src_mtime_ns": mtime_ns}
            table = read_csv(path, name=path.stem)
            if path.stem in repository:
                repository.replace(table, meta=meta)
            else:
                repository.add(table, meta=meta)
        for name in list(repository._catalog):
            if name in stems:
                continue
            provenance = (repository._catalog[name].header.meta or {}).get("source")
            if provenance == "csv-ingest":
                repository.remove(name)
        return repository
